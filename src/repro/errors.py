"""Exception hierarchy for the GaussDB-Global reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven incorrectly.

    Examples: running a finished environment backwards in time, or yielding
    a non-event object from a process generator.
    """


class NetworkError(ReproError):
    """A message could not be delivered (no route, endpoint down, ...)."""


class ClockError(ReproError):
    """Clock subsystem failure (e.g. sync daemon lost its time device)."""


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back.

    Carries a human-readable ``reason`` describing why (write conflict,
    mode migration cutover, node failure, explicit rollback, ...).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class WriteConflict(TransactionAborted):
    """A write-write conflict with a concurrent transaction."""


class CommitOutcomeUnknown(TransactionAborted):
    """The commit request was sent but its acknowledgement was lost.

    The transaction may or may not have committed — Jepsen's ``info``
    state. History recorders must not count it as either committed or
    aborted; clients must not retry non-idempotent work blindly.
    """


class ModeTransitionError(TransactionError):
    """An invalid step in the GTM <-> GClock migration protocol."""


class StorageError(ReproError):
    """Storage engine failure (unknown table, duplicate key, ...)."""


class DuplicateKeyError(StorageError):
    """Primary-key or unique-index violation."""


class TableNotFoundError(StorageError):
    """The referenced table does not exist in the catalog."""


class SqlError(ReproError):
    """SQL front-end failure (lex, parse, plan, or execution)."""


class StalenessBoundError(ReproError):
    """No replica satisfies the query's staleness bound."""


class ReplicaUnavailableError(ReproError):
    """No live replica (or primary fallback) can serve the read."""
