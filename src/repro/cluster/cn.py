"""Computing nodes: query coordination, transactions, and ROR routing.

The CN is stateless with respect to data (as in GaussDB): it parses and
plans client requests, routes operations to shard primaries, coordinates
one-phase and two-phase commits, and — when ROR is enabled — routes
read-only queries to replicas chosen by the skyline at a snapshot pinned to
the RCP.

Background loops hosted here:

- **metrics refresh** — polls every data node's status to feed the skyline;
- **RCP collection** — when this CN holds the collector role for its
  region, polls replica frontiers, computes the RCP, and distributes it;
  every CN watches the collector and takes over if updates stop (§IV-A);
- **heartbeats** — the collector CN periodically asks primaries to log
  heartbeat records so idle replicas keep advancing.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.errors import (
    CommitOutcomeUnknown,
    NetworkError,
    ReplicaUnavailableError,
    StalenessBoundError,
    TransactionAborted,
    WriteConflict,
)
from repro.ror.rcp import RcpCollector, RcpState
from repro.ror.skyline import NodeMetrics, near_pool, skyline_summary
from repro.ror.staleness import StalenessEstimator
from repro.sim.events import settle
from repro.sim.network import Message
from repro.sim.resources import Semaphore
from repro.sim.units import SECOND, ms, us
from repro.storage.catalog import Catalog, TableSchema
from repro.txn.modes import TxnMode
from repro.cluster.node import ClusterNode
from repro.cluster.sharding import ShardMap

#: txid space per CN: cn_index * _TXID_STRIDE + local counter.
_TXID_STRIDE = 1_000_000_000


@dataclass
class TxnContext:
    """State of one client transaction coordinated by this CN."""

    txid: int
    mode: TxnMode
    read_ts: int
    write_shards: set[int] = field(default_factory=set)
    touched_shards: set[int] = field(default_factory=set)
    finished: bool = False
    # Sim times bounding the begin phase, for trace attribution.
    begin_started_at: int = 0
    begin_ended_at: int = 0


@dataclass
class CnConfig:
    """Behavioural knobs for a computing node."""

    ror_enabled: bool = True
    metrics_interval_ns: int = ms(25)
    rcp_poll_interval_ns: int = ms(5)
    heartbeat_interval_ns: int = ms(5)
    collector_timeout_ns: int = ms(100)
    statement_cost_ns: int = us(60)
    workers: int = 16
    default_staleness_bound_ns: int | None = None  # None: any staleness
    #: RPC timeout for transactional operations: a dead primary turns
    #: into a TransactionAborted instead of a hung client.
    op_timeout_ns: int = 2 * SECOND
    #: Replicas whose last-known frontier trails the RCP by more than this
    #: are not routed to (a known laggard would park readers in its
    #: safe-time wait). Small lags are fine: metrics refresh less often
    #: than the RCP moves, and the replica-side wait covers the race.
    replica_lag_guard_ns: int = ms(250)


class ComputingNode(ClusterNode):
    """A client-facing coordinator node."""

    def __init__(self, *args, cn_index: int = 0, shard_map: ShardMap,
                 config: CnConfig | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.cn_index = cn_index
        self.shard_map = shard_map
        self.config = config or CnConfig()
        self.catalog = Catalog()
        self.pool = Semaphore(self.env, self.config.workers)
        self._txid_counter = 0
        self._route_rng = random.Random((cn_index + 1) * 7919)
        # Placement (filled by the builder):
        self.primary_of_shard: dict[int, str] = {}
        self.replicas_of_shard: dict[int, list[str]] = {}
        self.peer_cns: list[str] = []       # all CN names, cluster-wide order
        self.region_cns: list[str] = []     # CN names in this region, ordered
        self.all_replicas: list[str] = []
        self.all_primaries: list[str] = []
        # ROR state:
        self.rcp_state = RcpState()
        self.metrics: dict[str, NodeMetrics] = {}
        # (shard, staleness_bound, min_commit_ts) -> skyline near-pool,
        # invalidated on every metrics/placement change.
        self._route_cache: dict[tuple, list[NodeMetrics]] = {}
        self.staleness = StalenessEstimator(self.env, self.gclock,
                                            name=self.name)
        self._collector: RcpCollector | None = None
        self.is_collector = False
        # Counters:
        self.txns_committed = 0
        self.txns_aborted = 0
        self.ror_reads = 0
        self.primary_fallback_reads = 0
        self.read_only_queries = 0

    # ------------------------------------------------------------------
    # Wiring & background loops (called by the builder)
    # ------------------------------------------------------------------
    def start_background(self, initial_collector: bool) -> None:
        self.is_collector = initial_collector
        self._collector = RcpCollector(
            self.env, self.network, self.name,
            replica_names=self.all_replicas,
            peer_cn_names=[cn for cn in self.region_cns if cn != self.name],
            poll_interval_ns=self.config.rcp_poll_interval_ns)
        self.env.process(self._metrics_loop(), name=f"{self.name}:metrics")
        self.env.process(self._rcp_loop(), name=f"{self.name}:rcp")
        self.env.process(self._heartbeat_loop(), name=f"{self.name}:heartbeat")

    def _metrics_loop(self):
        while True:
            if not self.failed:
                self._refresh_metrics()
            yield self.env.sleep(self.config.metrics_interval_ns)

    def _refresh_metrics(self) -> None:
        """Fire one status probe per data node; replies update the metric
        table as they arrive (remote nodes answer after a WAN round trip,
        so the loop must not block on the farthest node)."""
        sent_at = self.env.now
        for name in self.all_replicas + self.all_primaries:
            request = self.network.request(
                self.name, name, ("status",),
                timeout_ns=self.config.metrics_interval_ns * 10)
            request.add_callback(
                lambda event, name=name, sent_at=sent_at:
                self._on_status_reply(name, sent_at, event))

    def _on_status_reply(self, name: str, sent_at: int, event) -> None:
        event.defused = True
        self.invalidate_routes()
        if not event.ok:
            existing = self.metrics.get(name)
            if existing is not None:
                existing.up = False
            if self.env.series_on:
                self._record_route_series(name)
            return
        status = event.value
        self.staleness.observe_frontier(status["max_commit_ts"])
        latency = (self.env.now - sent_at) // 2  # one-way estimate
        staleness_ns = self.staleness.estimate_ns(
            self.mode, status["max_commit_ts"])
        self.metrics[name] = NodeMetrics(
            name=name,
            staleness_ns=staleness_ns,
            latency_ns=latency + round(status["load"] * us(50)),
            max_commit_ts=status["max_commit_ts"],
            load=status["load"],
            up=status["up"],
            is_primary=(status["role"] == "primary"),
        )
        if status["role"] != "primary" and self.env.metrics_on:
            # Replica lag as this CN estimates it (the skyline's input).
            self.env.metrics.set_gauge("ror.staleness_ns", staleness_ns,
                                       node=name)
        if self.env.series_on:
            if status["role"] != "primary":
                self.env.series.gauge("ror.staleness_ns", staleness_ns,
                                      node=name)
            self._record_route_series(name)

    def _record_route_series(self, name: str) -> None:
        """Telemetry snapshot of this CN's routing view after a status
        update for ``name`` (only called under ``env.series_on``)."""
        series = self.env.series
        node = self.metrics.get(name)
        if node is not None:
            series.gauge("cluster.node_up", 1 if node.up else 0, node=name)
        for shard, replica_names in self.replicas_of_shard.items():
            if name in replica_names:
                # Only report once every replica of the shard has checked
                # in at least once: an unknown replica is not a lost one,
                # and reporting early would false-alarm the quorum monitor
                # during the first status round-trips.
                statuses = [self.metrics.get(replica)
                            for replica in replica_names]
                if all(status is not None for status in statuses):
                    up = sum(1 for status in statuses if status.up)
                    series.gauge("cluster.shard_replicas_up", up,
                                 shard=f"s{shard}", cn=self.name)
                break
        summary = skyline_summary(self.metrics.values())
        series.gauge("ror.skyline_size", summary["skyline"], cn=self.name)
        series.gauge("ror.freshest_staleness_ns",
                     summary["freshest_staleness_ns"], cn=self.name)
        series.gauge("ror.stalest_staleness_ns",
                     summary["stalest_staleness_ns"], cn=self.name)

    def _rcp_loop(self):
        while True:
            if not self.failed:
                if self.is_collector:
                    yield from self._collector.poll(self._on_rcp_computed)
                else:
                    self._maybe_take_over()
            yield self.env.sleep(self.config.rcp_poll_interval_ns)

    def _on_rcp_computed(self, rcp: int) -> None:
        self._note_rcp_update()
        self.rcp_state.update(rcp, self.env.now, self.name)

    def _note_rcp_update(self) -> None:
        """Record how stale this CN's RCP view got before the update."""
        metrics = self.env.metrics
        if metrics.enabled and self.rcp_state.updates_received:
            metrics.histogram("ror.rcp_age_ns", cn=self.name).record(
                self.rcp_state.age_ns(self.env.now))

    def _maybe_take_over(self) -> None:
        """Collector failover: if RCP updates stopped and this CN is the
        first live CN in its region's order, it takes the role (§IV-A)."""
        age = self.rcp_state.age_ns(self.env.now)
        if age < self.config.collector_timeout_ns:
            return
        for name in self.region_cns:
            if name == self.name:
                self.is_collector = True
                return
            peer = self.network.endpoint(name)
            if peer.up:
                return  # an earlier CN is alive; it should take over

    def _heartbeat_loop(self):
        while True:
            if not self.failed and self.is_collector:
                requests = [
                    self.network.request(self.name, primary, ("heartbeat",),
                                         timeout_ns=self.config.heartbeat_interval_ns * 4)
                    for primary in self.all_primaries
                ]
                yield settle(self.env, requests)
            yield self.env.sleep(self.config.heartbeat_interval_ns)

    def _on_notice(self, payload: tuple, message: Message) -> None:
        kind = payload[0]
        if kind == "placement_update":
            _kind, shard, new_primary = payload
            self.primary_of_shard[shard] = new_primary
            self.invalidate_routes()
        elif kind == "rcp_update":
            _kind, rcp, collector = payload
            self._note_rcp_update()
            self.rcp_state.update(rcp, self.env.now, collector)
            if collector != self.name:
                self.is_collector = False
        elif kind == "ddl_apply":
            _kind, action, table, ddl_payload, ddl_ts = payload
            self._apply_ddl_locally(action, table, ddl_payload, ddl_ts)

    # ------------------------------------------------------------------
    # Transaction lifecycle (generator API used by workloads & sessions)
    # ------------------------------------------------------------------
    def next_txid(self) -> int:
        self._txid_counter += 1
        return self.cn_index * _TXID_STRIDE + self._txid_counter

    def _statement(self):
        """Generator: per-statement CN admission — a worker slot plus the
        statement's CPU cost (parse/plan/route). This is what makes the CN
        a realistic capacity ceiling under closed-loop load."""
        started = self.env.now
        yield self.pool.acquire()
        try:
            if self.config.statement_cost_ns:
                yield self.env.sleep(self.config.statement_cost_ns)
        finally:
            self.pool.release()
            if self.env.metrics_on:
                self.env.metrics.histogram(
                    "cn.statement_ns",
                    node=self.name).record(self.env.now - started)

    def g_begin(self):
        """Generator: begin a read-write transaction."""
        started = self.env.now
        yield from self._statement()
        read_ts, mode = yield from self.provider.begin()
        ctx = TxnContext(txid=self.next_txid(), mode=mode, read_ts=read_ts,
                         begin_started_at=started,
                         begin_ended_at=self.env.now)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("txn", "begin", started, ctx.begin_ended_at,
                            track=self.name, txid=ctx.txid,
                            mode=str(mode))
        return ctx

    def _primary(self, shard: int) -> str:
        return self.primary_of_shard[shard]

    def _op(self, ctx: TxnContext, shard: int, body: tuple):
        """Generator: one transactional RPC to a shard primary, with a
        timeout so a dead primary aborts the transaction instead of
        hanging the client."""
        try:
            reply = yield self.network.request(
                self.name, self._primary(shard), body,
                timeout_ns=self.config.op_timeout_ns)
        except NetworkError as exc:
            yield from self.g_abort(ctx)
            raise TransactionAborted(f"shard {shard} unreachable: {exc}")
        return reply

    def _shard_for_key(self, table: str, key: tuple) -> int:
        shard = self.shard_map.shard_for_key(table, key)
        if shard is None:
            # Replicated table: any shard holds it; prefer one whose
            # primary is local.
            for shard_id, primary in self.primary_of_shard.items():
                if self.network.endpoint(primary).region == self.region:
                    return shard_id
            return 0
        return shard

    def g_read(self, ctx: TxnContext, table: str, key: tuple):
        shard = self._shard_for_key(table, key)
        ctx.touched_shards.add(shard)
        reply = yield from self._op(ctx, shard,
                                    ("read", ctx.txid, ctx.read_ts, table, key))
        row, _ts = reply
        return row

    def g_read_for_update(self, ctx: TxnContext, table: str, key: tuple):
        shard = self._shard_for_key(table, key)
        ctx.touched_shards.add(shard)
        ctx.write_shards.add(shard)
        reply = yield from self._op(ctx, shard,
                                    ("read_for_update", ctx.txid, table, key))
        if reply[0] == "conflict":
            yield from self.g_abort(ctx)
            raise WriteConflict(reply[1])
        return reply[1]

    def g_insert(self, ctx: TxnContext, table: str, row: dict):
        shards = self.shard_map.write_shards(table, row)
        for shard in shards:
            ctx.touched_shards.add(shard)
            ctx.write_shards.add(shard)
        requests = [
            self.network.request(self.name, self._primary(shard),
                                 ("insert", ctx.txid, table, row),
                                 timeout_ns=self.config.op_timeout_ns)
            for shard in shards
        ]
        yield settle(self.env, requests)
        for request in requests:
            if not request.ok:
                yield from self.g_abort(ctx)
                raise TransactionAborted(f"insert failed: {request.value}")
            reply = request.value
            if reply[0] != "ok":
                yield from self.g_abort(ctx)
                error = reply[1]
                if isinstance(error, Exception):
                    raise TransactionAborted(str(error))
                raise TransactionAborted(str(error))
        return row

    def g_update(self, ctx: TxnContext, table: str, key: tuple,
                 changes: typing.Mapping):
        if self.shard_map.is_replicated(table):
            shards = self.shard_map.all_shards()
        else:
            shards = [self._shard_for_key(table, key)]
        results = []
        for shard in shards:
            ctx.touched_shards.add(shard)
            ctx.write_shards.add(shard)
            reply = yield from self._op(ctx, shard,
                                        ("update", ctx.txid, table, key,
                                         changes))
            if reply[0] == "conflict":
                yield from self.g_abort(ctx)
                raise WriteConflict(reply[1])
            results.append(reply[1])
        return results[0]

    def g_delete(self, ctx: TxnContext, table: str, key: tuple):
        if self.shard_map.is_replicated(table):
            shards = self.shard_map.all_shards()
        else:
            shards = [self._shard_for_key(table, key)]
        deleted = False
        for shard in shards:
            ctx.touched_shards.add(shard)
            ctx.write_shards.add(shard)
            reply = yield from self._op(ctx, shard,
                                        ("delete", ctx.txid, table, key))
            if reply[0] == "conflict":
                yield from self.g_abort(ctx)
                raise WriteConflict(reply[1])
            deleted = deleted or reply[1]
        return deleted

    def g_scan(self, ctx: TxnContext, table: str,
               predicate: typing.Callable[[dict], bool] | None = None):
        """Scan across all shards within a transaction."""
        shards = self.shard_map.all_shards()
        ctx.touched_shards.update(shards)
        requests = [
            self.network.request(self.name, self._primary(shard),
                                 ("scan", ctx.txid, ctx.read_ts, table, predicate))
            for shard in shards
        ]
        yield self.env.all_of(requests)
        rows: list[dict] = []
        seen_keys: set = set()
        replicated = self.shard_map.is_replicated(table)
        schema = self.shard_map.schema(table)
        for request in requests:
            shard_rows, _ts = request.value
            if replicated:
                for row in shard_rows:
                    key = schema.key_of(row)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        rows.append(row)
            else:
                rows.extend(shard_rows)
        return rows

    def g_lookup(self, ctx: TxnContext, table: str, column: str,
                 value: typing.Any, shard_value: typing.Any):
        """Secondary-index equality lookup inside a transaction.

        ``shard_value`` is the distribution-column value locating the shard
        (e.g. the warehouse id for TPC-C tables).
        """
        shard = self.shard_map.shard_for_value(table, shard_value) \
            if not self.shard_map.is_replicated(table) \
            else self._shard_for_key(table, ())
        ctx.touched_shards.add(shard)
        reply = yield self.network.request(
            self.name, self._primary(shard),
            ("lookup_index", ctx.txid, ctx.read_ts, table, column, value))
        rows, _ts = reply
        return rows

    def g_commit(self, ctx: TxnContext):
        """Generator: commit. One-phase for single-shard writes, 2PC for
        multi-shard. Read-only transactions commit locally for free."""
        if ctx.finished:
            raise TransactionAborted("transaction already finished")
        ctx.finished = True
        commit_started = self.env.now
        tracer = self.env.tracer
        if tracer.enabled:
            # Everything between begin returning and commit being called is
            # the client-visible execute phase.
            tracer.complete("txn", "execute",
                            ctx.begin_ended_at or commit_started,
                            commit_started, track=self.name, txid=ctx.txid)
        yield from self._statement()
        write_shards = sorted(ctx.write_shards)
        if not write_shards:
            self.txns_committed += 1
            self._trace_commit(ctx, commit_started, ctx.read_ts, shards=0)
            return ctx.read_ts
        if len(write_shards) == 1:
            try:
                reply = yield self.network.request(
                    self.name, self._primary(write_shards[0]),
                    ("commit_local", ctx.txid, ctx.mode),
                    timeout_ns=self.config.op_timeout_ns)
            except NetworkError as exc:
                self._note_abort()
                raise CommitOutcomeUnknown(
                    f"commit lost: {exc} (outcome unknown)")
            if reply[0] == "abort":
                self._note_abort()
                raise TransactionAborted(reply[1])
            self.txns_committed += 1
            self._trace_commit(ctx, commit_started, reply[1], shards=1)
            return reply[1]
        return (yield from self._commit_2pc(ctx, write_shards, commit_started))

    def _note_abort(self) -> None:
        self.txns_aborted += 1
        if self.env.series_on:
            self.env.series.counter("cn.aborts", 1, cn=self.name)

    def _trace_commit(self, ctx: TxnContext, started: int, ts: int,
                      shards: int) -> None:
        now = self.env.now
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("txn", "commit", started, now, track=self.name,
                            txid=ctx.txid, ts=ts, shards=shards)
        metrics = self.env.metrics
        if metrics.enabled:
            metrics.counter("cn.commits", node=self.name).inc()
            metrics.histogram("cn.txn_latency_ns", node=self.name).record(
                now - (ctx.begin_started_at or started))
        if self.env.series_on:
            self.env.series.counter("cn.commits", 1, cn=self.name)

    def _commit_2pc(self, ctx: TxnContext, write_shards: list[int],
                    commit_started: int):
        prepares = [
            self.network.request(self.name, self._primary(shard),
                                 ("prepare", ctx.txid),
                                 timeout_ns=self.config.op_timeout_ns)
            for shard in write_shards
        ]
        yield settle(self.env, prepares)
        if not all(request.ok and request.value[0] == "ok" for request in prepares):
            yield from self._abort_prepared_everywhere(ctx, write_shards)
            self._note_abort()
            raise TransactionAborted("2PC prepare failed")
        try:
            ts = yield from self.provider.commit_ts(ctx.mode, txid=ctx.txid)
        except TransactionAborted:
            yield from self._abort_prepared_everywhere(ctx, write_shards)
            self._note_abort()
            raise
        finishes = [
            self.network.request(self.name, self._primary(shard),
                                 ("commit_prepared", ctx.txid, ts),
                                 timeout_ns=self.config.op_timeout_ns)
            for shard in write_shards
        ]
        yield settle(self.env, finishes)
        self.txns_committed += 1
        self._trace_commit(ctx, commit_started, ts, shards=len(write_shards))
        return ts

    def _abort_prepared_everywhere(self, ctx: TxnContext,
                                   write_shards: list[int]):
        aborts = [
            self.network.request(self.name, self._primary(shard),
                                 ("abort_prepared", ctx.txid),
                                 timeout_ns=self.config.op_timeout_ns)
            for shard in write_shards
        ]
        yield settle(self.env, aborts)

    def g_abort(self, ctx: TxnContext):
        if ctx.finished:
            return
        ctx.finished = True
        self._note_abort()
        aborts = [
            self.network.request(self.name, self._primary(shard),
                                 ("abort", ctx.txid),
                                 timeout_ns=self.config.op_timeout_ns)
            for shard in sorted(ctx.write_shards)
        ]
        if aborts:
            yield settle(self.env, aborts)

    # ------------------------------------------------------------------
    # Read-only queries (ROR when enabled, primary reads otherwise)
    # ------------------------------------------------------------------
    def _ddl_fence_ok(self, tables: typing.Sequence[str], rcp: int) -> bool:
        """§IV-A DDL rules: RCP must have passed the global max DDL
        timestamp, or failing that, each involved table's DDL timestamp."""
        if rcp > self.catalog.max_ddl_ts:
            return True
        return all(rcp > self.catalog.ddl_ts(table) for table in tables)

    def invalidate_routes(self) -> None:
        """Drop cached routing pools. Must be called after *any* change to
        the inputs of :meth:`_choose_read_node`: the ``self.metrics``
        table (status replies, failure marking) or the shard placement
        (placement updates, failover rewiring)."""
        self._route_cache.clear()

    def _choose_read_node(self, shard: int, rcp: int,
                          staleness_bound_ns: int | None) -> tuple[str, bool]:
        """Pick (node_name, is_replica) for a shard read at the RCP.

        The skyline near-pool is cached per ``(shard, bound, min_ts)``
        between metric/placement changes; the pool's order — and hence the
        ``rng.choice`` draw sequence — is identical to recomputing, so the
        cache cannot alter simulated histories."""
        min_ts = max(0, rcp - self.config.replica_lag_guard_ns)
        cache_key = (shard, staleness_bound_ns, min_ts)
        near = self._route_cache.get(cache_key)
        if near is None:
            candidates = []
            for name in self.replicas_of_shard.get(shard, []):
                metrics = self.metrics.get(name)
                if metrics is not None:
                    candidates.append(metrics)
            primary_metrics = self.metrics.get(self._primary(shard))
            if primary_metrics is not None:
                candidates.append(primary_metrics)
            near = near_pool(candidates, staleness_bound_ns, min_ts)
            self._route_cache[cache_key] = near
        if not near:
            if staleness_bound_ns is not None:
                raise StalenessBoundError(
                    f"no node for shard {shard} within "
                    f"{staleness_bound_ns}ns staleness")
            primary_name = self._primary(shard)
            if self.network.endpoint(primary_name).up:
                if self.env.metrics_on:
                    self.env.metrics.counter("ror.picks", cn=self.name,
                                             target="primary_fallback").inc()
                return primary_name, False
            raise ReplicaUnavailableError(f"no live node for shard {shard}")
        if len(near) == 1:
            chosen = near[0]
        else:
            chosen = self._route_rng.choice(near)
        if self.env.metrics_on:
            self.env.metrics.counter(
                "ror.picks", cn=self.name,
                target="primary" if chosen.is_primary else "replica").inc()
        return chosen.name, not chosen.is_primary

    def ro_snapshot(self, tables: typing.Sequence[str], min_read_ts: int = 0):
        """Generator: pin a snapshot for a read-only query.

        Returns ``(read_ts, use_ror)``: with ROR enabled, the DDL fence
        satisfied, and the RCP at or past ``min_read_ts`` (the caller's
        read-your-writes floor, e.g. a session's last commit timestamp),
        the snapshot is the RCP and reads may use replicas; otherwise a
        provider snapshot is taken and reads go to primaries.
        """
        yield from self._statement()
        self.read_only_queries += 1
        if self.config.ror_enabled:
            rcp = self.rcp_state.rcp
            if rcp >= min_read_ts and self._ddl_fence_ok(tables, rcp):
                return rcp, True
        read_ts, _mode = yield from self.provider.begin()
        return read_ts, False

    def _ro_shard_call(self, shard: int, read_ts: int, use_ror: bool,
                       staleness_bound_ns: int | None,
                       replica_body, primary_body):
        """Generator: one read-only RPC against the best node for a shard.

        ``replica_body(node)`` / ``primary_body(node)`` build the request
        payloads. On a network failure the node is marked down in the
        metric table and the call retries against the primary — the
        paper's automatic rerouting around failed nodes (§IV-B).
        """
        if use_ror:
            node, is_replica = self._choose_read_node(shard, read_ts,
                                                      staleness_bound_ns)
        else:
            node, is_replica = self._primary(shard), False
        body = replica_body(node) if is_replica else primary_body(node)
        try:
            reply = yield self.network.request(
                self.name, node, body, timeout_ns=self.config.op_timeout_ns)
        except NetworkError:
            known = self.metrics.get(node)
            if known is not None:
                known.up = False
                self.invalidate_routes()
            primary = self._primary(shard)
            if node == primary or not self.network.endpoint(primary).up:
                raise ReplicaUnavailableError(
                    f"no reachable node for shard {shard}")
            self.primary_fallback_reads += 1
            reply = yield self.network.request(
                self.name, primary, primary_body(primary),
                timeout_ns=self.config.op_timeout_ns)
            return reply
        if is_replica:
            self.ror_reads += 1
        elif use_ror:
            self.primary_fallback_reads += 1
        return reply

    def _ro_fanout(self, calls):
        """Generator: run several _ro_shard_call generators in parallel
        (each as its own process so per-call rerouting still works)."""
        processes = [self.env.process(call, name=f"{self.name}:ro-fanout")
                     for call in calls]
        yield self.env.all_of(processes)
        return [process.value for process in processes]

    def g_ro_read(self, read_ts: int, use_ror: bool, table: str, key: tuple,
                  staleness_bound_ns: int | None = None):
        """Generator: one row at a pinned read-only snapshot."""
        shard = self._shard_for_key(table, key)
        reply = yield from self._ro_shard_call(
            shard, read_ts, use_ror, staleness_bound_ns,
            lambda node: ("read_replica", read_ts, table, key),
            lambda node: ("read", None, read_ts, table, key))
        return reply[0]

    def _lookup_shard(self, table: str, shard_value) -> int:
        if self.shard_map.is_replicated(table):
            return self._shard_for_key(table, ())
        return self.shard_map.shard_for_value(table, shard_value)

    def g_ro_lookup(self, read_ts: int, use_ror: bool, table: str,
                    column: str, value: typing.Any, shard_value: typing.Any,
                    staleness_bound_ns: int | None = None):
        """Generator: index lookup at a pinned read-only snapshot."""
        shard = self._lookup_shard(table, shard_value)
        reply = yield from self._ro_shard_call(
            shard, read_ts, use_ror, staleness_bound_ns,
            lambda node: ("lookup_replica", read_ts, table, column, value),
            lambda node: ("lookup_index", None, read_ts, table, column, value))
        return reply[0]

    def g_ro_read_batch(self, read_ts: int, use_ror: bool, table: str,
                        keys: typing.Sequence[tuple],
                        staleness_bound_ns: int | None = None):
        """Generator: several same-shard point reads in one statement."""
        if not keys:
            return []
        shard = self._shard_for_key(table, keys[0])
        key_list = list(keys)
        reply = yield from self._ro_shard_call(
            shard, read_ts, use_ror, staleness_bound_ns,
            lambda node: ("read_replica_batch", read_ts, table, key_list),
            lambda node: ("read_batch", None, read_ts, table, key_list))
        return reply[0]

    def g_ro_lookup_batch(self, read_ts: int, use_ror: bool, table: str,
                          column: str, values: typing.Sequence,
                          shard_value: typing.Any,
                          staleness_bound_ns: int | None = None):
        """Generator: several same-shard index lookups in one statement."""
        if not values:
            return []
        shard = self._lookup_shard(table, shard_value)
        value_list = list(values)
        reply = yield from self._ro_shard_call(
            shard, read_ts, use_ror, staleness_bound_ns,
            lambda node: ("lookup_replica_batch", read_ts, table, column,
                          value_list),
            lambda node: ("lookup_batch", None, read_ts, table, column,
                          value_list))
        return reply[0]

    def g_read_only(self, table: str, key: tuple,
                    staleness_bound_ns: int | None = None,
                    min_read_ts: int = 0):
        """Generator: a consistent single-row read-only query.

        ``min_read_ts`` is the caller's read-your-writes floor: if the RCP
        has not yet covered it, the read falls back to the primary with a
        fresh provider snapshot.
        """
        read_ts, use_ror = yield from self.ro_snapshot([table], min_read_ts)
        bound = (staleness_bound_ns if staleness_bound_ns is not None
                 else self.config.default_staleness_bound_ns)
        return (yield from self.g_ro_read(read_ts, use_ror, table, key,
                                          staleness_bound_ns=bound))

    def g_read_only_multi(self, table: str, keys: typing.Sequence[tuple],
                          staleness_bound_ns: int | None = None,
                          min_read_ts: int = 0):
        """Generator: a consistent multi-row (multi-shard) read-only query;
        all rows are read at one snapshot."""
        read_ts, use_ror = yield from self.ro_snapshot([table], min_read_ts)
        bound = (staleness_bound_ns if staleness_bound_ns is not None
                 else self.config.default_staleness_bound_ns)
        replies = yield from self._ro_fanout([
            self.g_ro_read(read_ts, use_ror, table, key,
                           staleness_bound_ns=bound)
            for key in keys
        ])
        return replies

    def g_scan_only(self, table: str,
                    predicate: typing.Callable[[dict], bool] | None = None,
                    staleness_bound_ns: int | None = None,
                    min_read_ts: int = 0):
        """Generator: a consistent read-only scan over every shard."""
        read_ts, use_ror = yield from self.ro_snapshot([table], min_read_ts)
        bound = (staleness_bound_ns if staleness_bound_ns is not None
                 else self.config.default_staleness_bound_ns)
        replicated = self.shard_map.is_replicated(table)
        schema = self.shard_map.schema(table)
        shards = ([self._shard_for_key(table, ())] if replicated
                  else self.shard_map.all_shards())

        def one_shard(shard):
            reply = yield from self._ro_shard_call(
                shard, read_ts, use_ror, bound,
                lambda node: ("scan_replica", read_ts, table, predicate),
                lambda node: ("scan", None, read_ts, table, predicate))
            return reply

        replies = yield from self._ro_fanout(
            [one_shard(shard) for shard in shards])
        return self._merge_rows(replies, replicated and len(replies) > 1,
                                schema)

    @staticmethod
    def _merge_rows(replies, dedupe: bool, schema: TableSchema) -> list[dict]:
        rows: list[dict] = []
        seen: set = set()
        for shard_rows, _ts in replies:
            if dedupe:
                for row in shard_rows:
                    key = schema.key_of(row)
                    if key not in seen:
                        seen.add(key)
                        rows.append(row)
            else:
                rows.extend(shard_rows)
        return rows

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def g_create_table(self, schema: TableSchema,
                       range_bounds: list | None = None):
        """Generator: execute CREATE TABLE across the cluster."""
        ddl_ts = yield from self.provider.commit_ts(self.mode)
        self.shard_map.register(schema, range_bounds)
        requests = [
            self.network.request(self.name, primary,
                                 ("ddl", "create_table", schema.name, schema, ddl_ts))
            for primary in self.all_primaries
        ]
        yield self.env.all_of(requests)
        self._apply_ddl_locally("create_table", schema.name, schema, ddl_ts)
        self._broadcast_ddl("create_table", schema.name, schema, ddl_ts)
        return ddl_ts

    def g_drop_table(self, table: str):
        ddl_ts = yield from self.provider.commit_ts(self.mode)
        requests = [
            self.network.request(self.name, primary,
                                 ("ddl", "drop_table", table, None, ddl_ts))
            for primary in self.all_primaries
        ]
        yield self.env.all_of(requests)
        self.shard_map.unregister(table)
        self._apply_ddl_locally("drop_table", table, None, ddl_ts)
        self._broadcast_ddl("drop_table", table, None, ddl_ts)
        return ddl_ts

    def g_create_index(self, table: str, column: str):
        ddl_ts = yield from self.provider.commit_ts(self.mode)
        requests = [
            self.network.request(self.name, primary,
                                 ("ddl", "create_index", table, column, ddl_ts))
            for primary in self.all_primaries
        ]
        yield self.env.all_of(requests)
        self._apply_ddl_locally("create_index", table, column, ddl_ts)
        self._broadcast_ddl("create_index", table, column, ddl_ts)
        return ddl_ts

    def _apply_ddl_locally(self, action: str, table: str, payload, ddl_ts: int) -> None:
        if action == "create_table":
            if not self.catalog.has_table(table):
                self.catalog.create_table(payload, ddl_ts=ddl_ts)
            if payload.name not in self.shard_map._schemas:
                self.shard_map.register(payload)
        elif action == "drop_table":
            if self.catalog.has_table(table):
                self.catalog.drop_table(table, ddl_ts=ddl_ts)
        else:
            self.catalog.record_ddl(table, ddl_ts)

    def _broadcast_ddl(self, action: str, table: str, payload, ddl_ts: int) -> None:
        for peer in self.peer_cns:
            if peer != self.name:
                self.network.send(self.name, peer,
                                  ("ddl_apply", action, table, payload, ddl_ts),
                                  size_bytes=256)
