"""Cluster construction and the GlobalDB facade.

:class:`ClusterConfig` describes a deployment; :func:`build_cluster` wires
it into a running simulated cluster; :class:`GlobalDB` is the handle users
and benchmarks hold.

Two presets mirror the paper's §V systems:

- ``ClusterConfig.baseline(topology)`` — stock GaussDB: centralized GTM,
  synchronous quorum replication (with a remote-region replica when the
  topology spans regions), stock transport (no compression, loss-based
  congestion control, Nagle on), no reads-on-replica.
- ``ClusterConfig.globaldb(topology)`` — GlobalDB: GClock transaction
  management, asynchronous replication with the optimized transport stack,
  and ROR enabled.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field, replace

from repro.clocks import GlobalTimeDevice
from repro.errors import SimulationError
from repro.obs import default_monitor_rules, enable_observability
from repro.replication.quorum import ReplicationPolicy
from repro.replication.shipper import (LogShipper, ShipperConfig,
                                       replica_backlog)
from repro.sim.core import Environment
from repro.sim.network import Network
from repro.sim.rand import RandomStreams
from repro.sim.units import seconds
from repro.storage.catalog import TableSchema
from repro.storage.heap import HeapTable
from repro.txn.gtm import GTMServer
from repro.txn.migration import MigrationCoordinator, MigrationReport
from repro.txn.modes import TxnMode
from repro.cluster.cn import CnConfig, ComputingNode
from repro.cluster.client import Session
from repro.cluster.dn import CostModel, DataNode
from repro.cluster.failover import FailoverManager
from repro.cluster.sharding import ShardMap
from repro.cluster.topology import Topology, one_region


@dataclass
class ClusterConfig:
    """A deployment description."""

    topology: Topology = field(default_factory=one_region)
    cns_per_region: int = 1
    shards: int = 6
    replicas_per_shard: int = 2
    txn_mode: TxnMode = TxnMode.GCLOCK
    replication: ReplicationPolicy = field(default_factory=ReplicationPolicy.async_)
    shipper: ShipperConfig = field(default_factory=ShipperConfig.optimized)
    ror_enabled: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    cn_config: CnConfig | None = None
    seed: int = 0
    gtm_region: str | None = None
    #: When True, a failover manager probes primaries and promotes the
    #: most-caught-up replica of a dead shard (§IV). Off by default so
    #: failure-injection tests can observe raw failure behaviour.
    auto_failover: bool = False
    failover_grace_ns: int = 300_000_000
    #: Background MVCC vacuum on every data node. The retention window is
    #: how far back snapshots stay readable; it must exceed clock error
    #: bounds and any staleness bound handed to queries.
    vacuum_interval_ns: int = 2_000_000_000
    vacuum_retention_ns: int = 5_000_000_000
    vacuum_enabled: bool = True
    #: Observability (repro.obs): attach a live metrics registry and/or
    #: span tracer to the environment before any node is constructed.
    #: Purely passive — a run's event history is identical either way.
    metrics_enabled: bool = False
    trace_enabled: bool = False
    trace_max_spans: int | None = 500_000
    #: Telemetry pipeline (repro.obs.timeseries / monitor): windowed
    #: time-series sampling plus the default online SLO monitors. Also
    #: passive; off by default so the perf-harness digest is unchanged.
    timeseries_enabled: bool = False
    telemetry_window_ns: int = 50_000_000
    #: Monitor rules to attach when telemetry is on. None -> the default
    #: SLO set (default_monitor_rules); pass () to sample without monitors.
    monitor_rules: tuple | None = None

    @classmethod
    def baseline(cls, topology: Topology | None = None, **overrides) -> "ClusterConfig":
        """Stock GaussDB: GTM + synchronous replication + stock transport."""
        topology = topology or one_region()
        multi_region = len(topology.regions) > 1
        policy = (ReplicationPolicy.remote_quorum(1) if multi_region
                  else ReplicationPolicy.quorum(1))
        config = cls(topology=topology, txn_mode=TxnMode.GTM,
                     replication=policy, shipper=ShipperConfig.baseline(),
                     ror_enabled=False)
        return replace(config, **overrides)

    @classmethod
    def globaldb(cls, topology: Topology | None = None, **overrides) -> "ClusterConfig":
        """GlobalDB: GClock + async replication + optimized transport + ROR."""
        config = cls(topology=topology or one_region())
        return replace(config, **overrides)


class GlobalDB:
    """Handle to a running simulated cluster."""

    def __init__(self, config: ClusterConfig, env: Environment,
                 network: Network, gtm: GTMServer,
                 cns: list[ComputingNode], primaries: list[DataNode],
                 replicas: dict[int, list[DataNode]],
                 shippers: list[LogShipper], shard_map: ShardMap,
                 migration: MigrationCoordinator,
                 failover: FailoverManager | None = None,
                 devices: dict[str, GlobalTimeDevice] | None = None):
        self.config = config
        self.env = env
        self.network = network
        self.gtm = gtm
        self.cns = cns
        self.primaries = primaries
        self.replicas = replicas
        self.shippers = shippers
        self.shard_map = shard_map
        self.migration = migration
        self.failover = failover
        #: region -> GlobalTimeDevice, the clock-fault injection surface
        #: used by repro.chaos (SyncOutage and friends).
        self.devices = devices or {}
        self._session_rr = 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_for(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` simulated seconds."""
        self.env.run_for(seconds(duration_s))

    def run_until_done(self, process) -> typing.Any:
        """Run until a process (or event) completes; return its value."""
        return self.env.run(until=process)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, region: str | None = None,
                cn: ComputingNode | None = None) -> Session:
        """Open a client session bound to a CN (round-robin per region)."""
        if cn is None:
            candidates = (self.cns if region is None else
                          [node for node in self.cns if node.region == region])
            if not candidates:
                raise SimulationError(f"no CN in region {region!r}")
            cn = candidates[self._session_rr % len(candidates)]
            self._session_rr += 1
        return Session(self, cn)

    def cn_in_region(self, region: str) -> ComputingNode:
        for node in self.cns:
            if node.region == region:
                return node
        raise SimulationError(f"no CN in region {region!r}")

    # ------------------------------------------------------------------
    # Offline setup (before the workload runs)
    # ------------------------------------------------------------------
    def create_table_offline(self, schema: TableSchema,
                             range_bounds: list | None = None,
                             indexes: typing.Sequence[str] = ()) -> None:
        """Install a table everywhere without consuming simulated time.

        The moral equivalent of setting up the schema before the benchmark
        window starts. Online DDL goes through ``session.create_table``.
        """
        # Offline data is committed at ts=1; GTM snapshots must cover it.
        self.gtm.counter = max(self.gtm.counter, 1)
        self.shard_map.register(schema, range_bounds)
        for primary in self.primaries:
            primary.engine.create_table(schema, ddl_ts=1, log=False)
            for column in indexes:
                primary.engine.create_index(schema.name, column, ddl_ts=1,
                                            log=False)
        for replica_list in self.replicas.values():
            for replica in replica_list:
                replica.store.catalog.create_table(schema, ddl_ts=1)
                replica.store._tables[schema.name] = HeapTable(schema.name)
                for column in indexes:
                    replica.store.table(schema.name).create_index(column)
        for cn in self.cns:
            if not cn.catalog.has_table(schema.name):
                cn.catalog.create_table(schema, ddl_ts=1)

    def bulk_load(self, table: str, rows: typing.Iterable[dict]) -> int:
        """Install rows on primaries and replicas as committed data."""
        schema = self.shard_map.schema(table)
        by_shard: dict[int, list[dict]] = {}
        if self.shard_map.is_replicated(table):
            all_rows = list(rows)
            for shard in self.shard_map.all_shards():
                by_shard[shard] = all_rows
        else:
            for row in rows:
                shard = self.shard_map.shard_for_row(table, row)
                by_shard.setdefault(shard, []).append(row)
        total = 0
        for shard, shard_rows in by_shard.items():
            loaded = self.primaries[shard].engine.bulk_load(table, shard_rows)
            for replica in self.replicas.get(shard, []):
                replica.store.bulk_load(table, shard_rows, schema)
            total += loaded
        if self.shard_map.is_replicated(table):
            return len(by_shard[0]) if by_shard else 0
        return total

    # ------------------------------------------------------------------
    # Migration (§III-A)
    # ------------------------------------------------------------------
    def migrate_to_gclock(self) -> MigrationReport:
        """Run the online GTM -> GClock transition to completion."""
        process = self.env.process(self.migration.to_gclock(), name="migrate")
        return self.env.run(until=process)

    def migrate_to_gtm(self) -> MigrationReport:
        """Run the online GClock -> GTM transition to completion."""
        process = self.env.process(self.migration.to_gtm(), name="migrate")
        return self.env.run(until=process)

    def start_migration_to_gclock(self):
        """Kick off the transition without blocking (for live-load tests)."""
        return self.env.process(self.migration.to_gclock(), name="migrate")

    def start_migration_to_gtm(self):
        return self.env.process(self.migration.to_gtm(), name="migrate")

    # ------------------------------------------------------------------
    # Fault & delay injection
    # ------------------------------------------------------------------
    def inject_delay_all(self, extra_ns: int) -> None:
        """tc-style delay between servers (Figs. 6b-6d): only links whose
        endpoints live on different machines are delayed, mirroring the
        paper's per-machine ``tc`` configuration."""
        self.network.inject_delay_between_regions(extra_ns)

    def all_nodes(self) -> list:
        nodes: list = list(self.cns) + list(self.primaries)
        for replica_list in self.replicas.values():
            nodes.extend(replica_list)
        return nodes

    def node(self, name: str):
        for candidate in self.all_nodes():
            if candidate.name == name:
                return candidate
        raise SimulationError(f"no node named {name!r}")

    def total_commits(self) -> int:
        return sum(cn.txns_committed for cn in self.cns)

    def total_aborts(self) -> int:
        return sum(cn.txns_aborted for cn in self.cns)

    def stats(self) -> dict:
        """A cluster-wide observability snapshot (commits, reads, RCP,
        replication, GTM traffic) — handy in examples and debugging."""
        replica_nodes = [replica for replica_list in self.replicas.values()
                         for replica in replica_list]
        frontier = max((primary.engine.last_commit_ts
                        for primary in self.primaries if primary.engine),
                       default=0)
        rcp = max((cn.rcp_state.rcp for cn in self.cns), default=0)
        return {
            "sim_time_s": self.env.now / 1e9,
            "mode": str(self.gtm.mode),
            "commits": self.total_commits(),
            "aborts": self.total_aborts(),
            "read_only_queries": sum(cn.read_only_queries for cn in self.cns),
            "replica_reads": sum(cn.ror_reads for cn in self.cns),
            "primary_reads": sum(cn.primary_fallback_reads for cn in self.cns),
            "gtm_requests": self.gtm.begin_requests + self.gtm.commit_requests,
            "rcp": rcp,
            "rcp_lag_ns": max(0, frontier - rcp),
            "wal_bytes": sum(primary.engine.wal.bytes_written
                             for primary in self.primaries if primary.engine),
            "wire_bytes_shipped": sum(shipper.wire_bytes_total
                                      for shipper in self.shippers),
            "replicas_up": sum(1 for replica in replica_nodes
                               if not replica.failed),
            "mean_commit_wait_ms": (
                sum(node.provider.stats.commit_wait_ns_total
                    for node in self.all_nodes())
                / max(1, sum(node.provider.stats.commit_waits
                             for node in self.all_nodes())) / 1e6),
        }


def build_cluster(config: ClusterConfig) -> GlobalDB:
    """Wire a :class:`ClusterConfig` into a running cluster."""
    env = Environment()
    if config.metrics_enabled or config.trace_enabled or config.timeseries_enabled:
        # Before node construction, so construction-time instruments land
        # in the live registry.
        rules = config.monitor_rules
        if rules is None and config.timeseries_enabled:
            rules = default_monitor_rules(
                replicas_per_shard=config.replicas_per_shard)
        enable_observability(env, metrics=config.metrics_enabled,
                             trace=config.trace_enabled,
                             max_spans=config.trace_max_spans,
                             timeseries=config.timeseries_enabled,
                             window_ns=config.telemetry_window_ns,
                             monitor_rules=rules)
    streams = RandomStreams(config.seed)
    network = Network(env, jitter_stream=streams.stream("net-jitter"))
    regions = list(config.topology.regions)
    if config.gtm_region is None:
        # The paper collocates the GTM server on the machine with the
        # lowest mean latency to the others (§V-A).
        def mean_latency(region: str) -> int:
            others = [r for r in regions if r != region]
            if not others:
                return 0
            return sum(config.topology.latency_ns(region, other)
                       for other in others) // len(others)
        gtm_region = min(regions, key=mean_latency)
    else:
        gtm_region = config.gtm_region
    if gtm_region not in regions:
        raise SimulationError(f"gtm_region {gtm_region!r} not in topology")

    devices = {
        region: GlobalTimeDevice(env, region, rng=streams.stream(f"device:{region}"))
        for region in regions
    }
    gtm = GTMServer(env, network, name="gtms", region=gtm_region)
    gtm.mode = TxnMode.GTM if config.txn_mode is TxnMode.GTM else TxnMode.GCLOCK

    shard_map = ShardMap(config.shards)
    primaries: list[DataNode] = []
    replicas: dict[int, list[DataNode]] = {}
    shippers: list[LogShipper] = []

    # --- Data nodes: primary of shard i lives in regions[i % R]; its
    # replicas go to the following regions round-robin (same region when
    # the topology has a single region, as in the One-Region cluster).
    for shard in range(config.shards):
        primary_region = regions[shard % len(regions)]
        primary = DataNode(
            env, network, f"dn{shard}", primary_region,
            devices[primary_region], streams, gtm.name, mode=config.txn_mode,
            shard_id=shard, role="primary", cost_model=config.cost_model,
            replication_policy=config.replication)
        primaries.append(primary)
        replicas[shard] = []
        for index in range(config.replicas_per_shard):
            replica_region = regions[(shard + index + 1) % len(regions)]
            replica = DataNode(
                env, network, f"dn{shard}r{index}", replica_region,
                devices[replica_region], streams, gtm.name,
                mode=config.txn_mode, shard_id=shard, role="replica",
                cost_model=config.cost_model)
            replicas[shard].append(replica)
            primary.acks.add_replica(replica.name, replica_region)
            shippers.append(LogShipper(
                env, network, primary.engine.wal, primary.name, replica.name,
                config=config.shipper,
                backlog_fn=replica_backlog(primary, replica.name)))

    # --- Computing nodes.
    cn_config = config.cn_config or CnConfig(ror_enabled=config.ror_enabled)
    if cn_config.ror_enabled != config.ror_enabled:
        cn_config = replace(cn_config, ror_enabled=config.ror_enabled)
    cns: list[ComputingNode] = []
    cn_index = 0
    for region in regions:
        for k in range(config.cns_per_region):
            cn = ComputingNode(
                env, network, f"cn-{region}-{k}", region, devices[region],
                streams, gtm.name, mode=config.txn_mode, cn_index=cn_index,
                shard_map=shard_map, config=cn_config)
            cns.append(cn)
            cn_index += 1

    # --- Placement wiring.
    all_primaries = [primary.name for primary in primaries]
    all_replicas = [replica.name
                    for replica_list in replicas.values()
                    for replica in replica_list]
    for cn in cns:
        cn.primary_of_shard = {shard: primaries[shard].name
                               for shard in range(config.shards)}
        cn.replicas_of_shard = {
            shard: [replica.name for replica in replica_list]
            for shard, replica_list in replicas.items()}
        cn.peer_cns = [node.name for node in cns]
        cn.region_cns = [node.name for node in cns if node.region == cn.region]
        cn.all_primaries = all_primaries
        cn.all_replicas = all_replicas

    # --- Links from the topology.
    endpoint_names = ([gtm.name] + [cn.name for cn in cns] + all_primaries
                      + all_replicas)
    endpoint_regions = {gtm.name: gtm_region}
    for cn in cns:
        endpoint_regions[cn.name] = cn.region
    for primary in primaries:
        endpoint_regions[primary.name] = primary.region
    for replica_list in replicas.values():
        for replica in replica_list:
            endpoint_regions[replica.name] = replica.region
    for i, src in enumerate(endpoint_names):
        for dst in endpoint_names[i + 1:]:
            region_a = endpoint_regions[src]
            region_b = endpoint_regions[dst]
            network.set_link(
                src, dst,
                latency_ns=config.topology.latency_ns(region_a, region_b),
                bandwidth_bps=config.topology.bandwidth_bps(region_a, region_b),
                jitter_ns=config.topology.jitter_ns)

    # --- Migration coordinator (participants: CNs + primary DNs; replicas
    # never issue timestamps).
    migration = MigrationCoordinator(
        env, network, "admin", gtm.name,
        participants=[cn.name for cn in cns] + all_primaries)
    network.set_link("admin", gtm.name,
                     latency_ns=config.topology.intra_latency_ns)

    # --- Background loops: the first CN of each region starts as that
    # region's RCP collector.
    for region in regions:
        region_cns = [cn for cn in cns if cn.region == region]
        for index, cn in enumerate(region_cns):
            cn.start_background(initial_collector=(index == 0))

    # --- Background vacuum on every data node.
    if config.vacuum_enabled:
        for primary in primaries:
            primary.start_vacuum(config.vacuum_interval_ns,
                                 config.vacuum_retention_ns)
        for replica_list in replicas.values():
            for replica in replica_list:
                replica.start_vacuum(config.vacuum_interval_ns,
                                     config.vacuum_retention_ns)

    # --- Failover manager (probing only when enabled).
    failover = FailoverManager(
        env=env, network=network, name="failover-mgr", primaries=primaries,
        replicas=replicas, cns=cns, shipper_config=config.shipper,
        shippers=shippers, grace_ns=config.failover_grace_ns)
    if config.auto_failover:
        failover.start()

    return GlobalDB(config, env, network, gtm, cns, primaries, replicas,
                    shippers, shard_map, migration, failover=failover,
                    devices=devices)
