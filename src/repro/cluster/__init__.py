"""Cluster assembly: nodes, topology, sharding, and the GlobalDB facade.

This package wires the substrates into a running database:

- :mod:`repro.cluster.topology` — region/latency presets, including the
  paper's One-Region and Three-City (Xi'an/Langzhong/Dongguan) clusters.
- :mod:`repro.cluster.sharding` — hash/range/replicated distribution of
  tables over shards, and shard placement over regions.
- :mod:`repro.cluster.dn` / :mod:`repro.cluster.cn` — data nodes (primary
  and replica roles) and computing nodes (transaction coordination, ROR
  routing, RCP collection).
- :mod:`repro.cluster.builder` — :class:`~repro.cluster.builder.GlobalDB`,
  the top-level handle, built from a :class:`~repro.cluster.builder.ClusterConfig`.
- :mod:`repro.cluster.client` — synchronous client sessions for examples
  and interactive use.
"""

from repro.cluster.builder import ClusterConfig, GlobalDB, build_cluster
from repro.cluster.client import Session
from repro.cluster.sharding import ShardMap
from repro.cluster.topology import Topology, one_region, three_city, two_region

__all__ = [
    "GlobalDB",
    "ClusterConfig",
    "build_cluster",
    "Session",
    "ShardMap",
    "Topology",
    "one_region",
    "two_region",
    "three_city",
]
