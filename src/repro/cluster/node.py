"""Base class for cluster nodes (CNs, DNs, and the GTM server wrapper).

Every node owns: a network endpoint, a drifting physical clock synced
against its region's time device, a GClock source, and a timestamp
provider. Node code never reads simulated true time — only its own clock.
"""

from __future__ import annotations

from repro.clocks import (
    ClockSyncConfig,
    ClockSyncDaemon,
    GClockSource,
    GlobalTimeDevice,
    PhysicalClock,
)
from repro.sim.core import Environment
from repro.sim.network import Message, Network, Request
from repro.sim.rand import RandomStreams
from repro.txn.modes import TxnMode
from repro.txn.provider import TimestampProvider


class ClusterNode:
    """A machine in the cluster."""

    def __init__(self, env: Environment, network: Network, name: str,
                 region: str, time_device: GlobalTimeDevice,
                 streams: RandomStreams, gtm_name: str,
                 mode: TxnMode = TxnMode.GTM,
                 sync_config: ClockSyncConfig | None = None):
        self.env = env
        self.network = network
        self.name = name
        self.region = region
        self.endpoint = network.add_endpoint(name, region, handler=self._on_message)
        self.clock = PhysicalClock(env, name, streams.stream(f"clock:{name}"))
        self.sync = ClockSyncDaemon(env, self.clock, time_device,
                                    sync_config or ClockSyncConfig(), name=name)
        self.gclock = GClockSource(env, self.clock, self.sync)
        self.provider = TimestampProvider(env, network, name, self.gclock,
                                          gtm_name, mode=mode)
        self.failed = False
        # Precomputed RPC dispatch: request kind -> bound handler. Built
        # once per node instead of a getattr on every request (the hot
        # path for every simulated RPC; see simlint SIM112).
        self._request_handlers = {
            attr[len("_handle_"):]: getattr(self, attr)
            for attr in dir(self) if attr.startswith("_handle_")
        }

    # ------------------------------------------------------------------
    @property
    def mode(self) -> TxnMode:
        return self.provider.mode

    def fail(self) -> None:
        """Crash the node: it stops receiving and answering."""
        self.failed = True
        self.network.set_endpoint_up(self.name, False)

    def recover(self) -> None:
        self.failed = False
        self.network.set_endpoint_up(self.name, True)

    # ------------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        if self.failed:
            return
        payload = message.payload
        if isinstance(payload, Request):
            self._on_request(payload)
        elif isinstance(payload, tuple) and payload:
            self._on_notice(payload, message)

    def _on_request(self, request: Request) -> None:
        """Dispatch an RPC via the precomputed handler table. Subclasses
        add handlers by defining ``_handle_<kind>`` methods."""
        handler = self._request_handlers.get(request.body[0])
        if handler is None:
            request.fail(ValueError(
                f"{self.name}: unknown request {request.body[0]!r}"))
            return
        handler(request)

    def _on_notice(self, payload: tuple, message: Message) -> None:
        """One-way messages (redo batches, acks, RCP updates)."""

    def _handle_set_mode(self, request: Request) -> None:
        mode = request.body[1]

        def run():
            yield from self.provider.set_mode(mode)
            request.reply(("ok", self.name))

        self.env.process(run(), name=f"{self.name}:set_mode")
