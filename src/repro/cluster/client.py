"""Synchronous client sessions.

A :class:`Session` is the ergonomic facade over the event-driven cluster:
each call schedules the CN-side coroutine and steps the simulation until it
completes, while all background machinery (replication, replay, RCP
collection, heartbeats, other clients) keeps running. This is how the
examples and interactive code drive the database; high-concurrency
workloads instead run their drivers *inside* the simulation
(:mod:`repro.workloads`).
"""

from __future__ import annotations

import typing

from repro.errors import CommitOutcomeUnknown, TransactionAborted
from repro.sim.units import ms
from repro.storage.catalog import ColumnDef, DistributionSpec, TableSchema

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB
    from repro.cluster.cn import ComputingNode, TxnContext


class Session:
    """A client connection bound to one computing node."""

    def __init__(self, db: "GlobalDB", cn: "ComputingNode"):
        self.db = db
        self.cn = cn
        self._ctx: "TxnContext | None" = None
        self._executor = None
        self._statement_cache: dict[str, typing.Any] = {}
        #: Read-your-writes floor: the session's last commit timestamp.
        #: Read-only queries fall back to primary reads until the RCP
        #: covers it, so a session always sees its own commits.
        self.last_commit_ts = 0
        # Current history op when a recorder is installed (repro.check).
        self._history_op = None

    # ------------------------------------------------------------------
    def _run(self, generator) -> typing.Any:
        process = self.db.env.process(generator, name=f"session:{self.cn.name}")
        return self.db.env.run(until=process)

    @property
    def in_txn(self) -> bool:
        return self._ctx is not None and not self._ctx.finished

    def _require_txn(self) -> "TxnContext":
        if not self.in_txn:
            raise TransactionAborted("no transaction in progress")
        return self._ctx

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start a read-write transaction."""
        if self.in_txn:
            raise TransactionAborted("transaction already in progress")
        recorder = self.db.env.history
        if recorder is not None:
            self._history_op = recorder.invoke(f"session:{self.cn.name}",
                                               "txn")
        self._ctx = self._run(self.cn.g_begin())

    def commit(self) -> int:
        """Commit; returns the commit timestamp."""
        ctx = self._require_txn()
        recorder, op = self.db.env.history, self._history_op
        try:
            wrote = bool(ctx.write_shards)
            ts = self._run(self.cn.g_commit(ctx))
            if wrote and ts > self.last_commit_ts:
                self.last_commit_ts = ts
            if recorder is not None and op is not None:
                recorder.ok(op, commit_ts=ts)
            return ts
        except CommitOutcomeUnknown as exc:
            if recorder is not None and op is not None:
                recorder.info(op, str(exc))
            raise
        except TransactionAborted as exc:
            if recorder is not None and op is not None:
                recorder.fail(op, str(exc))
            raise
        finally:
            self._ctx = None
            self._history_op = None

    def rollback(self) -> None:
        ctx = self._require_txn()
        recorder, op = self.db.env.history, self._history_op
        if recorder is not None and op is not None:
            recorder.fail(op, "rollback")
        self._history_op = None
        self._run(self.cn.g_abort(ctx))
        self._ctx = None

    def insert(self, table: str, row: dict) -> dict:
        return self._run(self.cn.g_insert(self._require_txn(), table, row))

    def update(self, table: str, key: tuple, changes: typing.Mapping) -> dict | None:
        return self._run(self.cn.g_update(self._require_txn(), table, key, changes))

    def delete(self, table: str, key: tuple) -> bool:
        return self._run(self.cn.g_delete(self._require_txn(), table, key))

    def read(self, table: str, key: tuple) -> dict | None:
        """Read inside the current transaction (from the shard primary)."""
        return self._run(self.cn.g_read(self._require_txn(), table, key))

    def read_for_update(self, table: str, key: tuple) -> dict | None:
        return self._run(self.cn.g_read_for_update(self._require_txn(), table, key))

    def scan(self, table: str,
             predicate: typing.Callable[[dict], bool] | None = None) -> list[dict]:
        return self._run(self.cn.g_scan(self._require_txn(), table, predicate))

    # ------------------------------------------------------------------
    # Auto-commit single statements
    # ------------------------------------------------------------------
    def execute_txn(self, fn: typing.Callable) -> typing.Any:
        """Run ``fn(txn)`` as one transaction with auto commit/abort.

        ``fn`` receives a :class:`TxnFacade` with the same verbs as the
        session and must not call commit/rollback itself.
        """
        def runner():
            ctx = yield from self.cn.g_begin()
            facade = _GeneratorTxn(self.cn, ctx)
            try:
                result = yield from fn(facade)
            except TransactionAborted:
                raise
            except Exception:
                yield from self.cn.g_abort(ctx)
                raise
            yield from self.cn.g_commit(ctx)
            return result
        return self._run(runner())

    # ------------------------------------------------------------------
    # Read-only queries (ROR path when enabled)
    # ------------------------------------------------------------------
    def read_only(self, table: str, key: tuple,
                  max_staleness_ms: float | None = None) -> dict | None:
        bound = None if max_staleness_ms is None else ms(max_staleness_ms)
        return self._run(self.cn.g_read_only(
            table, key, staleness_bound_ns=bound,
            min_read_ts=self.last_commit_ts))

    def read_only_multi(self, table: str, keys: typing.Sequence[tuple],
                        max_staleness_ms: float | None = None) -> list[dict | None]:
        bound = None if max_staleness_ms is None else ms(max_staleness_ms)
        return self._run(self.cn.g_read_only_multi(
            table, keys, staleness_bound_ns=bound,
            min_read_ts=self.last_commit_ts))

    def scan_only(self, table: str,
                  predicate: typing.Callable[[dict], bool] | None = None,
                  max_staleness_ms: float | None = None) -> list[dict]:
        bound = None if max_staleness_ms is None else ms(max_staleness_ms)
        return self._run(self.cn.g_scan_only(
            table, predicate, staleness_bound_ns=bound,
            min_read_ts=self.last_commit_ts))

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: typing.Sequence = ()) -> typing.Any:
        """Parse and run one SQL statement (parse results are cached, so
        repeated statements behave like prepared statements).

        Returns a list of row dicts for SELECT, a status dict for DML/DDL,
        and None for BEGIN/COMMIT/ROLLBACK.
        """
        from repro.sql import SqlExecutor, parse
        from repro.sql.ast_nodes import BeginTxn, CommitTxn, RollbackTxn

        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            self._statement_cache[sql] = statement
        if isinstance(statement, BeginTxn):
            self.begin()
            return None
        if isinstance(statement, CommitTxn):
            return self.commit()
        if isinstance(statement, RollbackTxn):
            self.rollback()
            return None
        if self._executor is None:
            self._executor = SqlExecutor(self.cn)
        ctx = self._ctx if self.in_txn else None
        result = self._run(self._executor.g_execute(
            statement, params, ctx, min_read_ts=self.last_commit_ts))
        if (isinstance(result, dict) and ctx is None
                and result.get("commit_ts", 0) > self.last_commit_ts):
            self.last_commit_ts = result["commit_ts"]
        return result

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: typing.Sequence[tuple[str, str]],
                     primary_key: typing.Sequence[str],
                     distribution: str = "hash",
                     distribution_column: str | None = None,
                     sync_replication: bool = False) -> int:
        """Online CREATE TABLE. Returns the DDL timestamp.

        ``sync_replication=True`` marks the table for per-table synchronous
        replication: commits touching it wait for every replica ack.
        """
        schema = TableSchema(
            name=name,
            columns=[ColumnDef(column, type_) for column, type_ in columns],
            primary_key=tuple(primary_key),
            distribution=DistributionSpec(distribution, distribution_column),
            sync_replication=sync_replication,
        )
        return self._run(self.cn.g_create_table(schema))

    def drop_table(self, name: str) -> int:
        return self._run(self.cn.g_drop_table(name))

    def create_index(self, table: str, column: str) -> int:
        return self._run(self.cn.g_create_index(table, column))

    # ------------------------------------------------------------------
    @property
    def rcp(self) -> int:
        """The CN's current view of the Replica Consistency Point."""
        return self.cn.rcp_state.rcp


class _GeneratorTxn:
    """Transaction verbs usable inside :meth:`Session.execute_txn` bodies
    (generator-style: each verb must be consumed with ``yield from``)."""

    def __init__(self, cn: "ComputingNode", ctx: "TxnContext"):
        self._cn = cn
        self._ctx = ctx

    def insert(self, table: str, row: dict):
        return self._cn.g_insert(self._ctx, table, row)

    def update(self, table: str, key: tuple, changes: typing.Mapping):
        return self._cn.g_update(self._ctx, table, key, changes)

    def delete(self, table: str, key: tuple):
        return self._cn.g_delete(self._ctx, table, key)

    def read(self, table: str, key: tuple):
        return self._cn.g_read(self._ctx, table, key)

    def read_for_update(self, table: str, key: tuple):
        return self._cn.g_read_for_update(self._ctx, table, key)

    def scan(self, table: str, predicate=None):
        return self._cn.g_scan(self._ctx, table, predicate)
