"""Data nodes: shard primaries and replicas.

A primary DN owns its shard's :class:`~repro.storage.engine.StorageEngine`
and is the commit point for single-shard transactions (§IV-A ordering:
``PENDING_COMMIT`` -> acquire timestamp -> commit-wait -> ``COMMIT``). A
replica DN owns a :class:`~repro.replication.replica.ReplicaStore` fed by a
:class:`~repro.replication.replayer.Replayer` and serves consistent reads
at the RCP, holding back readers that touch unresolved transactions.

Execution cost model: each operation spends ``CostModel`` CPU time inside a
bounded worker pool (semaphore), giving nodes a realistic saturation point.
Lock waits happen *outside* the pool so a lock convoy cannot deadlock the
executor.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import NetworkError, TransactionAborted, WriteConflict
from repro.replication.quorum import AckTracker, ReplicationPolicy
from repro.replication.replayer import Replayer
from repro.replication.replica import ReplicaStore
from repro.sim.network import Message, Request
from repro.sim.resources import Semaphore
from repro.sim.units import us
from repro.storage.engine import StorageEngine
from repro.storage.snapshot import Snapshot
from repro.txn.modes import TxnMode
from repro.cluster.node import ClusterNode


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs on a data node.

    These are aggregate stand-ins for everything a real op spends CPU on
    (executor, buffer management, WAL insertion, network stack), sized so a
    small simulated cluster saturates at a few thousand TPC-C transactions
    per second — the regime the paper's closed-loop experiments operate in.
    ``fast()`` gives near-zero costs for latency-focused tests.
    """

    point_read_ns: int = us(150)
    write_ns: int = us(200)
    scan_row_ns: int = us(5)
    commit_ns: int = us(200)
    workers: int = 4

    @classmethod
    def fast(cls) -> "CostModel":
        return cls(point_read_ns=us(2), write_ns=us(2), scan_row_ns=0,
                   commit_ns=us(2), workers=64)


class DataNode(ClusterNode):
    """One shard's primary or replica."""

    def __init__(self, *args, shard_id: int = 0, role: str = "primary",
                 cost_model: CostModel | None = None,
                 replication_policy: ReplicationPolicy | None = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.shard_id = shard_id
        self.role = role
        self.cost = cost_model or CostModel()
        self.pool = Semaphore(self.env, self.cost.workers)
        self.replication_policy = replication_policy or ReplicationPolicy.async_()
        if role == "primary":
            self.engine: StorageEngine | None = StorageEngine(self.env, self.name)
            self.acks = AckTracker(self.env, self.region, {})
            self.store: ReplicaStore | None = None
            self.replayer: Replayer | None = None
        else:
            self.engine = None
            self.acks = None
            self.store = ReplicaStore(self.env, self.name)
            self.replayer = Replayer(self.env, self.store)
        self.ops_served = 0
        self.commits = 0
        self.aborts = 0
        # Replica-side redo continuity: highest LSN handed to the
        # replayer, out-of-order batches parked until the gap is filled,
        # and whether a catch-up fetch is in flight.
        self._enqueued_lsn = 0
        self._redo_buffer: dict[int, list] = {}
        self._catchup_inflight = False
        self.catchup_requests = 0
        self.vacuum_runs = 0
        self.versions_vacuumed = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def is_primary(self) -> bool:
        return self.role == "primary"

    def max_commit_ts(self) -> int:
        if self.is_primary:
            return self.engine.last_commit_ts
        return self.store.max_commit_ts

    def _spawn(self, generator, kind: str) -> None:
        if self.env.metrics_on or self.env.trace_on:
            generator = self._observed(generator, kind)
        self.env.process(generator, name=f"{self.name}:{kind}")

    def _observed(self, generator, kind: str):
        """Delegating wrapper recording a handler's service time. Pure
        ``yield from`` delegation: it adds no events, so wrapping cannot
        change the simulated history."""
        started = self.env.now
        result = yield from generator
        now = self.env.now
        if self.env.metrics_on:
            self.env.metrics.histogram("dn.service_ns", node=self.name,
                                       op=kind).record(now - started)
        if self.env.trace_on:
            self.env.tracer.complete("dn", kind, started, now,
                                     track=self.name)
        return result

    def _work(self, cost_ns: int):
        """Generator: occupy a worker slot for ``cost_ns`` of CPU."""
        yield self.pool.acquire()
        try:
            if cost_ns:
                yield self.env.sleep(cost_ns)
        finally:
            self.pool.release()
        self.ops_served += 1

    def start_vacuum(self, interval_ns: int, retention_ns: int) -> None:
        """Start the background MVCC vacuum loop."""
        def loop():
            while True:
                yield self.env.sleep(interval_ns)
                if self.failed:
                    continue
                if self.is_primary and self.engine is not None:
                    stats = self.engine.vacuum(retention_ns)
                elif self.store is not None:
                    stats = self.store.vacuum(retention_ns)
                else:
                    continue
                self.vacuum_runs += 1
                self.versions_vacuumed += stats.versions_removed

        self.env.process(loop(), name=f"{self.name}:vacuum")

    # ------------------------------------------------------------------
    # Promotion (replica -> primary) after a primary failure
    # ------------------------------------------------------------------
    def promote_to_primary(self) -> int:
        """Turn this replica into the shard's primary (§IV: "a replica
        node is promoted to replace the primary node").

        The applied MVCC state carries over wholesale; a fresh WAL
        continues from the replica's applied LSN so surviving peers (after
        a rebuild to the same point) can keep consuming one dense LSN
        sequence. Transactions that were in doubt at promotion
        (``PENDING_COMMIT``/``PREPARE`` replayed, outcome never arrived)
        are aborted — their coordinator's commit round trip died with the
        old primary. Returns the number of such aborted transactions.
        """
        if self.is_primary:
            raise TransactionAborted(f"{self.name} is already a primary")
        from repro.storage.wal import WalBuffer

        store = self.store
        engine = StorageEngine(self.env, self.name)
        engine.catalog = store.catalog
        engine.clog = store.clog
        engine._tables = store._tables
        engine.last_commit_ts = store.max_commit_ts
        engine.wal = WalBuffer(name=f"{self.name}.wal",
                               start_lsn=store.applied_lsn + 1)
        aborted = 0
        for txid in list(store._unresolved):
            store._undo(txid)
            engine.clog.abort(txid)
            store._resolve(txid)
            aborted += 1
        self.engine = engine
        self.acks = AckTracker(self.env, self.region, {})
        self.store = None
        if self.replayer is not None:
            self.replayer._process.interrupt(cause="promoted")
            self.replayer = None
        self._redo_buffer.clear()
        self._catchup_inflight = False
        self.role = "primary"
        return aborted

    def rebuild_replica_from(self, source: "DataNode") -> None:
        """Re-seed this replica from a (newly promoted) primary's state —
        the simulation-level equivalent of an incremental rebuild.

        The copy is a snapshot: version chains and the commit log are
        duplicated (row payload dicts are immutable after creation and may
        be shared), so subsequent primary activity only reaches this
        replica through shipped redo. The replica's applied LSN is set to
        the base the new primary's WAL grows from, so shipped records
        apply cleanly in one dense sequence.
        """
        if self.is_primary or not source.is_primary:
            raise TransactionAborted(
                "rebuild needs a replica target and a primary source")
        from copy import copy as shallow_copy

        from repro.storage.clog import CommitLog
        from repro.storage.heap import HeapTable, RowVersion

        store = ReplicaStore(self.env, self.name)
        engine = source.engine
        store.catalog = shallow_copy(engine.catalog)
        store.catalog._tables = dict(engine.catalog._tables)
        store.catalog._ddl_ts = dict(engine.catalog._ddl_ts)
        clog = CommitLog()
        clog._records = {txid: shallow_copy(record)
                         for txid, record in engine.clog._records.items()}
        clog.rebuild_cache()
        store.clog = clog
        for name, heap in engine._tables.items():
            clone = HeapTable(name)
            for key, versions in heap._rows.items():
                clone._rows[key] = [
                    RowVersion(key=version.key, data=version.data,
                               xmin=version.xmin, xmax=version.xmax)
                    for version in versions
                ]
            for column in heap._indexes:
                clone.create_index(column)
            store._tables[name] = clone
        store.max_commit_ts = engine.last_commit_ts
        # The snapshot covers everything up to the WAL's current tail.
        store.applied_lsn = engine.wal.last_lsn
        old_replayer = self.replayer
        self.store = store
        if old_replayer is not None:
            old_replayer.store = store
            old_replayer._queue.clear()
        else:
            self.replayer = Replayer(self.env, store)
        self._enqueued_lsn = store.applied_lsn
        self._redo_buffer.clear()
        self._catchup_inflight = False

    # ------------------------------------------------------------------
    # One-way notices: redo batches and acks
    # ------------------------------------------------------------------
    #: Truncate the WAL prefix once this many records are applied
    #: everywhere (amortizes the list surgery and keeps the record pools
    #: warm without truncating on every ack).
    wal_truncate_batch = 1024

    def _on_notice(self, payload: tuple, message: Message) -> None:
        kind = payload[0]
        if kind == "redo_batch" and self.replayer is not None:
            _kind, src, records = payload
            self._receive_redo(src, records)
        elif kind == "redo_ack" and self.acks is not None:
            # Acks carry (replica, received_lsn, applied_lsn); tolerate the
            # legacy 3-tuple without the applied watermark.
            if len(payload) == 4:
                _kind, replica, lsn, applied_lsn = payload
            else:
                _kind, replica, lsn = payload
                applied_lsn = 0
            self.acks.on_ack(replica, lsn, applied_lsn)
            self._maybe_truncate_wal()

    def _maybe_truncate_wal(self) -> None:
        """Recycle the WAL prefix every replica has already applied.

        Safe because catch-up fetches start at the requester's enqueued
        LSN (>= its applied LSN) and in-flight batches only carry records
        above the receiver's applied LSN, so nothing at or below
        ``min_applied_lsn`` can ever be read or referenced again.
        """
        min_applied = self.acks.min_applied_lsn()
        wal = self.engine.wal
        if min_applied - wal.start_lsn + 1 >= self.wal_truncate_batch:
            wal.truncate_below(min_applied + 1)

    # ------------------------------------------------------------------
    # Replica-side redo reception with gap detection
    # ------------------------------------------------------------------
    def _receive_redo(self, src: str, records: list) -> None:
        """Hand a redo batch to the replayer only when it is contiguous
        with everything received so far.

        A replica that was down (or partitioned) misses batches; applying
        past the hole would silently lose transactions and break the RCP's
        consistency guarantee, so out-of-order batches are parked and the
        missing range is fetched from the primary (streaming replication
        catch-up)."""
        if not records:
            return
        if self._enqueued_lsn == 0:
            self._enqueued_lsn = self.store.applied_lsn
        first = records[0].lsn
        if first > self._enqueued_lsn + 1:
            self._redo_buffer[first] = records
            self._request_catchup(src)
            return
        self._enqueue_and_ack(src, records)
        self._flush_buffer(src)

    def _enqueue_and_ack(self, src: str, records: list) -> None:
        fresh = [record for record in records
                 if record.lsn > self._enqueued_lsn]
        if not fresh:
            return
        self.replayer.enqueue(fresh)
        self._enqueued_lsn = fresh[-1].lsn
        # Ack persistence of the contiguous prefix (quorum is on receipt);
        # piggyback the applied watermark so the primary can truncate and
        # recycle the fully-replayed WAL prefix at no extra message cost.
        self.network.send(self.name, src,
                          ("redo_ack", self.name, self._enqueued_lsn,
                           self.store.applied_lsn),
                          size_bytes=64)

    def _flush_buffer(self, src: str) -> None:
        while True:
            ready = [first for first in self._redo_buffer
                     if first <= self._enqueued_lsn + 1]
            if not ready:
                break
            for first in sorted(ready):
                self._enqueue_and_ack(src, self._redo_buffer.pop(first))
        if self._redo_buffer:
            self._request_catchup(src)

    def _request_catchup(self, src: str) -> None:
        if self._catchup_inflight:
            return
        self._catchup_inflight = True
        self.catchup_requests += 1
        request = self.network.request(
            self.name, src, ("fetch_redo", self._enqueued_lsn),
            timeout_ns=self.cost.commit_ns * 10 + 2_000_000_000)

        def on_reply(event) -> None:
            event.defused = True
            self._catchup_inflight = False
            if not event.ok or self.replayer is None:
                return
            records = event.value
            if records:
                self._enqueue_and_ack(src, records)
            self._flush_buffer(src)

        request.add_callback(on_reply)

    def _handle_fetch_redo(self, request: Request) -> None:
        """Primary side of catch-up: stream everything after the
        requester's last contiguous LSN."""
        _kind, from_lsn = request.body
        records = self.engine.wal.records_from(from_lsn)
        request.reply(records, size_bytes=max(128, sum(
            record.size_bytes() for record in records)))

    # ------------------------------------------------------------------
    # Reads (primary)
    # ------------------------------------------------------------------
    def _handle_read(self, request: Request) -> None:
        def run():
            _kind, txid, read_ts, table, key = request.body
            yield from self._work(self.cost.point_read_ns)
            if read_ts is None:
                # §III single-shard bypass: the node's own last committed
                # timestamp is the snapshot — no invocation wait, no RPC.
                read_ts = self.engine.last_commit_ts
            snapshot = Snapshot(read_ts, txid)
            row = yield from self.engine.read_waiting(table, key, snapshot)
            request.reply((row, read_ts))
        self._spawn(run(), "read")

    def _handle_read_for_update(self, request: Request) -> None:
        def run():
            _kind, txid, table, key = request.body
            yield from self._work(self.cost.point_read_ns)
            self._ensure_begun(txid)
            try:
                yield self.engine.locks.acquire(txid, table, key)
            except WriteConflict as exc:
                request.reply(("conflict", str(exc)))
                return
            heap = self.engine.table(table)
            current = self.engine._current_for_write(heap, key, txid)
            request.reply(("ok", dict(current.data) if current else None))
        self._spawn(run(), "read_for_update")

    def _handle_scan(self, request: Request) -> None:
        def run():
            _kind, txid, read_ts, table, predicate = request.body
            if read_ts is None:
                read_ts = self.engine.last_commit_ts
            snapshot = Snapshot(read_ts, txid)
            rows = list(self.engine.scan(table, snapshot, predicate))
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * len(rows))
            request.reply((rows, read_ts))
        self._spawn(run(), "scan")

    def _handle_lookup_index(self, request: Request) -> None:
        def run():
            _kind, txid, read_ts, table, column, value = request.body
            if read_ts is None:
                read_ts = self.engine.last_commit_ts
            snapshot = Snapshot(read_ts, txid)
            rows = self.engine.lookup_index(table, column, value, snapshot)
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * len(rows))
            request.reply((rows, read_ts))
        self._spawn(run(), "lookup_index")

    def _handle_read_batch(self, request: Request) -> None:
        """Several point reads in one statement (e.g. an IN-list)."""
        def run():
            _kind, txid, read_ts, table, keys = request.body
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * len(keys))
            if read_ts is None:
                read_ts = self.engine.last_commit_ts
            snapshot = Snapshot(read_ts, txid)
            rows = []
            for key in keys:
                row = yield from self.engine.read_waiting(table, key, snapshot)
                rows.append(row)
            request.reply((rows, read_ts))
        self._spawn(run(), "read_batch")

    def _handle_lookup_batch(self, request: Request) -> None:
        """Several index lookups in one statement (e.g. a range over a
        synthesized key column)."""
        def run():
            _kind, txid, read_ts, table, column, values = request.body
            if read_ts is None:
                read_ts = self.engine.last_commit_ts
            snapshot = Snapshot(read_ts, txid)
            rows = []
            for value in values:
                rows.extend(self.engine.lookup_index(table, column, value,
                                                     snapshot))
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * max(len(rows),
                                                                len(values)))
            request.reply((rows, read_ts))
        self._spawn(run(), "lookup_batch")

    # ------------------------------------------------------------------
    # Writes (primary)
    # ------------------------------------------------------------------
    def _ensure_begun(self, txid: int) -> None:
        if not self.engine.clog.known(txid):
            self.engine.begin(txid)

    def _handle_insert(self, request: Request) -> None:
        def run():
            _kind, txid, table, row = request.body
            yield from self._work(self.cost.write_ns)
            self._ensure_begun(txid)
            try:
                self.engine.insert(txid, table, row)
            except TransactionAborted as exc:  # pragma: no cover - defensive
                request.reply(("conflict", str(exc)))
                return
            except Exception as exc:
                request.reply(("error", exc))
                return
            request.reply(("ok", row))
        self._spawn(run(), "insert")

    def _handle_update(self, request: Request) -> None:
        def run():
            _kind, txid, table, key, changes = request.body
            yield from self._work(self.cost.write_ns)
            self._ensure_begun(txid)
            try:
                yield self.engine.locks.acquire(txid, table, key)
            except WriteConflict as exc:
                request.reply(("conflict", str(exc)))
                return
            resolved = self._resolve_changes(txid, table, key, changes)
            row = self.engine.update(txid, table, key, resolved)
            request.reply(("ok", row))
        self._spawn(run(), "update")

    def _resolve_changes(self, txid: int, table: str, key: tuple,
                         changes: typing.Mapping) -> dict:
        """Evaluate callable change values against the current row —
        modelling SQL's ``SET col = col + 1`` read-modify-write."""
        if not any(callable(value) for value in changes.values()):
            return dict(changes)
        heap = self.engine.table(table)
        current = self.engine._current_for_write(heap, key, txid)
        base = current.data if current is not None else {}
        resolved = {}
        for column, value in changes.items():
            resolved[column] = value(base.get(column)) if callable(value) else value
        return resolved

    def _handle_delete(self, request: Request) -> None:
        def run():
            _kind, txid, table, key = request.body
            yield from self._work(self.cost.write_ns)
            self._ensure_begun(txid)
            try:
                yield self.engine.locks.acquire(txid, table, key)
            except WriteConflict as exc:
                request.reply(("conflict", str(exc)))
                return
            deleted = self.engine.delete(txid, table, key)
            request.reply(("ok", deleted))
        self._spawn(run(), "delete")

    # ------------------------------------------------------------------
    # Commit protocols (primary)
    # ------------------------------------------------------------------
    def _commit_policy(self, txid: int) -> ReplicationPolicy:
        """Per-table sync replication: a commit touching any table marked
        ``sync_replication`` waits for every replica's ack (maximum
        freshness); otherwise the node's configured policy applies."""
        for table in self.engine.tables_written(txid):
            try:
                schema = self.engine.catalog.table(table)
            except Exception:
                continue
            if schema.sync_replication:
                return ReplicationPolicy.quorum(len(self.acks.replica_regions))
        return self.replication_policy

    def _handle_commit_local(self, request: Request) -> None:
        """Single-shard commit: this DN is the commit point."""
        def run():
            _kind, txid, txn_mode = request.body
            yield from self._work(self.cost.commit_ns)
            if not self.engine.clog.known(txid):
                self.engine.begin(txid)  # read-only on this shard: trivial
            policy = self._commit_policy(txid)
            self.engine.log_pending_commit(txid)
            try:
                ts = yield from self.provider.commit_ts(txn_mode, txid=txid)
            except TransactionAborted as exc:
                self.engine.abort(txid)
                self.aborts += 1
                request.reply(("abort", exc.reason))
                return
            lsn = self.engine.commit(txid, ts)
            yield from self._flush_wait(txid, lsn, policy)
            self.commits += 1
            request.reply(("ok", ts))
        self._spawn(run(), "commit_local")

    def _flush_wait(self, txid: int, lsn: int, policy: ReplicationPolicy):
        """Generator: wait for the commit record's replication acks,
        recording the wait as the transaction's WAL-flush phase."""
        started = self.env.now
        yield self.acks.wait_for(lsn, policy)
        now = self.env.now
        if self.env.metrics_on:
            self.env.metrics.histogram("wal.flush_wait_ns",
                                       node=self.name).record(now - started)
        if self.env.trace_on:
            self.env.tracer.complete("wal", "flush", started, now,
                                     track=self.name, txid=txid, lsn=lsn)

    def _handle_prepare(self, request: Request) -> None:
        def run():
            _kind, txid = request.body
            yield from self._work(self.cost.commit_ns)
            self._ensure_begun(txid)
            self.engine.prepare(txid)
            request.reply(("ok",))
        self._spawn(run(), "prepare")

    def _handle_commit_prepared(self, request: Request) -> None:
        def run():
            _kind, txid, ts = request.body
            yield from self._work(self.cost.commit_ns)
            policy = self._commit_policy(txid)
            lsn = self.engine.commit_prepared(txid, ts)
            yield from self._flush_wait(txid, lsn, policy)
            self.commits += 1
            request.reply(("ok", ts))
        self._spawn(run(), "commit_prepared")

    def _handle_abort(self, request: Request) -> None:
        def run():
            _kind, txid = request.body
            yield from self._work(self.cost.commit_ns)
            if self.engine.clog.known(txid) and self.engine.is_active(txid):
                self.engine.abort(txid)
            self.aborts += 1
            request.reply(("ok",))
        self._spawn(run(), "abort")

    def _handle_abort_prepared(self, request: Request) -> None:
        def run():
            _kind, txid = request.body
            yield from self._work(self.cost.commit_ns)
            self.engine.abort_prepared(txid)
            self.aborts += 1
            request.reply(("ok",))
        self._spawn(run(), "abort_prepared")

    # ------------------------------------------------------------------
    # Heartbeats and DDL (primary)
    # ------------------------------------------------------------------
    def _handle_heartbeat(self, request: Request) -> None:
        def run():
            if self.mode is TxnMode.GCLOCK:
                # Safe without commit-wait: a clock lower bound can never
                # exceed a later commit's (waited-out) timestamp.
                earliest, _latest = self.gclock.bounds()
                ts = max(self.engine.last_commit_ts, earliest)
            else:
                # Best-effort: a GTM outage must not kill the heartbeat
                # path (or the node). Without a counter the frontier just
                # doesn't advance past the last commit this round.
                try:
                    counter = yield self.network.request(
                        self.name, self.provider.gtm_name, ("begin",))
                except NetworkError:
                    counter = 0
                ts = max(self.engine.last_commit_ts, counter)
            self.engine.heartbeat(ts)
            request.reply(("ok", ts))
        self._spawn(run(), "heartbeat")

    def _handle_ddl(self, request: Request) -> None:
        def run():
            _kind, action, table, payload, ddl_ts = request.body
            yield from self._work(self.cost.write_ns)
            if action == "create_table":
                self.engine.create_table(payload, ddl_ts=ddl_ts)
            elif action == "drop_table":
                self.engine.drop_table(table, ddl_ts=ddl_ts)
            elif action == "create_index":
                self.engine.create_index(table, payload, ddl_ts=ddl_ts)
            elif action == "drop_index":
                self.engine.drop_index(table, payload, ddl_ts=ddl_ts)
            request.reply(("ok",))
        self._spawn(run(), "ddl")

    # ------------------------------------------------------------------
    # Replica-side requests
    # ------------------------------------------------------------------
    def _handle_read_replica(self, request: Request) -> None:
        def run():
            _kind, read_ts, table, key = request.body
            yield from self._work(self.cost.point_read_ns)
            yield from self.store.wait_frontier(read_ts)
            row = yield from self.store.read_waiting(table, key, Snapshot(read_ts))
            request.reply((row, read_ts))
        self._spawn(run(), "read_replica")

    def _handle_scan_replica(self, request: Request) -> None:
        def run():
            _kind, read_ts, table, predicate = request.body
            yield from self.store.wait_frontier(read_ts)
            rows = self.store.scan(table, Snapshot(read_ts), predicate)
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * len(rows))
            request.reply((rows, read_ts))
        self._spawn(run(), "scan_replica")

    def _handle_read_replica_batch(self, request: Request) -> None:
        def run():
            _kind, read_ts, table, keys = request.body
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * len(keys))
            yield from self.store.wait_frontier(read_ts)
            snapshot = Snapshot(read_ts)
            rows = []
            for key in keys:
                row = yield from self.store.read_waiting(table, key, snapshot)
                rows.append(row)
            request.reply((rows, read_ts))
        self._spawn(run(), "read_replica_batch")

    def _handle_lookup_replica_batch(self, request: Request) -> None:
        def run():
            _kind, read_ts, table, column, values = request.body
            yield from self.store.wait_frontier(read_ts)
            snapshot = Snapshot(read_ts)
            rows = []
            for value in values:
                rows.extend(self.store.lookup_index(table, column, value,
                                                    snapshot))
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * max(len(rows),
                                                                len(values)))
            request.reply((rows, read_ts))
        self._spawn(run(), "lookup_replica_batch")

    def _handle_lookup_replica(self, request: Request) -> None:
        def run():
            _kind, read_ts, table, column, value = request.body
            yield from self.store.wait_frontier(read_ts)
            rows = self.store.lookup_index(table, column, value, Snapshot(read_ts))
            yield from self._work(self.cost.point_read_ns
                                  + self.cost.scan_row_ns * len(rows))
            request.reply((rows, read_ts))
        self._spawn(run(), "lookup_replica")

    # ------------------------------------------------------------------
    # Shared status surface
    # ------------------------------------------------------------------
    def _handle_max_commit_ts(self, request: Request) -> None:
        request.reply(self.max_commit_ts())

    def _handle_status(self, request: Request) -> None:
        backlog = self.replayer.backlog_batches if self.replayer else 0
        request.reply({
            "name": self.name,
            "region": self.region,
            "role": self.role,
            "shard": self.shard_id,
            "max_commit_ts": self.max_commit_ts(),
            "load": self.pool.load + backlog,
            "up": not self.failed,
        })
