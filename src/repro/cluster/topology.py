"""Cluster topologies: regions and inter-region links.

Presets mirror the paper's two experimental clusters (§V):

- :func:`one_region` — three servers in one rack on 10 GbE (the paper's
  One-Region cluster). ``tc``-style delay can be injected on top for the
  Fig. 6b-6d sweeps.
- :func:`three_city` — Xi'an, Langzhong, Dongguan, forming a triangle with
  25 / 35 / 55 ms one-way edges and constrained inter-city bandwidth (the
  paper's Three-City cluster).
"""

from __future__ import annotations

import itertools
import typing
from dataclasses import dataclass, field

from repro.sim.units import ms, us


@dataclass(frozen=True)
class Topology:
    """Regions plus pairwise one-way latency and bandwidth."""

    name: str
    regions: tuple[str, ...]
    #: (region_a, region_b) -> one-way latency ns (symmetric; missing
    #: pairs use intra_latency if same region).
    latency: typing.Mapping[tuple[str, str], int] = field(default_factory=dict)
    intra_latency_ns: int = us(50)
    intra_bandwidth_bps: float = 10e9  # 10 GbE within a rack/region
    inter_bandwidth_bps: float = 10e9
    jitter_ns: int = 0

    def latency_ns(self, region_a: str, region_b: str) -> int:
        if region_a == region_b:
            return self.intra_latency_ns
        key = (region_a, region_b)
        if key in self.latency:
            return self.latency[key]
        return self.latency[(region_b, region_a)]

    def bandwidth_bps(self, region_a: str, region_b: str) -> float:
        return (self.intra_bandwidth_bps if region_a == region_b
                else self.inter_bandwidth_bps)

    def region_pairs(self) -> typing.Iterator[tuple[str, str]]:
        return itertools.combinations(self.regions, 2)


def one_region(servers: int = 3) -> Topology:
    """The paper's One-Region cluster: ``servers`` machines in one rack on
    10 GbE.

    Each "region" is one physical server (the paper's clusters put one CN,
    two primary DNs and four replica DNs on each of three servers); the
    50 us links model the in-rack network, and ``tc``-style delay injection
    (Figs. 6b-6d) applies between servers exactly as in the paper.
    """
    names = tuple(f"server{i + 1}" for i in range(servers))
    latency = {pair: us(50) for pair in itertools.combinations(names, 2)}
    return Topology(name="one-region", regions=names, latency=latency)


def two_region(latency: int = ms(30)) -> Topology:
    """A simple two-region topology (used in tests and small examples)."""
    return Topology(
        name="two-region",
        regions=("east", "west"),
        latency={("east", "west"): latency},
        inter_bandwidth_bps=1e9,
    )


def three_city() -> Topology:
    """The paper's Three-City cluster: Xi'an / Langzhong / Dongguan with
    25, 35, and 55 ms edges and constrained inter-city bandwidth."""
    return Topology(
        name="three-city",
        regions=("xian", "langzhong", "dongguan"),
        latency={
            ("xian", "langzhong"): ms(25),
            ("langzhong", "dongguan"): ms(35),
            ("xian", "dongguan"): ms(55),
        },
        inter_bandwidth_bps=200e6,  # "considerably lower" than 10 GbE
    )


def chain_topology(region_count: int, hop_latency_ns: int = ms(20)) -> Topology:
    """N regions on a line, ``hop_latency_ns`` per hop — used by the
    Fig. 1a motivation sweep ('more distant regions')."""
    regions = tuple(f"region{i}" for i in range(region_count))
    latency = {}
    for i in range(region_count):
        for j in range(i + 1, region_count):
            latency[(regions[i], regions[j])] = hop_latency_ns * (j - i)
    return Topology(
        name=f"chain-{region_count}",
        regions=regions,
        latency=latency,
        inter_bandwidth_bps=200e6,
    )
