"""Sharding: distributing table rows over data-node groups.

A *shard* is one primary data node plus its replicas. Tables declare a
distribution (hash on a column, range on a column, or replicated); the
:class:`ShardMap` resolves a row or key to the shard(s) that store it.

Hash distribution uses a stable hash (not Python's randomized ``hash``) so
placements are reproducible across runs and processes.
"""

from __future__ import annotations

import hashlib
import typing

from repro.errors import StorageError
from repro.storage.catalog import TableSchema


def stable_hash(value: typing.Any) -> int:
    """A deterministic hash for distribution keys."""
    digest = hashlib.md5(repr(value).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardMap:
    """Maps keys to shards for every known table."""

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise StorageError(f"need at least one shard, got {shard_count}")
        self.shard_count = shard_count
        self._schemas: dict[str, TableSchema] = {}
        #: table -> sorted list of (upper_bound_exclusive, shard) for range
        #: distribution; computed from observed bounds at registration.
        self._range_bounds: dict[str, list[tuple[typing.Any, int]]] = {}
        #: (table, dist_value) -> shard. Sound because the mapping is a
        #: pure function of shard_count (fixed) and the table's
        #: registration; cleared whenever a registration changes.
        self._value_cache: dict[tuple, int] = {}
        #: table -> position of the distribution column in the primary
        #: key, or None when the key does not determine the shard.
        self._key_plan: dict[str, int | None] = {}

    def register(self, schema: TableSchema,
                 range_bounds: list[tuple[typing.Any, int]] | None = None) -> None:
        """Register a table. ``range_bounds`` is required for range
        distribution: a sorted list of (upper_bound_exclusive, shard_id),
        with the last entry covering the remainder via ``None``."""
        self._schemas[schema.name] = schema
        if schema.distribution.method == "range":
            if not range_bounds:
                raise StorageError(
                    f"range-distributed table {schema.name} needs range_bounds")
            self._range_bounds[schema.name] = list(range_bounds)
        self._value_cache.clear()
        self._key_plan.clear()

    def unregister(self, table: str) -> None:
        self._schemas.pop(table, None)
        self._range_bounds.pop(table, None)
        self._value_cache.clear()
        self._key_plan.clear()

    def schema(self, table: str) -> TableSchema:
        schema = self._schemas.get(table)
        if schema is None:
            raise StorageError(f"table {table} not registered with shard map")
        return schema

    def is_replicated(self, table: str) -> bool:
        return self.schema(table).distribution.method == "replicated"

    # ------------------------------------------------------------------
    def shard_for_value(self, table: str, dist_value: typing.Any) -> int:
        """Shard id for a distribution-key value (memoized: the stable
        hash is an md5, far more expensive than a dict probe)."""
        cache_key = (table, dist_value)
        shard = self._value_cache.get(cache_key)
        if shard is not None:
            return shard
        schema = self.schema(table)
        method = schema.distribution.method
        if method == "hash":
            shard = stable_hash(dist_value) % self.shard_count
        elif method == "range":
            shard = None
            for upper, bound_shard in self._range_bounds[table]:
                if upper is None or dist_value < upper:
                    shard = bound_shard
                    break
            if shard is None:
                raise StorageError(
                    f"value {dist_value!r} outside range bounds of {table}")
        else:
            raise StorageError(
                f"table {table} is replicated; reads may use any shard")
        self._value_cache[cache_key] = shard
        return shard

    def shard_for_row(self, table: str, row: typing.Mapping[str, typing.Any]) -> int:
        schema = self.schema(table)
        if schema.distribution.method == "replicated":
            raise StorageError(
                f"table {table} is replicated; writes touch every shard")
        column = schema.distribution.column
        if column not in row:
            raise StorageError(
                f"row for {table} missing distribution column {column!r}")
        return self.shard_for_value(table, row[column])

    def shard_for_key(self, table: str, key: tuple) -> int | None:
        """Shard for a primary-key lookup, or None when the key does not
        determine the shard (distribution column outside the PK)."""
        try:
            index = self._key_plan[table]
        except KeyError:
            schema = self.schema(table)
            index = None
            if schema.distribution.method != "replicated":
                column = schema.distribution.column
                if column in schema.primary_key:
                    index = schema.primary_key.index(column)
            self._key_plan[table] = index
        if index is None:
            return None
        return self.shard_for_value(table, key[index])

    def write_shards(self, table: str, row: typing.Mapping[str, typing.Any]
                     ) -> list[int]:
        """All shards a row write must touch."""
        if self.is_replicated(table):
            return list(range(self.shard_count))
        return [self.shard_for_row(table, row)]

    def all_shards(self) -> list[int]:
        return list(range(self.shard_count))
