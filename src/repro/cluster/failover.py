"""Shard failover: detect a dead primary and promote a replica.

The paper (§IV): "If a primary node fails, its replica nodes can continue
to serve read-only queries until the failed primary node recovers, or a
replica node is promoted to replace the primary node."

The manager probes every shard primary; after ``grace_ns`` of silence it
promotes the most-caught-up surviving replica (highest applied LSN — the
least data loss an asynchronous scheme permits), rebuilds the remaining
replicas from the new primary's snapshot, restarts log shipping, and
pushes the new placement to every CN. Transactions whose commits died with
the old primary are lost (the paper's acknowledged async-replication
trade-off); the manager reports how many.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.replication.shipper import (LogShipper, ShipperConfig,
                                       replica_backlog)
from repro.sim.core import Environment
from repro.sim.events import settle
from repro.sim.network import Network
from repro.sim.units import ms



@dataclass
class FailoverEvent:
    """Record of one completed failover."""

    at_ns: int
    shard: int
    old_primary: str
    new_primary: str
    in_doubt_aborted: int
    lost_commit_ts_window: int  # old frontier minus promoted frontier
    rcp_gap_healed: int = 0     # advertised RCP minus promoted frontier
    #: Gap measured but NOT healed — nonzero only when ``rcp_guard`` is
    #: off, i.e. the promotion broke the ROR promise. The repro.explore
    #: oracle layer asserts this is always zero.
    rcp_gap_unhealed: int = 0


@dataclass
class FailoverManager:
    """Monitors primaries and performs promotions."""

    env: Environment
    network: Network
    name: str
    primaries: list  # mutated in place: index = shard id
    replicas: dict   # shard -> list of DataNode
    cns: list
    shipper_config: ShipperConfig
    shippers: list
    probe_interval_ns: int = ms(50)
    grace_ns: int = ms(300)
    #: ROR promotion guard (the PR-8 fix): heal the gap between a stale
    #: promoted replica's redo frontier and the advertised RCP. Always on
    #: in real clusters; ``repro.explore`` turns it off (its "rcp-gap"
    #: known-bug injection) to prove the fuzzer rediscovers the historical
    #: violation — never disable it outside that self-test.
    rcp_guard: bool = True
    events: list = field(default_factory=list)
    _down_since: dict = field(default_factory=dict)
    _process: typing.Any = None

    def start(self) -> None:
        if self.name not in self.network._endpoints:
            self.network.add_endpoint(self.name, region="admin")
        self._process = self.env.process(self._run(), name="failover-manager")

    def _run(self):
        while True:
            yield self.env.sleep(self.probe_interval_ns)
            probes = {
                shard: self.network.request(
                    self.name, primary.name, ("status",),
                    timeout_ns=self.probe_interval_ns * 2)
                for shard, primary in enumerate(self.primaries)
            }
            yield settle(self.env, list(probes.values()))
            now = self.env.now
            for shard, probe in probes.items():
                if probe.ok:
                    self._down_since.pop(shard, None)
                    continue
                if shard not in self._down_since and self.env.series_on:
                    self.env.series.mark("failover.phase", shard=f"s{shard}",
                                         phase="down-detected")
                first_seen = self._down_since.setdefault(shard, now)
                if now - first_seen >= self.grace_ns:
                    self._promote(shard)
                    self._down_since.pop(shard, None)

    # ------------------------------------------------------------------
    def _promote(self, shard: int) -> None:
        old_primary = self.primaries[shard]
        survivors = [replica for replica in self.replicas[shard]
                     if not replica.failed]
        if not survivors:
            return  # nothing to promote; shard stays down
        chosen = max(survivors, key=lambda replica: replica.store.applied_lsn)
        old_frontier = old_primary.engine.last_commit_ts
        promoted_frontier = chosen.store.max_commit_ts
        in_doubt = chosen.promote_to_primary()
        chosen.replication_policy = old_primary.replication_policy
        self.primaries[shard] = chosen
        # ROR safety: CNs have advertised strongly-consistent replica reads
        # up to their RCP. If the promoted replica's redo frontier is behind
        # that (it was partitioned from the collector while peers advanced
        # the RCP), a replica read at the RCP on this shard would silently
        # return stale rows. Advance the new primary's frontier past every
        # CN's RCP with a redo heartbeat *before* rebuilding replicas, so
        # the whole shard group inherits the guarantee. Commits the old
        # primary acknowledged in that window are still lost (async
        # replication's trade-off) — this guard only ensures reads below
        # the advertised RCP never see a gap they were promised not to.
        advertised_rcp = max((cn.rcp_state.rcp for cn in self.cns), default=0)
        rcp_gap = max(0, advertised_rcp - chosen.engine.last_commit_ts)
        if rcp_gap and self.rcp_guard:
            chosen.engine.heartbeat(advertised_rcp)
        # Rebuild the remaining replicas from the new primary and restart
        # shipping to them.
        self._drop_shippers_from(old_primary.name)
        for replica in self.replicas[shard]:
            if replica is chosen or replica.failed:
                continue
            replica.rebuild_replica_from(chosen)
            chosen.acks.add_replica(replica.name, replica.region)
            self.shippers.append(LogShipper(
                self.env, self.network, chosen.engine.wal, chosen.name,
                replica.name, config=self.shipper_config,
                backlog_fn=replica_backlog(chosen, replica.name)))
        self.replicas[shard] = [replica for replica in self.replicas[shard]
                                if replica is not chosen]
        # Push the new placement to every CN (config-channel update plus
        # an in-band notice for realism).
        for cn in self.cns:
            cn.primary_of_shard[shard] = chosen.name
            cn.replicas_of_shard[shard] = [replica.name for replica in
                                           self.replicas[shard]]
            cn.all_primaries = [primary.name for primary in self.primaries]
            cn.all_replicas = [replica.name
                               for replica_list in self.replicas.values()
                               for replica in replica_list]
            if cn._collector is not None:
                cn._collector.replica_names = list(cn.all_replicas)
            cn.invalidate_routes()
            self.network.send(self.name, cn.name,
                              ("placement_update", shard, chosen.name),
                              size_bytes=128)
        self.events.append(FailoverEvent(
            at_ns=self.env.now, shard=shard, old_primary=old_primary.name,
            new_primary=chosen.name, in_doubt_aborted=in_doubt,
            lost_commit_ts_window=max(0, old_frontier - promoted_frontier),
            rcp_gap_healed=rcp_gap if self.rcp_guard else 0,
            rcp_gap_unhealed=0 if self.rcp_guard else rcp_gap))
        if self.env.series_on:
            self.env.series.mark("failover.phase", shard=f"s{shard}",
                                 phase="promoted")

    def _drop_shippers_from(self, primary_name: str) -> None:
        for shipper in list(self.shippers):
            if shipper.src == primary_name:
                shipper.pause()
                self.shippers.remove(shipper)
