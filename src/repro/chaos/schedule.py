"""The nemesis schedule DSL and driver.

A :class:`FaultSpec` binds an injector to a timing shape:

- **one-shot**: ``at_s`` only — inject once, never heal from the schedule
  (e.g. a clock step, whose heal is the next sync anchor).
- **windowed**: ``at_s`` + ``duration_s`` — inject, hold, heal.
- **periodic**: add ``every_s``/``repeat`` — the window recurs.

A :class:`FaultSchedule` is a named, ordered tuple of specs; a
:class:`Nemesis` binds a schedule to a cluster and drives it from
simulation processes. Every injector draws randomness from its own seeded
``chaos:`` stream (derived from the cluster seed, the schedule name and
the spec's position), so one ``(config.seed, schedule)`` pair produces
exactly one fault history — re-running is bit-identical, which is what
lets ``tests/test_chaos.py`` and the CI chaos smoke pin digests.

The driver emits ``chaos.*`` observability on every action (a trace
instant and a time-series mark — both passive) and keeps an event log;
:meth:`Nemesis.quiesce` heals anything still active so the cluster always
leaves the run clean.
"""

from __future__ import annotations

import hashlib
import json
import typing
from dataclasses import dataclass, field

from repro.chaos.injectors import (Injector, injector_from_dict,
                                   injector_to_dict)
from repro.sim.rand import RandomStreams
from repro.sim.units import seconds

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB


@dataclass(frozen=True)
class FaultSpec:
    """One injector with a timing shape (see module docstring)."""

    injector: Injector
    at_s: float
    duration_s: float = 0.0
    every_s: float | None = None
    repeat: int = 1

    def __post_init__(self):
        if self.repeat > 1 and self.every_s is None:
            raise ValueError("periodic FaultSpec needs every_s")
        if self.every_s is not None and self.every_s <= self.duration_s:
            raise ValueError("every_s must exceed duration_s "
                             "(windows must not overlap themselves)")

    # -- serialization (the repro.explore mutation/replay surface) -----
    def to_dict(self) -> dict:
        return {
            "injector": injector_to_dict(self.injector),
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "every_s": self.every_s,
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(injector=injector_from_dict(data["injector"]),
                   at_s=data["at_s"],
                   duration_s=data.get("duration_s", 0.0),
                   every_s=data.get("every_s"),
                   repeat=data.get("repeat", 1))


@dataclass(frozen=True)
class FaultSchedule:
    """A named composition of fault specs."""

    name: str
    specs: tuple[FaultSpec, ...]

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(name=data["name"],
                   specs=tuple(FaultSpec.from_dict(spec)
                               for spec in data["specs"]))

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — equal schedules serialize
        byte-identically, which the explorer's corpus dedup relies on."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(payload))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()


@dataclass
class ChaosEvent:
    """One nemesis action, for logs/tests/digests."""

    at_ns: int
    fault: str
    action: str   # "inject" | "heal" | "quiesce"
    detail: str = ""

    def to_dict(self) -> dict:
        return {"at_ns": self.at_ns, "fault": self.fault,
                "action": self.action, "detail": self.detail}


class Nemesis:
    """Drives a :class:`FaultSchedule` against a running cluster."""

    def __init__(self, db: "GlobalDB", schedule: FaultSchedule):
        self.db = db
        self.schedule = schedule
        self.events: list[ChaosEvent] = []
        self._streams = RandomStreams(db.config.seed)
        self._active: dict[int, Injector] = {}
        self._processes: list = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "Nemesis":
        """Spawn one driver process per spec (idempotent)."""
        if self._started:
            return self
        self._started = True
        for index, spec in enumerate(self.schedule.specs):
            rng = self._streams.stream(
                f"chaos:{self.schedule.name}:{index}:{spec.injector.name}")
            self._processes.append(self.db.env.process(
                self._drive(index, spec, rng),
                name=f"nemesis:{spec.injector.name}:{index}"))
        return self

    def _drive(self, index: int, spec: FaultSpec, rng):
        env = self.db.env
        yield env.timeout(max(0, seconds(spec.at_s)))
        for occurrence in range(spec.repeat):
            detail = spec.injector.inject(self.db, rng)
            self._record("inject", spec.injector, detail)
            if spec.duration_s > 0:
                # One-shot faults (duration 0) are fire-and-forget: their
                # heal is a no-op, so they never count as "active".
                self._active[index] = spec.injector
                yield env.timeout(seconds(spec.duration_s))
                self._heal(index, spec.injector)
            if occurrence + 1 < spec.repeat:
                yield env.timeout(seconds(spec.every_s - spec.duration_s))

    def _heal(self, index: int, injector: Injector,
              action: str = "heal") -> None:
        injector.heal(self.db)
        self._active.pop(index, None)
        self._record(action, injector, "")

    def _record(self, action: str, injector: Injector, detail: str) -> None:
        env = self.db.env
        self.events.append(ChaosEvent(at_ns=env.now, fault=injector.name,
                                      action=action, detail=detail))
        if env.trace_on:
            env.tracer.instant("chaos", f"{injector.name}:{action}",
                               track="nemesis", detail=detail)
        if env.series_on:
            env.series.mark("chaos.fault", fault=injector.name,
                            action=action)

    # ------------------------------------------------------------------
    def quiesce(self) -> int:
        """Heal every still-active fault (after the run, outside sim
        processes). Returns how many faults needed healing — zero when
        the schedule healed everything itself."""
        healed = 0
        for index in sorted(self._active):
            self._heal(index, self._active[index], action="quiesce")
            healed += 1
        return healed

    @property
    def active_faults(self) -> list[str]:
        return [self._active[index].name for index in sorted(self._active)]

    def digest(self) -> str:
        """Stable digest over the event log (determinism proofs)."""
        payload = "\n".join(
            f"{event.at_ns}|{event.fault}|{event.action}|{event.detail}"
            for event in self.events)
        return hashlib.sha256(payload.encode()).hexdigest()
