"""``repro.chaos``: a sim-native nemesis fault-injection engine.

The paper's headline claims are *correctness under adversity* — external
consistency from decentralized GClock timestamps, zero-downtime GTM↔GClock
migration, strongly consistent replica reads bounded by the RCP. This
package actively attacks them: a schedule DSL
(:class:`~repro.chaos.schedule.FaultSpec` /
:class:`~repro.chaos.schedule.FaultSchedule` /
:class:`~repro.chaos.schedule.Nemesis`) drives injectors
(:mod:`repro.chaos.injectors`) for network partitions, link degradation,
node crash/restart, clock anomalies, GTM outage and mode migration under
fire. Everything is seeded-stream deterministic and heals exactly; paired
with :mod:`repro.check` it turns consistency claims into machine-checked
facts::

    from repro.chaos import make_nemesis
    nemesis = make_nemesis("default", db).start()
    ...run a workload...
    nemesis.quiesce()   # heal anything still active

Injectors are the only sanctioned fault surface: simlint's SIM111 flags
direct link/clock mutation anywhere outside this package and the layers
that implement the primitives.
"""

from repro.chaos.injectors import (
    INJECTOR_KINDS,
    AsymmetricPartition,
    BandwidthCollapse,
    ClockDriftBurst,
    ClockStep,
    GtmOutage,
    Injector,
    JitterStorm,
    LatencySpike,
    LinkCut,
    MigrationUnderFire,
    NodeCrash,
    RegionPartition,
    RegionSplit,
    SyncOutage,
    injector_from_dict,
    injector_to_dict,
)
from repro.chaos.nemeses import NEMESES, available_nemeses, make_nemesis
from repro.chaos.schedule import (
    ChaosEvent,
    FaultSchedule,
    FaultSpec,
    Nemesis,
)

__all__ = [
    "Injector",
    "RegionPartition",
    "RegionSplit",
    "AsymmetricPartition",
    "LinkCut",
    "LatencySpike",
    "JitterStorm",
    "BandwidthCollapse",
    "NodeCrash",
    "ClockDriftBurst",
    "ClockStep",
    "SyncOutage",
    "GtmOutage",
    "MigrationUnderFire",
    "FaultSpec",
    "FaultSchedule",
    "Nemesis",
    "ChaosEvent",
    "NEMESES",
    "INJECTOR_KINDS",
    "available_nemeses",
    "make_nemesis",
    "injector_to_dict",
    "injector_from_dict",
]
