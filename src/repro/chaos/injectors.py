"""Fault injectors: the primitive faults the nemesis composes.

Every injector is a small stateful object with an ``inject(db, rng)`` /
``heal(db)`` pair. ``inject`` saves whatever state it perturbs and returns
a short human-readable detail string (recorded in the chaos event log);
``heal`` restores the saved state *exactly*, so a healed cluster is
indistinguishable from one that never saw the fault (modulo the work the
cluster did while degraded — replication catch-up, failover, aborted
transactions). Both calls mutate simulation state directly and never
schedule events: all timing lives in the :class:`~repro.chaos.schedule.
Nemesis` driver, which keeps the engine's determinism story trivial.

Randomness comes exclusively from the seeded stream the nemesis hands in
(``chaos:*`` streams of :class:`~repro.sim.rand.RandomStreams`), and every
candidate enumeration is sorted, so a given ``(cluster seed, schedule)``
pair always yields the same fault sequence.

Injectors are the *only* place the repository is allowed to reach into
``Network``/``Link``/clock fault surfaces — simlint's SIM111 flags direct
mutation anywhere else.
"""

from __future__ import annotations

import typing

from repro.sim.units import ms, us

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import random

    from repro.cluster.builder import GlobalDB


class Injector:
    """Base class: one fault with deterministic inject/heal."""

    name = "injector"

    def inject(self, db: "GlobalDB", rng: "random.Random") -> str:
        raise NotImplementedError

    def heal(self, db: "GlobalDB") -> None:
        raise NotImplementedError

    def params(self) -> dict:
        """Constructor kwargs that rebuild an equivalent (fresh) injector.

        Only configuration goes here — runtime state (saved link values,
        crash victims) stays out, so a deserialized injector is always in
        its pre-inject state. This is what lets :mod:`repro.explore`
        serialize, mutate and replay fault schedules.
        """
        return {}

    def __repr__(self) -> str:  # stable, for event logs and tests
        return f"<{type(self).__name__} {self.name}>"


def _cross_region_links(db: "GlobalDB", region_a: str | None = None,
                        region_b: str | None = None):
    """Yield ``(src, dst, link)`` for every directed inter-region link.

    With ``region_a``/``region_b`` given, only links between that pair (in
    both directions); otherwise every inter-region link. Enumeration is
    sorted by endpoint name for determinism.
    """
    network = db.network
    names = sorted(network._endpoints)
    for src in names:
        for dst in names:
            if src == dst:
                continue
            src_region = network._endpoints[src].region
            dst_region = network._endpoints[dst].region
            if src_region == dst_region:
                continue
            if region_a is not None:
                if {src_region, dst_region} != {region_a, region_b}:
                    continue
            yield src, dst, network.link(src, dst)


# ----------------------------------------------------------------------
# Network partitions
# ----------------------------------------------------------------------
class RegionPartition(Injector):
    """Bidirectional cut between two regions (the paper's WAN failure)."""

    name = "region-partition"

    def __init__(self, region_a: str, region_b: str):
        self.region_a = region_a
        self.region_b = region_b

    def params(self) -> dict:
        return {"region_a": self.region_a, "region_b": self.region_b}

    def inject(self, db, rng) -> str:
        db.network.set_partition(self.region_a, self.region_b, blocked=True)
        return f"{self.region_a}<->{self.region_b}"

    def heal(self, db) -> None:
        db.network.set_partition(self.region_a, self.region_b, blocked=False)


class RegionSplit(Injector):
    """Isolate one region from every other region (region-wide outage)."""

    name = "region-split"

    def __init__(self, region: str):
        self.region = region

    def params(self) -> dict:
        return {"region": self.region}

    def inject(self, db, rng) -> str:
        for other in db.config.topology.regions:
            if other != self.region:
                db.network.set_partition(self.region, other, blocked=True)
        return f"{self.region} isolated"

    def heal(self, db) -> None:
        for other in db.config.topology.regions:
            if other != self.region:
                db.network.set_partition(self.region, other, blocked=False)


class AsymmetricPartition(Injector):
    """Block traffic ``region_a -> region_b`` only; replies still flow.

    The classic "half-open" failure: A's requests vanish while B can keep
    talking to A, which exercises timeout/ retry paths that a symmetric
    cut never reaches.
    """

    name = "asymmetric-partition"

    def __init__(self, region_a: str, region_b: str):
        self.region_a = region_a
        self.region_b = region_b
        self._blocked: list = []

    def params(self) -> dict:
        return {"region_a": self.region_a, "region_b": self.region_b}

    def inject(self, db, rng) -> str:
        network = db.network
        self._blocked = []
        for src in sorted(network._endpoints):
            for dst in sorted(network._endpoints):
                if src == dst:
                    continue
                if (network._endpoints[src].region == self.region_a
                        and network._endpoints[dst].region == self.region_b):
                    link = network.link(src, dst)
                    if not link.blocked:
                        link.blocked = True
                        self._blocked.append(link)
        return f"{self.region_a}->{self.region_b} one-way"

    def heal(self, db) -> None:
        for link in self._blocked:
            link.blocked = False
        self._blocked = []


class LinkCut(Injector):
    """Cut the single (bidirectional) link between two named endpoints."""

    name = "link-cut"

    def __init__(self, src: str, dst: str):
        self.src = src
        self.dst = dst

    def params(self) -> dict:
        return {"src": self.src, "dst": self.dst}

    def inject(self, db, rng) -> str:
        db.network.link(self.src, self.dst).blocked = True
        db.network.link(self.dst, self.src).blocked = True
        return f"{self.src}<->{self.dst}"

    def heal(self, db) -> None:
        db.network.link(self.src, self.dst).blocked = False
        db.network.link(self.dst, self.src).blocked = False


# ----------------------------------------------------------------------
# Link degradation
# ----------------------------------------------------------------------
class LatencySpike(Injector):
    """tc-style extra one-way delay on every inter-region link."""

    name = "latency-spike"

    def __init__(self, extra_ms: float = 20.0,
                 region_a: str | None = None, region_b: str | None = None):
        self.extra_ns = ms(extra_ms)
        self.region_a = region_a
        self.region_b = region_b
        self._saved: list = []

    def params(self) -> dict:
        return {"extra_ms": self.extra_ns / 1e6,
                "region_a": self.region_a, "region_b": self.region_b}

    def inject(self, db, rng) -> str:
        self._saved = []
        for _src, _dst, link in _cross_region_links(db, self.region_a,
                                                    self.region_b):
            self._saved.append((link, link.extra_delay_ns))
            link.extra_delay_ns = self.extra_ns
        scope = (f"{self.region_a}<->{self.region_b}"
                 if self.region_a else "all inter-region")
        return f"+{self.extra_ns / 1e6:.0f}ms on {scope}"

    def heal(self, db) -> None:
        for link, previous in self._saved:
            link.extra_delay_ns = previous
        self._saved = []


class JitterStorm(Injector):
    """Raise per-message jitter on every inter-region link."""

    name = "jitter-storm"

    def __init__(self, jitter_ms: float = 5.0):
        self.jitter_ns = ms(jitter_ms)
        self._saved: list = []

    def params(self) -> dict:
        return {"jitter_ms": self.jitter_ns / 1e6}

    def inject(self, db, rng) -> str:
        self._saved = []
        for _src, _dst, link in _cross_region_links(db):
            self._saved.append((link, link.jitter_ns))
            link.jitter_ns = self.jitter_ns
        return f"jitter {self.jitter_ns / 1e6:.0f}ms inter-region"

    def heal(self, db) -> None:
        for link, previous in self._saved:
            link.jitter_ns = previous
        self._saved = []


class BandwidthCollapse(Injector):
    """Divide inter-region bandwidth by ``factor`` (congestion collapse)."""

    name = "bandwidth-collapse"

    def __init__(self, factor: float = 100.0):
        self.factor = factor
        self._saved: list = []

    def params(self) -> dict:
        return {"factor": self.factor}

    def inject(self, db, rng) -> str:
        self._saved = []
        for _src, _dst, link in _cross_region_links(db):
            self._saved.append((link, link.bandwidth_bps))
            link.bandwidth_bps = link.bandwidth_bps / self.factor
        return f"inter-region bandwidth /{self.factor:g}"

    def heal(self, db) -> None:
        for link, previous in self._saved:
            link.bandwidth_bps = previous
        self._saved = []


# ----------------------------------------------------------------------
# Node crash / restart
# ----------------------------------------------------------------------
class NodeCrash(Injector):
    """Crash one node (endpoint down, all in-flight traffic dropped) and
    later restart it.

    ``kind`` picks the candidate pool: ``"replica"`` (default — recovery
    exercises the redo gap-detection + catch-up path), ``"primary"``
    (commits on that shard abort until restart, or a replica is promoted
    when auto-failover is on), or ``"cn"``. The victim is drawn from the
    seeded chaos stream over a sorted candidate list.
    """

    name = "node-crash"

    def __init__(self, kind: str = "replica", node: str | None = None):
        if kind not in ("replica", "primary", "cn"):
            raise ValueError(f"unknown crash kind: {kind!r}")
        self.kind = kind
        self.node_name = node
        self._victim = None

    def params(self) -> dict:
        return {"kind": self.kind, "node": self.node_name}

    def _candidates(self, db) -> list:
        if self.kind == "replica":
            pool = [replica for replica_list in db.replicas.values()
                    for replica in replica_list]
        elif self.kind == "primary":
            pool = list(db.primaries)
        else:
            pool = list(db.cns)
        return sorted((node for node in pool if not node.failed),
                      key=lambda node: node.name)

    def inject(self, db, rng) -> str:
        if self.node_name is not None:
            self._victim = db.node(self.node_name)
        else:
            candidates = self._candidates(db)
            if not candidates:
                return f"no live {self.kind} to crash"
            self._victim = rng.choice(candidates)
        self._victim.fail()
        return f"crash {self._victim.name}"

    def heal(self, db) -> None:
        if self._victim is not None:
            self._victim.recover()
            self._victim = None


# ----------------------------------------------------------------------
# Clock anomalies
# ----------------------------------------------------------------------
class ClockDriftBurst(Injector):
    """Multiply one region's clock drift by ``factor``.

    Both the actual drift rate *and* the advertised ``max_drift_ppm``
    bound are scaled, so the fault models honestly-noisier hardware: error
    bounds (and hence GClock commit waits) grow, but external consistency
    must survive. Lying about the bound (drift beyond ``max_drift_ppm``)
    would be a different experiment — one where the checker *should* find
    violations.
    """

    name = "clock-drift-burst"

    def __init__(self, region: str, factor: float = 8.0):
        self.region = region
        self.factor = factor
        self._saved: list = []

    def params(self) -> dict:
        return {"region": self.region, "factor": self.factor}

    def inject(self, db, rng) -> str:
        self._saved = []
        for node in sorted((node for node in db.all_nodes()
                            if node.region == self.region),
                           key=lambda node: node.name):
            clock = node.clock
            self._saved.append((clock, clock.max_drift_ppm, clock._drift_ppm))
            clock.max_drift_ppm = clock.max_drift_ppm * self.factor
            sign = 1 if rng.random() < 0.5 else -1
            clock._drift_ppm = sign * clock.max_drift_ppm
        return f"{self.region} drift x{self.factor:g}"

    def heal(self, db) -> None:
        for clock, max_ppm, drift_ppm in self._saved:
            clock.max_drift_ppm = max_ppm
            clock._drift_ppm = drift_ppm
        self._saved = []


class ClockStep(Injector):
    """Step one node's clock by a bounded jump.

    The step is kept inside the sync residual envelope (under half the
    sync RTT), so the clock stays within its advertised error bound and
    correctness must hold; the next sync-daemon anchor absorbs the jump,
    which is the deterministic heal.
    """

    name = "clock-step"

    def __init__(self, step_us: float = 20.0, region: str | None = None):
        self.step_ns = us(step_us)
        self.region = region

    def params(self) -> dict:
        return {"step_us": self.step_ns / 1e3, "region": self.region}

    def inject(self, db, rng) -> str:
        nodes = sorted((node for node in db.all_nodes()
                        if self.region is None or node.region == self.region),
                       key=lambda node: node.name)
        if not nodes:
            return "no node to step"
        victim = rng.choice(nodes)
        delta = self.step_ns if rng.random() < 0.5 else -self.step_ns
        victim.clock.step(delta)
        return f"{victim.name} stepped {delta / 1e3:+.0f}us"

    def heal(self, db) -> None:
        # The sync daemon re-anchors at its next period boundary; nothing
        # to undo here (undoing the step would itself be a second step).
        return


class SyncOutage(Injector):
    """Fail one region's global time device: syncs stop succeeding and
    every clock in the region ages against its drift bound, growing
    ``T_err`` — commit waits lengthen but stay correct (§III)."""

    name = "sync-outage"

    def __init__(self, region: str):
        self.region = region

    def params(self) -> dict:
        return {"region": self.region}

    def inject(self, db, rng) -> str:
        db.devices[self.region].fail()
        return f"time device {self.region} down"

    def heal(self, db) -> None:
        db.devices[self.region].recover()


# ----------------------------------------------------------------------
# GTM outage and migration under fire
# ----------------------------------------------------------------------
class GtmOutage(Injector):
    """Take the GTM server off the network.

    In GClock mode this must be harmless (the paper's availability
    argument); in GTM/DUAL mode transactions abort until it heals.
    """

    name = "gtm-outage"

    def inject(self, db, rng) -> str:
        db.network.set_endpoint_up(db.gtm.name, False)
        return f"{db.gtm.name} down"

    def heal(self, db) -> None:
        db.network.set_endpoint_up(db.gtm.name, True)


class MigrationUnderFire(Injector):
    """Round-trip the cluster's timestamp mode while other faults rage.

    From GClock the trip is GClock→(DUAL)→GTM→(DUAL)→GClock; from GTM it
    is the reverse. The migration runs in a supervised process — a failed
    leg (e.g. the GTM outage overlapping a DUAL entry) is recorded, not
    fatal. Self-healing: ``heal`` is a no-op, completion is the heal.
    """

    name = "migration-under-fire"

    def __init__(self):
        self.reports: list = []
        self.errors: list[str] = []
        self._process = None

    def inject(self, db, rng) -> str:
        from repro.errors import ReproError
        from repro.txn.modes import TxnMode

        start_mode = db.gtm.mode

        def round_trip():
            legs = ([db.migration.to_gtm, db.migration.to_gclock]
                    if start_mode is not TxnMode.GTM
                    else [db.migration.to_gclock, db.migration.to_gtm])
            for leg in legs:
                try:
                    report = yield from leg()
                    self.reports.append(report)
                except ReproError as exc:
                    self.errors.append(f"{leg.__name__}: {exc}")
                    return

        self._process = db.env.process(round_trip(), name="chaos-migration")
        return f"mode round trip from {start_mode}"

    def heal(self, db) -> None:
        return


# ----------------------------------------------------------------------
# Serialization registry (used by the FaultSpec/FaultSchedule JSON codec)
# ----------------------------------------------------------------------
#: ``Injector.name`` -> class, for rebuilding injectors from dicts.
INJECTOR_KINDS: dict[str, type] = {
    cls.name: cls
    for cls in (
        RegionPartition, RegionSplit, AsymmetricPartition, LinkCut,
        LatencySpike, JitterStorm, BandwidthCollapse, NodeCrash,
        ClockDriftBurst, ClockStep, SyncOutage, GtmOutage,
        MigrationUnderFire,
    )
}


def injector_to_dict(injector: Injector) -> dict:
    """Serialize an injector's *configuration* (never runtime state)."""
    return {"kind": injector.name, "params": injector.params()}


def injector_from_dict(data: dict) -> Injector:
    """Rebuild a fresh (pre-inject) injector from :func:`injector_to_dict`
    output. Unknown kinds raise ``ValueError`` so a corrupt or
    forward-versioned artifact fails loudly instead of silently skipping
    faults."""
    try:
        cls = INJECTOR_KINDS[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown injector kind {data.get('kind')!r}") \
            from None
    return cls(**data.get("params", {}))
