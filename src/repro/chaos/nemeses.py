"""Named nemesis presets.

Each preset is a function ``(db) -> FaultSchedule`` so schedules can adapt
to the cluster's topology (region names, replica counts). Timings are
expressed in sim-seconds from nemesis start and are tuned for the
``repro.check`` runner's default ~1.75 s window: every windowed fault
heals before the workload stops, and the checker demands a clean bill of
health afterwards.

The **default** preset is the acceptance gate: it strings together every
fault family the paper's claims must survive — link degradation, a WAN
partition with a mode migration running *through* it, a replica crash with
redo catch-up, clock-drift and time-device anomalies, a GTM outage (which
GClock mode must shrug off), and a bounded clock step.
"""

from __future__ import annotations

import typing

from repro.chaos.injectors import (
    AsymmetricPartition,
    BandwidthCollapse,
    ClockDriftBurst,
    ClockStep,
    GtmOutage,
    JitterStorm,
    LatencySpike,
    MigrationUnderFire,
    NodeCrash,
    RegionPartition,
    RegionSplit,
    SyncOutage,
)
from repro.chaos.schedule import FaultSchedule, FaultSpec, Nemesis

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB


def _regions(db: "GlobalDB") -> list[str]:
    return list(db.config.topology.regions)


def default_schedule(db: "GlobalDB") -> FaultSchedule:
    regions = _regions(db)
    specs = [
        FaultSpec(LatencySpike(extra_ms=20.0), at_s=0.20, duration_s=0.25),
    ]
    if len(regions) >= 2:
        specs += [
            FaultSpec(RegionPartition(regions[0], regions[-1]),
                      at_s=0.55, duration_s=0.25),
            FaultSpec(MigrationUnderFire(), at_s=0.60),
            FaultSpec(ClockDriftBurst(regions[1 % len(regions)], factor=8.0),
                      at_s=1.00, duration_s=0.30),
            FaultSpec(SyncOutage(regions[0]), at_s=1.35, duration_s=0.20),
        ]
    specs += [
        FaultSpec(NodeCrash("replica"), at_s=0.90, duration_s=0.30),
        FaultSpec(GtmOutage(), at_s=1.35, duration_s=0.25),
        FaultSpec(ClockStep(step_us=20.0), at_s=1.55),
    ]
    return FaultSchedule("default", tuple(specs))


def partitions_schedule(db: "GlobalDB") -> FaultSchedule:
    regions = _regions(db)
    specs: list[FaultSpec] = []
    if len(regions) >= 2:
        specs = [
            FaultSpec(RegionPartition(regions[0], regions[-1]),
                      at_s=0.25, duration_s=0.20, every_s=0.60, repeat=2),
            FaultSpec(AsymmetricPartition(regions[-1], regions[0]),
                      at_s=0.55, duration_s=0.20),
            FaultSpec(RegionSplit(regions[0]), at_s=1.15, duration_s=0.20),
        ]
    return FaultSchedule("partitions", tuple(specs))


def degradation_schedule(db: "GlobalDB") -> FaultSchedule:
    return FaultSchedule("degradation", (
        FaultSpec(LatencySpike(extra_ms=30.0), at_s=0.20, duration_s=0.30),
        FaultSpec(JitterStorm(jitter_ms=5.0), at_s=0.60, duration_s=0.30),
        FaultSpec(BandwidthCollapse(factor=200.0), at_s=1.00, duration_s=0.30),
    ))


def crash_schedule(db: "GlobalDB") -> FaultSchedule:
    return FaultSchedule("crash", (
        FaultSpec(NodeCrash("replica"), at_s=0.25, duration_s=0.30),
        FaultSpec(NodeCrash("replica"), at_s=0.75, duration_s=0.30),
        FaultSpec(NodeCrash("cn"), at_s=1.15, duration_s=0.25),
    ))


def clocks_schedule(db: "GlobalDB") -> FaultSchedule:
    regions = _regions(db)
    return FaultSchedule("clocks", (
        FaultSpec(ClockDriftBurst(regions[0], factor=10.0),
                  at_s=0.20, duration_s=0.40),
        FaultSpec(SyncOutage(regions[-1]), at_s=0.70, duration_s=0.25),
        FaultSpec(ClockStep(step_us=25.0), at_s=1.05,
                  every_s=0.25, repeat=3),
    ))


def gtm_schedule(db: "GlobalDB") -> FaultSchedule:
    return FaultSchedule("gtm", (
        FaultSpec(GtmOutage(), at_s=0.25, duration_s=0.35),
        FaultSpec(MigrationUnderFire(), at_s=0.75),
        FaultSpec(GtmOutage(), at_s=1.30, duration_s=0.25),
    ))


def none_schedule(db: "GlobalDB") -> FaultSchedule:
    """A fault-free control run (the checker should still pass)."""
    return FaultSchedule("none", ())


NEMESES: dict[str, typing.Callable[["GlobalDB"], FaultSchedule]] = {
    "default": default_schedule,
    "partitions": partitions_schedule,
    "degradation": degradation_schedule,
    "crash": crash_schedule,
    "clocks": clocks_schedule,
    "gtm": gtm_schedule,
    "none": none_schedule,
}


def available_nemeses() -> list[str]:
    return sorted(NEMESES)


def make_nemesis(name: str, db: "GlobalDB") -> Nemesis:
    """Build (not start) the named nemesis against ``db``."""
    try:
        builder = NEMESES[name]
    except KeyError:
        raise ValueError(f"unknown nemesis {name!r} "
                         f"(available: {', '.join(available_nemeses())})") \
            from None
    return Nemesis(db, builder(db))
