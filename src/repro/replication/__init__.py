"""Asynchronous (and quorum/synchronous) physical replication.

Primaries ship redo in batches over the simulated network; replicas replay
it with a parallel-apply cost model and track the maximum applied commit
timestamp that feeds the Replica Consistency Point (§IV-A). The shipper
implements the paper's log-shipping optimisations (LZ4 compression, BBR,
Nagle-off) via :mod:`repro.sim.transport`; quorum policies implement the
baseline's synchronous modes (same-city vs cross-region quorums).
"""

from repro.replication.quorum import AckTracker, ReplicationPolicy
from repro.replication.replica import ReplicaStore
from repro.replication.replayer import Replayer
from repro.replication.shipper import LogShipper, ShipperConfig

__all__ = [
    "ReplicaStore",
    "Replayer",
    "LogShipper",
    "ShipperConfig",
    "ReplicationPolicy",
    "AckTracker",
]
