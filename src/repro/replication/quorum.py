"""Replication policies and commit-time ack tracking.

The paper's GaussDB baseline commits only after a quorum of replicas has
persisted the redo (optionally requiring remote-region replicas, which is
what protects against regional disasters but costs WAN round trips).
GlobalDB's headline configuration is fully asynchronous. Policies:

- ``async_()`` — commit immediately; replicas catch up later.
- ``quorum(k)`` — wait for ``k`` replica acks, any location.
- ``same_city_quorum(k)`` — wait for ``k`` acks from same-region replicas
  (survives a node loss, not a regional disaster).
- ``remote_quorum(k)`` — wait for ``k`` acks including at least one from a
  different region (survives a regional disaster; the slow baseline in
  Fig. 6a).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.sim.core import Environment
from repro.sim.events import Event


@dataclass(frozen=True)
class ReplicationPolicy:
    """How long a commit must wait for replica acknowledgements."""

    kind: str  # "async" | "quorum" | "same_city" | "remote"
    count: int = 0

    @classmethod
    def async_(cls) -> "ReplicationPolicy":
        return cls(kind="async")

    @classmethod
    def quorum(cls, count: int = 1) -> "ReplicationPolicy":
        return cls(kind="quorum", count=count)

    @classmethod
    def same_city_quorum(cls, count: int = 1) -> "ReplicationPolicy":
        return cls(kind="same_city", count=count)

    @classmethod
    def remote_quorum(cls, count: int = 1) -> "ReplicationPolicy":
        return cls(kind="remote", count=count)

    @property
    def synchronous(self) -> bool:
        return self.kind != "async"


@dataclass
class _Waiter:
    lsn: int
    event: Event
    policy: ReplicationPolicy


class AckTracker:
    """Tracks per-replica acked LSNs for one primary and wakes commit
    waiters once their policy is satisfied."""

    def __init__(self, env: Environment, primary_region: str,
                 replica_regions: typing.Mapping[str, str]):
        self.env = env
        self.primary_region = primary_region
        #: replica endpoint name -> region
        self.replica_regions = dict(replica_regions)
        self.acked: dict[str, int] = {name: 0 for name in self.replica_regions}
        #: replica endpoint name -> highest *applied* (replayed) LSN it has
        #: reported. Lags ``acked`` (receipt); its minimum bounds how much
        #: WAL prefix the primary may truncate.
        self.applied: dict[str, int] = {name: 0 for name in self.replica_regions}
        self._waiters: list[_Waiter] = []
        # Shared pre-settled event for waits that are satisfied on arrival
        # (async policy, or a quorum already met). Yielding it resumes the
        # process inline without touching the event queue, so async-policy
        # commits cost zero kernel events here.
        done = Event(env)
        done._ok = True
        done._value = True
        done.callbacks = None
        self._done = done

    def add_replica(self, name: str, region: str) -> None:
        self.replica_regions[name] = region
        self.acked.setdefault(name, 0)
        self.applied.setdefault(name, 0)

    def on_ack(self, replica: str, lsn: int, applied_lsn: int = 0) -> None:
        """A replica acknowledged persistence up to ``lsn`` (and, when the
        ack carries it, replay up to ``applied_lsn``)."""
        if lsn > self.acked.get(replica, 0):
            self.acked[replica] = lsn
        if applied_lsn > self.applied.get(replica, 0):
            self.applied[replica] = applied_lsn
        if not self._waiters:
            return
        still_waiting = []
        for waiter in self._waiters:
            if self._satisfied(waiter.lsn, waiter.policy):
                if not waiter.event.triggered:
                    waiter.event.succeed(True)
            else:
                still_waiting.append(waiter)
        self._waiters = still_waiting

    def wait_for(self, lsn: int, policy: ReplicationPolicy) -> Event:
        """Event that fires once ``policy`` is satisfied for ``lsn``.

        Fires immediately for async policies or already-satisfied quorums —
        those return a shared pre-settled event instead of allocating and
        scheduling a fresh one per commit.
        """
        if not policy.synchronous or self._satisfied(lsn, policy):
            return self._done
        event = Event(self.env)
        self._waiters.append(_Waiter(lsn=lsn, event=event, policy=policy))
        return event

    def _satisfied(self, lsn: int, policy: ReplicationPolicy) -> bool:
        if not policy.synchronous:
            return True
        acked_names = [name for name, acked in self.acked.items() if acked >= lsn]
        if policy.kind == "quorum":
            return len(acked_names) >= policy.count
        if policy.kind == "same_city":
            same = [name for name in acked_names
                    if self.replica_regions[name] == self.primary_region]
            return len(same) >= policy.count
        if policy.kind == "remote":
            remote = [name for name in acked_names
                      if self.replica_regions[name] != self.primary_region]
            return len(acked_names) >= policy.count and len(remote) >= 1
        raise ValueError(f"unknown policy kind {policy.kind!r}")

    def min_acked_lsn(self) -> int:
        if not self.acked:
            return 0
        return min(self.acked.values())

    def min_applied_lsn(self) -> int:
        """Lowest applied LSN across replicas — the WAL truncation floor."""
        if not self.applied:
            return 0
        return min(self.applied.values())
