"""Replica-side storage state: redo application and read holdback.

A :class:`ReplicaStore` mirrors one shard's data by applying redo records in
LSN order. It tracks:

- ``max_commit_ts`` — the largest commit timestamp applied (from COMMIT,
  COMMIT_PREPARED, HEARTBEAT, and DDL records). This is the value the RCP
  collector polls (§IV-A).
- *unresolved* transactions — those with a replayed ``PENDING_COMMIT`` or
  ``PREPARE`` but no outcome record yet. Their tuples are effectively
  locked: a reader whose visibility check touches one must wait until the
  outcome record is replayed (the paper's safeguard against out-of-order
  commit-record writes and in-doubt 2PC transactions).

The store is passive; :class:`~repro.replication.replayer.Replayer` drives
it with a timing model.
"""

from __future__ import annotations

import typing

from repro.errors import StorageError
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.storage.catalog import Catalog
from repro.storage.clog import CommitLog, TxnStatus
from repro.storage.heap import HeapTable, RowVersion
from repro.storage.redo import (
    RedoAbort,
    RedoAbortPrepared,
    RedoCommit,
    RedoCommitPrepared,
    RedoDdl,
    RedoDelete,
    RedoHeartbeat,
    RedoInsert,
    RedoPendingCommit,
    RedoPrepare,
    RedoRecord,
    RedoUpdate,
)
from repro.storage.snapshot import Snapshot


class ReplicaStore:
    """Applied state of one shard replica."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.catalog = Catalog()
        self.clog = CommitLog()
        self._tables: dict[str, HeapTable] = {}
        self.max_commit_ts = 0
        self.applied_lsn = 0
        self.records_applied = 0
        # txid -> list of versions whose predecessor we ended (for abort undo)
        self._txn_versions: dict[int, list[tuple]] = {}
        # Unresolved transactions: PENDING_COMMIT/PREPARE seen, outcome not.
        self._unresolved: dict[int, Event] = {}
        # Readers waiting for the applied frontier to reach a timestamp
        # (safe-time waits): list of (threshold_ts, event).
        self._frontier_waiters: list[tuple[int, Event]] = []

    # ------------------------------------------------------------------
    # Redo application
    # ------------------------------------------------------------------
    def apply(self, record: RedoRecord) -> None:
        """Apply one redo record (records must arrive in LSN order)."""
        if record.lsn and record.lsn <= self.applied_lsn:
            return  # duplicate delivery (e.g. catch-up overlap)
        handler = self._APPLY[type(record)]
        handler(self, record)
        if record.lsn:
            self.applied_lsn = record.lsn
        self.records_applied += 1

    def apply_batch(self, records: list[RedoRecord]) -> None:
        """Apply a batch of redo records in order.

        Equivalent to ``for r in records: self.apply(r)`` with the dispatch
        table and bookkeeping hoisted out of the loop — the replayer's hot
        path applies thousands of records per simulated batch."""
        dispatch = self._APPLY
        applied_lsn = self.applied_lsn
        count = 0
        for record in records:
            lsn = record.lsn
            if lsn and lsn <= applied_lsn:
                continue
            dispatch[type(record)](self, record)
            if lsn:
                applied_lsn = lsn
            count += 1
        self.applied_lsn = applied_lsn
        self.records_applied += count

    def _apply_insert(self, record: RedoInsert) -> None:
        self.clog.ensure(record.txid)
        heap = self.table(record.table)
        version = RowVersion(key=record.key, data=dict(record.row),
                             xmin=record.txid)
        heap.add_version(version)
        self._txn_versions.setdefault(record.txid, []).append(
            ("insert", heap, version, None))

    def _apply_update(self, record: RedoUpdate) -> None:
        self.clog.ensure(record.txid)
        heap = self.table(record.table)
        old = self._current_unended(heap, record.key, record.txid)
        if old is not None:
            old.xmax = record.txid
        version = RowVersion(key=record.key, data=dict(record.row),
                             xmin=record.txid)
        heap.add_version(version)
        self._txn_versions.setdefault(record.txid, []).append(
            ("update", heap, version, old))

    def _apply_delete(self, record: RedoDelete) -> None:
        self.clog.ensure(record.txid)
        heap = self.table(record.table)
        old = self._current_unended(heap, record.key, record.txid)
        if old is not None:
            old.xmax = record.txid
            self._txn_versions.setdefault(record.txid, []).append(
                ("delete", heap, None, old))

    def _current_unended(self, heap: HeapTable, key: tuple,
                         txid: int) -> RowVersion | None:
        """The version this write supersedes: the transaction's own latest
        un-ended version, else the latest un-ended foreign version."""
        fallback = None
        for version in heap.versions(key):
            if version.xmax is not None:
                continue
            if version.xmin == txid:
                return version
            if fallback is None:
                fallback = version
        return fallback

    def _apply_pending_commit(self, record: RedoPendingCommit) -> None:
        self.clog.ensure(record.txid)
        self._unresolved.setdefault(record.txid, Event(self.env))

    def _apply_prepare(self, record: RedoPrepare) -> None:
        self.clog.ensure(record.txid)
        self.clog.prepare(record.txid)
        self._unresolved.setdefault(record.txid, Event(self.env))

    def _apply_commit(self, record: RedoCommit) -> None:
        self.clog.ensure(record.txid)
        self.clog.commit(record.txid, record.commit_ts)
        self._txn_versions.pop(record.txid, None)
        self._note_ts(record.commit_ts)
        self._resolve(record.txid)

    def _apply_commit_prepared(self, record: RedoCommitPrepared) -> None:
        self.clog.ensure(record.txid)
        self.clog.commit(record.txid, record.commit_ts)
        self._txn_versions.pop(record.txid, None)
        self._note_ts(record.commit_ts)
        self._resolve(record.txid)

    def _apply_abort(self, record: RedoAbort) -> None:
        self._undo(record.txid)
        self.clog.ensure(record.txid)
        self.clog.abort(record.txid)
        self._resolve(record.txid)

    def _apply_abort_prepared(self, record: RedoAbortPrepared) -> None:
        self._undo(record.txid)
        self.clog.ensure(record.txid)
        self.clog.abort(record.txid)
        self._resolve(record.txid)

    def _undo(self, txid: int) -> None:
        for entry in reversed(self._txn_versions.pop(txid, [])):
            _kind, heap, version, old_version = entry
            if version is not None:
                heap.remove_version(version)
            if old_version is not None and old_version.xmax == txid:
                old_version.xmax = None

    def _apply_ddl(self, record: RedoDdl) -> None:
        if record.action == "create_table":
            self.catalog.create_table(record.payload, ddl_ts=record.commit_ts)
            self._tables[record.table] = HeapTable(record.table)
        elif record.action == "drop_table":
            self.catalog.drop_table(record.table, ddl_ts=record.commit_ts)
            self._tables.pop(record.table, None)
        elif record.action == "create_index":
            self.table(record.table).create_index(record.payload)
            self.catalog.record_ddl(record.table, record.commit_ts)
        elif record.action == "drop_index":
            self.table(record.table).drop_index(record.payload)
            self.catalog.record_ddl(record.table, record.commit_ts)
        else:
            raise StorageError(f"unknown DDL action {record.action!r}")
        self._note_ts(record.commit_ts)

    def _apply_heartbeat(self, record: RedoHeartbeat) -> None:
        self._note_ts(record.commit_ts)

    def _note_ts(self, commit_ts: int) -> None:
        if commit_ts > self.max_commit_ts:
            self.max_commit_ts = commit_ts
            if self.env.series_on:
                self.env.series.gauge("repl.applied_ts", commit_ts,
                                      node=self.name)
            if self._frontier_waiters:
                still_waiting = []
                for threshold, event in self._frontier_waiters:
                    if threshold <= commit_ts:
                        if not event.triggered:
                            event.succeed(commit_ts)
                    else:
                        still_waiting.append((threshold, event))
                self._frontier_waiters = still_waiting

    def _resolve(self, txid: int) -> None:
        event = self._unresolved.pop(txid, None)
        if event is not None and not event.triggered:
            event.succeed(txid)

    _APPLY: typing.ClassVar[dict] = {}

    # ------------------------------------------------------------------
    # Reads (with pending holdback)
    # ------------------------------------------------------------------
    def table(self, name: str) -> HeapTable:
        heap = self._tables.get(name)
        if heap is None:
            raise StorageError(f"replica {self.name} has no table {name!r}")
        return heap

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def blocking_txid(self, table: str, key: tuple) -> int | None:
        """If ``key``'s visibility could hinge on an unresolved transaction,
        return that transaction's id."""
        if not self._unresolved:
            return None
        for version in self.table(table).versions(key):
            if version.xmin in self._unresolved:
                return version.xmin
            if version.xmax is not None and version.xmax in self._unresolved:
                return version.xmax
        return None

    def resolution_event(self, txid: int) -> Event | None:
        """Event that fires when ``txid``'s outcome record is replayed."""
        return self._unresolved.get(txid)

    def read(self, table: str, key: tuple, snapshot: Snapshot) -> dict | None:
        """Non-blocking visible read (caller must have cleared holdbacks)."""
        return self.table(table).read(key, snapshot, self.clog)

    def wait_frontier(self, read_ts: int):
        """Generator: suspend until the applied frontier reaches ``read_ts``.

        This is the replica's safe-time wait: a read at a snapshot the
        replica has not fully replayed yet blocks instead of returning a
        hole. Combined with the RCP (which never exceeds any polled
        replica's frontier) the wait is normally zero; it only bites when
        routing raced a metrics refresh or a replica fell behind.
        """
        while self.max_commit_ts < read_ts:
            event = Event(self.env)
            self._frontier_waiters.append((read_ts, event))
            yield event
        return self.max_commit_ts

    def read_waiting(self, table: str, key: tuple, snapshot: Snapshot):
        """Generator: read ``key``, waiting out unresolved transactions."""
        while True:
            txid = self.blocking_txid(table, key)
            if txid is None:
                return self.table(table).read(key, snapshot, self.clog)
            event = self.resolution_event(txid)
            if event is None:
                continue
            yield event

    def scan(self, table: str, snapshot: Snapshot,
             predicate: typing.Callable[[dict], bool] | None = None) -> list[dict]:
        return list(self.table(table).scan(snapshot, self.clog, predicate))

    def lookup_index(self, table: str, column: str, value: typing.Any,
                     snapshot: Snapshot) -> list[dict]:
        return self.table(table).lookup_index(column, value, snapshot, self.clog)

    def unresolved_count(self) -> int:
        return len(self._unresolved)

    # ------------------------------------------------------------------
    # Vacuum (MVCC garbage collection)
    # ------------------------------------------------------------------
    def vacuum(self, retention_ns: int):
        """Reclaim dead versions below ``max_commit_ts - retention_ns``.

        The retention window keeps every snapshot the RCP can still hand
        out readable (the RCP never exceeds this replica's frontier, and
        stale routing is bounded by the lag guard)."""
        from repro.storage.vacuum import vacuum_tables

        horizon = self.max_commit_ts - retention_ns
        return vacuum_tables(self._tables, self.clog, horizon)

    # ------------------------------------------------------------------
    # Bulk load (initial base copy, mirrors primary bulk_load)
    # ------------------------------------------------------------------
    def bulk_load(self, table: str, rows: typing.Iterable[dict],
                  schema, load_ts: int = 1) -> int:
        """Install rows directly as committed at ``load_ts`` (base backup)."""
        if not self.has_table(table):
            self.catalog.create_table(schema, ddl_ts=load_ts)
            self._tables[table] = HeapTable(table)
        heap = self.table(table)
        self.clog.ensure(0)
        if self.clog.status(0) is not TxnStatus.COMMITTED:
            self.clog.commit(0, load_ts)
        count = 0
        for row in rows:
            key = schema.key_of(row)
            heap.add_version(RowVersion(key=key, data=dict(row), xmin=0))
            count += 1
        self._note_ts(load_ts)
        return count


ReplicaStore._APPLY = {
    RedoInsert: ReplicaStore._apply_insert,
    RedoUpdate: ReplicaStore._apply_update,
    RedoDelete: ReplicaStore._apply_delete,
    RedoPendingCommit: ReplicaStore._apply_pending_commit,
    RedoPrepare: ReplicaStore._apply_prepare,
    RedoCommit: ReplicaStore._apply_commit,
    RedoCommitPrepared: ReplicaStore._apply_commit_prepared,
    RedoAbort: ReplicaStore._apply_abort,
    RedoAbortPrepared: ReplicaStore._apply_abort_prepared,
    RedoDdl: ReplicaStore._apply_ddl,
    RedoHeartbeat: ReplicaStore._apply_heartbeat,
}
