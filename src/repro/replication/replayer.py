"""Parallel redo replay on a replica.

Incoming batches queue behind each other; each batch costs
``apply_ns_per_record * len(batch) / parallelism`` of simulated time before
its records are applied. The paper highlights parallel replay as the reason
GlobalDB's replicas keep up with the primary; the ``parallelism`` knob lets
the ablation benchmarks show what serial replay would do to staleness.

Parallelism is *adaptive*: when the received-but-unapplied backlog exceeds
``widen_backlog_records``, the replayer recruits more apply workers — up to
``max_parallelism`` (default 4x the base) — and drops back to the base
level once the backlog drains. This models a replica that spends idle
cores on catch-up only when it is actually behind, so steady-state replay
cost stays honest while lag spikes recover quickly.
"""

from __future__ import annotations

from collections import deque

from repro.replication.replica import ReplicaStore
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.sim.units import us
from repro.storage.redo import RedoRecord


class Replayer:
    """Drives redo application on one :class:`ReplicaStore`."""

    def __init__(self, env: Environment, store: ReplicaStore,
                 apply_ns_per_record: int = us(2), parallelism: int = 8,
                 max_parallelism: int | None = None,
                 widen_backlog_records: int = 256):
        self.env = env
        self.store = store
        self.apply_ns_per_record = apply_ns_per_record
        self.parallelism = max(1, parallelism)
        self.max_parallelism = (max_parallelism if max_parallelism is not None
                                else self.parallelism * 4)
        self.widen_backlog_records = max(1, widen_backlog_records)
        self.widened_batches = 0
        self._queue: deque[list[RedoRecord]] = deque()
        self._wake: Event | None = None
        self.batches_replayed = 0
        #: Highest LSN handed to this replayer so far; WAL LSNs are dense
        #: sequential ints, so ``max_seen_lsn - store.applied_lsn`` is the
        #: exact number of received-but-unapplied records.
        self.max_seen_lsn = 0
        self.busy = False
        self._process = env.process(self._run(), name=f"replay:{store.name}")

    def enqueue(self, records: list[RedoRecord]) -> None:
        """Hand a received batch to the replayer (called by the DN's
        network handler on batch arrival)."""
        self._queue.append(records)
        if records and records[-1].lsn > self.max_seen_lsn:
            self.max_seen_lsn = records[-1].lsn
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    @property
    def backlog_batches(self) -> int:
        return len(self._queue)

    def effective_parallelism(self) -> int:
        """Apply workers for the next batch: base level, widened by one
        base level per ``widen_backlog_records`` of unapplied backlog."""
        backlog = self.max_seen_lsn - self.store.applied_lsn
        if backlog <= self.widen_backlog_records:
            return self.parallelism
        return min(self.max_parallelism,
                   self.parallelism
                   * (1 + backlog // self.widen_backlog_records))

    def replay_delay_ns(self, record_count: int) -> int:
        workers = self.effective_parallelism()
        if workers != self.parallelism:
            self.widened_batches += 1
        return round(record_count * self.apply_ns_per_record / workers)

    def _run(self):
        try:
            while True:
                if not self._queue:
                    self.busy = False
                    self._wake = Event(self.env)
                    yield self._wake
                    self._wake = None
                self.busy = True
                records = self._queue.popleft()
                started = self.env.now
                delay = self.replay_delay_ns(len(records))
                if delay:
                    yield self.env.sleep(delay)
                self.store.apply_batch(records)
                self.batches_replayed += 1
                if self.env.metrics_on:
                    metrics = self.env.metrics
                    node = self.store.name
                    metrics.counter("replay.batches", node=node).inc()
                    metrics.counter("replay.records",
                                    node=node).inc(len(records))
                    metrics.set_gauge("replay.backlog", len(self._queue),
                                      node=node)
                if self.env.trace_on:
                    tracer = self.env.tracer
                    tracer.complete("repl.replay", "batch", started,
                                    self.env.now,
                                    track=f"replay:{self.store.name}",
                                    records=len(records))
                if self.env.series_on:
                    series = self.env.series
                    node = self.store.name
                    series.gauge("repl.applied_lsn", self.store.applied_lsn,
                                 node=node)
                    series.gauge("repl.lag_records",
                                 self.max_seen_lsn - self.store.applied_lsn,
                                 node=node)
        except Interrupt:
            # The owning node stopped replaying (e.g. it was promoted to
            # primary); drain nothing further.
            self.busy = False
