"""Redo log shipping from a primary to one replica.

The shipper subscribes to the primary's WAL and forwards records in
batches. Batching policy: flush as soon as the pending batch reaches
``max_batch_bytes``, or after one flush window from the first pending
record — so a lone commit record doesn't wait around, but bulk traffic
amortizes per-message costs. The window is *backlog-keyed*: when the
destination replica is far behind (measured by its last reported applied
LSN), the window widens up to ``max_widen``x so catch-up traffic moves in
fewer, larger batches instead of paying per-flush overhead on a channel
whose freshness is already lost.

The shipper is pure callbacks — an append either triggers an inline flush
(size threshold) or arms one deferred flush timer for the whole window, so
an idle channel costs zero simulation events and a busy one costs one
timer per batch rather than a wake event per record.

Byte accounting per flush (this is where the paper's §V-A optimisations
act):

1. payload bytes are compressed (LZ4 model: fewer wire bytes, small CPU
   cost);
2. a Nagle penalty applies to sub-MSS flushes sent while the previous
   flush's ACK is outstanding;
3. the congestion model turns the link's raw bandwidth into an achievable
   rate for this flow — loss-based control collapses on high-RTT paths,
   BBR doesn't — and the shortfall becomes extra transmission delay.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.obs.metrics import SIZE_BUCKETS
from repro.sim.core import Environment
from repro.sim.network import Network
from repro.sim.transport import TransportConfig
from repro.sim.units import ms, SECOND
from repro.storage.redo import RedoRecord
from repro.storage.wal import WalBuffer


@dataclass(frozen=True)
class ShipperConfig:
    """Batching and transport knobs for one shipping channel."""

    transport: TransportConfig
    max_batch_bytes: int = 64 * 1024
    flush_interval_ns: int = ms(1)
    #: Every ``backlog_per_widen`` records the destination is behind widens
    #: the flush window by one base interval (capped at ``max_widen``x).
    backlog_per_widen: int = 512
    max_widen: int = 8

    @classmethod
    def baseline(cls) -> "ShipperConfig":
        return cls(transport=TransportConfig.baseline())

    @classmethod
    def optimized(cls) -> "ShipperConfig":
        return cls(transport=TransportConfig.optimized())


def replica_backlog(primary, replica_name: str) -> typing.Callable[[], int]:
    """``backlog_fn`` for a primary->replica channel: how many records the
    replica has yet to apply, judged from the applied watermark its acks
    piggyback. Grows while the replica lags, so the shipper's flush window
    widens exactly when per-flush overhead buys nothing."""
    def backlog() -> int:
        return (primary.engine.wal.last_lsn
                - primary.acks.applied.get(replica_name, 0))
    return backlog


class LogShipper:
    """Ships one primary WAL to one replica endpoint."""

    def __init__(self, env: Environment, network: Network, wal: WalBuffer,
                 src: str, dst: str, config: ShipperConfig | None = None,
                 backlog_fn: typing.Callable[[], int] | None = None):
        self.env = env
        self.network = network
        self.wal = wal
        self.src = src
        self.dst = dst
        self.config = config or ShipperConfig.optimized()
        #: Returns how many records the destination has yet to apply;
        #: drives the backlog-keyed window widening. None => fixed window.
        self.backlog_fn = backlog_fn
        self._pending: list[RedoRecord] = []
        self._pending_bytes = 0
        self._last_send_at: int | None = None
        self.flushes = 0
        self.payload_bytes_total = 0
        self.wire_bytes_total = 0
        self.nagle_stall_ns_total = 0
        self.widened_windows = 0
        self.paused = False
        self._batch_opened_at = env.now
        # Generation counter for flush timers: arming bumps it, and a
        # firing timer whose generation is stale (superseded by a size
        # flush, a pause, or a re-arm) is a no-op. This is how a plain
        # ``defer`` gets cancellation without a process or extra events.
        self._flush_gen = 0
        self._timer_armed = False
        # Catch up on anything already in the WAL, then follow appends.
        for record in wal.records_from(0):
            self._pending.append(record)
            self._pending_bytes += record.size_bytes()
        wal.subscribe(self._on_append)
        if self._pending:
            if self._pending_bytes >= self.config.max_batch_bytes:
                self._flush()
            else:
                self._arm(self._window_ns())

    # ------------------------------------------------------------------
    def _on_append(self, record: RedoRecord) -> None:
        if not self._pending:
            self._batch_opened_at = self.env.now
        self._pending.append(record)
        self._pending_bytes += record.size_bytes()
        if self.paused:
            return  # hold records; resume() restarts the window
        if self._pending_bytes >= self.config.max_batch_bytes:
            self._cancel_timer()
            self._flush()
        elif not self._timer_armed:
            self._arm(self._window_ns())

    def _window_ns(self) -> int:
        base = self.config.flush_interval_ns
        backlog_fn = self.backlog_fn
        if backlog_fn is None:
            return base
        widen = 1 + backlog_fn() // self.config.backlog_per_widen
        if widen <= 1:
            return base
        self.widened_windows += 1
        return base * min(widen, self.config.max_widen)

    def _arm(self, delay_ns: int) -> None:
        self._flush_gen += 1
        self._timer_armed = True
        self.env.defer(delay_ns, self._on_timer, self._flush_gen)

    def _cancel_timer(self) -> None:
        self._flush_gen += 1
        self._timer_armed = False

    def _on_timer(self, gen: int) -> None:
        if gen != self._flush_gen:
            return  # superseded
        self._timer_armed = False
        if not self.paused:
            self._flush()

    def _flush(self) -> None:
        records = self._pending
        payload_bytes = self._pending_bytes
        self._pending = []
        self._pending_bytes = 0
        if not records:
            return
        transport = self.config.transport
        wire_bytes, cpu_ns = transport.compression.compress(payload_bytes)
        rtt = self.network.rtt_ns(self.src, self.dst)
        since_last = (self.env.now - self._last_send_at
                      if self._last_send_at is not None else rtt)
        nagle_ns = transport.nagle.send_penalty_ns(wire_bytes, rtt, since_last)
        congestion_ns = self._congestion_penalty_ns(wire_bytes, rtt)
        self._last_send_at = self.env.now
        self.flushes += 1
        self.payload_bytes_total += payload_bytes
        self.wire_bytes_total += wire_bytes
        self.nagle_stall_ns_total += nagle_ns
        metrics = self.env.metrics
        if metrics.enabled:
            channel = f"{self.src}->{self.dst}"
            metrics.counter("ship.flushes", link=channel).inc()
            metrics.counter("ship.wire_bytes", link=channel).inc(wire_bytes)
            metrics.histogram("ship.batch_records", SIZE_BUCKETS,
                              link=channel).record(len(records))
            metrics.histogram("ship.batch_bytes", SIZE_BUCKETS,
                              link=channel).record(payload_bytes)
            metrics.histogram("ship.stall_ns", link=channel).record(
                cpu_ns + nagle_ns + congestion_ns)
            # How long the oldest record in this batch sat pending.
            metrics.histogram("ship.flush_age_ns", link=channel).record(
                self.env.now - self._batch_opened_at)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("repl.ship", "flush", self._batch_opened_at,
                            self.env.now,
                            track=f"ship:{self.src}->{self.dst}",
                            records=len(records), payload_bytes=payload_bytes,
                            wire_bytes=wire_bytes)
        if self.env.series_on:
            series = self.env.series
            channel = f"{self.src}->{self.dst}"
            # Records are in LSN order: the last one is this channel's
            # send frontier (vs. the replica's repl.applied_lsn).
            series.gauge("repl.ship_lsn", records[-1].lsn, link=channel)
            series.counter("repl.ship_bytes", wire_bytes, link=channel)
        self.network.send(
            self.src, self.dst,
            payload=("redo_batch", self.src, records),
            size_bytes=wire_bytes,
            extra_delay_ns=cpu_ns + nagle_ns + congestion_ns)

    def _congestion_penalty_ns(self, wire_bytes: int, rtt: int) -> int:
        """Extra transmission delay from the flow not achieving link rate."""
        link = self.network.link(self.src, self.dst)
        if link.bandwidth_bps <= 0:
            return 0
        effective = self.config.transport.congestion.effective_bandwidth(
            link.bandwidth_bps, rtt)
        if effective >= link.bandwidth_bps or effective <= 0:
            return 0
        full = wire_bytes * 8 / link.bandwidth_bps
        achieved = wire_bytes * 8 / effective
        return round((achieved - full) * SECOND)

    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Failure injection: stop shipping (records keep accumulating)."""
        self.paused = True
        self._cancel_timer()

    def resume(self) -> None:
        self.paused = False
        if self._pending:
            self._arm(self._window_ns())

    def compression_ratio_achieved(self) -> float:
        if not self.wire_bytes_total:
            return 1.0
        return self.payload_bytes_total / self.wire_bytes_total
