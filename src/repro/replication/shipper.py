"""Redo log shipping from a primary to one replica.

The shipper subscribes to the primary's WAL and forwards records in
batches. Batching policy: flush as soon as the pending batch reaches
``max_batch_bytes``, or after ``flush_interval_ns`` from the first pending
record — so a lone commit record doesn't wait around, but bulk traffic
amortizes per-message costs.

Byte accounting per flush (this is where the paper's §V-A optimisations
act):

1. payload bytes are compressed (LZ4 model: fewer wire bytes, small CPU
   cost);
2. a Nagle penalty applies to sub-MSS flushes sent while the previous
   flush's ACK is outstanding;
3. the congestion model turns the link's raw bandwidth into an achievable
   rate for this flow — loss-based control collapses on high-RTT paths,
   BBR doesn't — and the shortfall becomes extra transmission delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import SIZE_BUCKETS
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.network import Network
from repro.sim.transport import TransportConfig
from repro.sim.units import ms, SECOND
from repro.storage.redo import RedoRecord
from repro.storage.wal import WalBuffer


@dataclass(frozen=True)
class ShipperConfig:
    """Batching and transport knobs for one shipping channel."""

    transport: TransportConfig
    max_batch_bytes: int = 64 * 1024
    flush_interval_ns: int = ms(1)

    @classmethod
    def baseline(cls) -> "ShipperConfig":
        return cls(transport=TransportConfig.baseline())

    @classmethod
    def optimized(cls) -> "ShipperConfig":
        return cls(transport=TransportConfig.optimized())


class LogShipper:
    """Ships one primary WAL to one replica endpoint."""

    def __init__(self, env: Environment, network: Network, wal: WalBuffer,
                 src: str, dst: str, config: ShipperConfig | None = None):
        self.env = env
        self.network = network
        self.wal = wal
        self.src = src
        self.dst = dst
        self.config = config or ShipperConfig.optimized()
        self._pending: list[RedoRecord] = []
        self._pending_bytes = 0
        self._wake: Event | None = None
        self._last_send_at: int | None = None
        self.flushes = 0
        self.payload_bytes_total = 0
        self.wire_bytes_total = 0
        self.nagle_stall_ns_total = 0
        self.paused = False
        self._batch_opened_at = env.now
        # Catch up on anything already in the WAL, then follow appends.
        for record in wal.records_from(0):
            self._pending.append(record)
            self._pending_bytes += record.size_bytes()
        wal.subscribe(self._on_append)
        self._process = env.process(self._run(), name=f"ship:{src}->{dst}")

    # ------------------------------------------------------------------
    def _on_append(self, record: RedoRecord) -> None:
        if not self._pending:
            self._batch_opened_at = self.env.now
        self._pending.append(record)
        self._pending_bytes += record.size_bytes()
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _run(self):
        while True:
            if not self._pending:
                self._wake = Event(self.env)
                yield self._wake
                self._wake = None
            # Batch up: wait for more records until size or time threshold.
            deadline = self.env.now + self.config.flush_interval_ns
            while (self._pending_bytes < self.config.max_batch_bytes
                   and self.env.now < deadline):
                remaining = deadline - self.env.now
                self._wake = Event(self.env)
                timer = self.env.timeout(remaining)
                yield self.env.any_of([self._wake, timer])
                self._wake = None
            if self.paused:
                # Failure injection: drop nothing, just hold shipment.
                yield self.env.timeout(self.config.flush_interval_ns)
                continue
            self._flush()

    def _flush(self) -> None:
        records = self._pending
        payload_bytes = self._pending_bytes
        self._pending = []
        self._pending_bytes = 0
        if not records:
            return
        transport = self.config.transport
        wire_bytes, cpu_ns = transport.compression.compress(payload_bytes)
        rtt = self.network.rtt_ns(self.src, self.dst)
        since_last = (self.env.now - self._last_send_at
                      if self._last_send_at is not None else rtt)
        nagle_ns = transport.nagle.send_penalty_ns(wire_bytes, rtt, since_last)
        congestion_ns = self._congestion_penalty_ns(wire_bytes, rtt)
        self._last_send_at = self.env.now
        self.flushes += 1
        self.payload_bytes_total += payload_bytes
        self.wire_bytes_total += wire_bytes
        self.nagle_stall_ns_total += nagle_ns
        metrics = self.env.metrics
        if metrics.enabled:
            channel = f"{self.src}->{self.dst}"
            metrics.counter("ship.flushes", link=channel).inc()
            metrics.counter("ship.wire_bytes", link=channel).inc(wire_bytes)
            metrics.histogram("ship.batch_records", SIZE_BUCKETS,
                              link=channel).record(len(records))
            metrics.histogram("ship.batch_bytes", SIZE_BUCKETS,
                              link=channel).record(payload_bytes)
            metrics.histogram("ship.stall_ns", link=channel).record(
                cpu_ns + nagle_ns + congestion_ns)
            # How long the oldest record in this batch sat pending.
            metrics.histogram("ship.flush_age_ns", link=channel).record(
                self.env.now - self._batch_opened_at)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("repl.ship", "flush", self._batch_opened_at,
                            self.env.now, track=f"ship:{self.src}->{self.dst}",
                            records=len(records), payload_bytes=payload_bytes,
                            wire_bytes=wire_bytes)
        if self.env.series_on:
            series = self.env.series
            channel = f"{self.src}->{self.dst}"
            # Records are in LSN order: the last one is this channel's
            # send frontier (vs. the replica's repl.applied_lsn).
            series.gauge("repl.ship_lsn", records[-1].lsn, link=channel)
            series.counter("repl.ship_bytes", wire_bytes, link=channel)
        self.network.send(
            self.src, self.dst,
            payload=("redo_batch", self.src, records),
            size_bytes=wire_bytes,
            extra_delay_ns=cpu_ns + nagle_ns + congestion_ns)

    def _congestion_penalty_ns(self, wire_bytes: int, rtt: int) -> int:
        """Extra transmission delay from the flow not achieving link rate."""
        link = self.network.link(self.src, self.dst)
        if link.bandwidth_bps <= 0:
            return 0
        effective = self.config.transport.congestion.effective_bandwidth(
            link.bandwidth_bps, rtt)
        if effective >= link.bandwidth_bps or effective <= 0:
            return 0
        full = wire_bytes * 8 / link.bandwidth_bps
        achieved = wire_bytes * 8 / effective
        return round((achieved - full) * SECOND)

    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Failure injection: stop shipping (records keep accumulating)."""
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def compression_ratio_achieved(self) -> float:
        if not self.wire_bytes_total:
            return 1.0
        return self.payload_bytes_total / self.wire_bytes_total
