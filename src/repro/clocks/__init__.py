"""Clock substrate: drifting physical clocks, regional time devices, the
synchronization daemon, and timestamp sources.

The paper (§III) deploys a GPS + atomic-clock *global time device* per
regional cluster; machines sync against it every 1 millisecond over a
~60 microsecond TCP round trip, and CPU clock drift is bounded within
200 PPM. A GClock timestamp is ``T_clock + T_err`` with
``T_err = T_sync + T_drift`` (Eq. 1).

Node code never reads simulated true time directly — it only sees its
:class:`~repro.clocks.physical.PhysicalClock`, so external consistency
genuinely depends on the commit-wait protocol, as in the real system.
"""

from repro.clocks.gclock import GClockSource, GClockTimestamp
from repro.clocks.hlc import HybridLogicalClock
from repro.clocks.physical import PhysicalClock
from repro.clocks.sync import ClockSyncConfig, ClockSyncDaemon
from repro.clocks.time_device import GlobalTimeDevice

__all__ = [
    "PhysicalClock",
    "GlobalTimeDevice",
    "ClockSyncConfig",
    "ClockSyncDaemon",
    "GClockSource",
    "GClockTimestamp",
    "HybridLogicalClock",
]
