"""The GClock timestamp source (§III).

A GClock timestamp is ``TS = T_clock + T_err`` (Eq. 1): the node's clock
reading plus the current error bound, i.e. an upper bound on true time. The
transaction protocol then *commit-waits*: it holds the transaction until the
local clock has passed ``TS``, which guarantees that any transaction that
starts afterwards — anywhere in the cluster, by true time — obtains a larger
timestamp. This yields the paper's visibility requirements R.1 and R.2
(external serializability), exactly as in Spanner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.physical import PhysicalClock
from repro.clocks.sync import ClockSyncDaemon
from repro.sim.core import Environment


@dataclass(frozen=True, order=True)
class GClockTimestamp:
    """A GClock timestamp: the assigned value plus the bound it embeds."""

    ts: int
    err: int

    def __int__(self) -> int:
        return self.ts


class GClockSource:
    """Per-node timestamp oracle backed by a synced physical clock."""

    def __init__(self, env: Environment, clock: PhysicalClock, sync: ClockSyncDaemon):
        self.env = env
        self.clock = clock
        self.sync = sync

    def read(self) -> int:
        """The node clock's current reading (after any lazy sync)."""
        if self.sync.config.analytic:
            self.sync._lazy_sync()
        return self.clock.read()

    def error_bound_ns(self) -> int:
        """Current ``T_err``."""
        return self.sync.error_bound_ns()

    def timestamp(self) -> GClockTimestamp:
        """Take a timestamp per Eq. (1): ``T_clock + T_err``."""
        err = self.sync.error_bound_ns()
        return GClockTimestamp(ts=self.read() + err, err=err)

    def bounds(self) -> tuple[int, int]:
        """TrueTime-style interval (earliest, latest) containing true time."""
        err = self.sync.error_bound_ns()
        reading = self.read()
        return reading - err, reading + err

    @property
    def healthy(self) -> bool:
        """Whether the clock can be trusted for GClock transactions."""
        return self.sync.healthy

    def wait_until_after(self, ts: int):
        """Generator: suspend until true time has provably passed ``ts``.

        This is the invocation/commit wait primitive. The condition is the
        TrueTime ``after`` predicate: the clock's *earliest* bound
        (``reading - err``) must exceed ``ts``. Waiting merely for the raw
        reading to pass ``ts`` would leave an err-sized window in which a
        fast clock's transaction commits "in the future" and a slow clock's
        later transaction still obtains a smaller timestamp, violating R.1.
        The sleep is computed with a drift safety margin and re-checked.
        """
        margin = 1 + self.clock.max_drift_ppm * 1e-6
        while True:
            earliest = self.read() - self.sync.error_bound_ns()
            if earliest > ts:
                return earliest
            needed = ts - earliest + 1
            yield self.env.sleep(max(1, round(needed * margin)))

    def wait_ns_estimate(self, ts: int) -> int:
        """How long the commit wait for ``ts`` would take from now (stats)."""
        earliest = self.read() - self.sync.error_bound_ns()
        return max(0, ts - earliest + 1)
