"""A node's local hardware clock, which drifts relative to true time.

The clock's reading is ``true_time + offset`` where the offset evolves at a
drift rate bounded by ``max_drift_ppm`` (the paper bounds CPU clock drift at
200 PPM). The sync daemon periodically re-anchors the offset to within the
sync error of zero; between syncs the offset wanders at the current drift
rate. Drift rate is re-sampled at each anchor so long runs exercise both
fast and slow clocks.
"""

from __future__ import annotations

import random

from repro.sim.core import Environment


class PhysicalClock:
    """A drifting local clock.

    Reading the clock is ``O(1)`` and event-free: the value is derived from
    the last anchor point plus drift-scaled elapsed true time. Only the sync
    daemon may move the anchor.
    """

    def __init__(self, env: Environment, name: str, rng: random.Random,
                 max_drift_ppm: float = 200.0, initial_offset_ns: int = 0):
        self.env = env
        self.name = name
        self._rng = rng
        self.max_drift_ppm = max_drift_ppm
        self._anchor_true = env.now
        self._anchor_value = env.now + initial_offset_ns
        self._drift_ppm = rng.uniform(-max_drift_ppm, max_drift_ppm)

    @property
    def drift_ppm(self) -> float:
        """The current drift rate in parts per million."""
        return self._drift_ppm

    def read(self) -> int:
        """The clock's current reading, in nanoseconds."""
        elapsed = self.env.now - self._anchor_true
        return self._anchor_value + elapsed + round(elapsed * self._drift_ppm * 1e-6)

    def offset_ns(self) -> int:
        """Current deviation from true time (only tests should call this —
        real node code cannot observe its own offset)."""
        return self.read() - self.env.now

    def anchor(self, value_ns: int, resample_drift: bool = True) -> None:
        """Re-anchor the clock to ``value_ns`` (called by the sync daemon)."""
        self._anchor_true = self.env.now
        self._anchor_value = value_ns
        if resample_drift:
            self._drift_ppm = self._rng.uniform(-self.max_drift_ppm, self.max_drift_ppm)

    def step(self, delta_ns: int) -> None:
        """Shift the clock by ``delta_ns`` (fault injection: a clock jump)."""
        stepped_value = self.read() + delta_ns
        self._anchor_true = self.env.now
        self._anchor_value = stepped_value
