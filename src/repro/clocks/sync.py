"""Clock synchronization daemon.

Each machine syncs its :class:`~repro.clocks.physical.PhysicalClock` against
its region's :class:`~repro.clocks.time_device.GlobalTimeDevice` every
``period_ns`` (paper: 1 ms) over a ``rtt_ns`` round trip (paper: 60 us).
The resulting error bound follows Eq. (1):

    T_err = T_sync + T_drift

with ``T_sync`` the sync round trip and ``T_drift`` the worst-case drift
accumulated since the last successful sync.

Two execution modes:

- **analytic** (default): no simulation events are scheduled. Syncs are
  applied lazily at period boundaries whenever the daemon is consulted.
  This keeps long benchmark runs cheap (a 1 ms sync loop per node would
  otherwise dominate the event queue) while producing the same bound.
- **event-driven**: a real process loop performs each sync after an RTT
  delay. Tests use it to validate that the analytic mode's error bound is
  a faithful stand-in.

If the time device fails, syncs stop succeeding and the error bound grows
linearly with drift; once it exceeds ``unhealthy_error_ns`` the daemon
reports itself unhealthy, which is the trigger for a GClock-to-GTM fallback
(§III-A, Fig. 3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.clocks.physical import PhysicalClock
from repro.clocks.time_device import GlobalTimeDevice
from repro.errors import ClockError
from repro.sim.core import Environment
from repro.sim.units import ms, us


@dataclass(frozen=True)
class ClockSyncConfig:
    """Sync parameters (defaults are the paper's)."""

    period_ns: int = ms(1)
    rtt_ns: int = us(60)
    analytic: bool = True
    unhealthy_error_ns: int = ms(1)


class ClockSyncDaemon:
    """Keeps one node's clock anchored to the regional time device."""

    def __init__(self, env: Environment, clock: PhysicalClock,
                 device: GlobalTimeDevice, config: ClockSyncConfig | None = None,
                 name: str | None = None):
        self.env = env
        self.clock = clock
        self.device = device
        self.config = config or ClockSyncConfig()
        self.name = name or clock.name
        # Deterministic per-node phase so nodes don't all sync in lockstep.
        self._phase = self._stable_hash("phase") % self.config.period_ns
        self.last_sync_true_time: int = env.now
        self.sync_count = 0
        self.failed_syncs = 0
        self._process = None
        if self.config.analytic:
            self._lazy_sync()

    # ------------------------------------------------------------------
    # Event-driven mode
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the event-driven sync loop (no-op in analytic mode)."""
        if self.config.analytic or self._process is not None:
            return None
        self._process = self.env.process(self._run(), name=f"clocksync:{self.name}")
        return self._process

    def _run(self):
        while True:
            yield self.env.sleep(self.config.period_ns)
            # The round trip to the rack-local time device.
            yield self.env.sleep(self.config.rtt_ns)
            self._apply_sync(boundary=self.env.now)

    # ------------------------------------------------------------------
    # Analytic mode
    # ------------------------------------------------------------------
    def _stable_hash(self, salt: str, index: int = 0) -> int:
        digest = hashlib.sha256(f"{self.name}:{salt}:{index}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def _lazy_sync(self) -> None:
        """Apply the most recent period-boundary sync if one is due."""
        now = self.env.now
        if now - self.last_sync_true_time < self.config.period_ns:
            return
        boundary = now - ((now - self._phase) % self.config.period_ns)
        if boundary <= self.last_sync_true_time:
            return
        self._apply_sync(boundary=boundary)

    def _apply_sync(self, boundary: int) -> None:
        """Anchor the clock as of a sync completed at true time ``boundary``."""
        if self.device.failed:
            self.failed_syncs += 1
            return
        try:
            index = boundary // max(1, self.config.period_ns)
            residual_span = max(1, self.config.rtt_ns // 2 + self.device.accuracy_ns)
            residual = self._stable_hash("residual", index) % (2 * residual_span) - residual_span
            synced_value_at_boundary = boundary + residual
            elapsed = self.env.now - boundary
            drift_since = round(elapsed * self.clock.drift_ppm * 1e-6)
            self.clock.anchor(synced_value_at_boundary + elapsed + drift_since)
            self.last_sync_true_time = boundary
            self.sync_count += 1
            self.device.queries += 1
        except ClockError:
            self.failed_syncs += 1

    # ------------------------------------------------------------------
    # Error bound (Eq. 1)
    # ------------------------------------------------------------------
    def error_bound_ns(self) -> int:
        """Current ``T_err = T_sync + T_drift``."""
        if self.config.analytic:
            self._lazy_sync()
        t_sync = self.config.rtt_ns
        age = self.env.now - self.last_sync_true_time
        t_drift = round(age * self.clock.max_drift_ppm * 1e-6)
        return t_sync + t_drift

    def last_sync_age_ns(self) -> int:
        if self.config.analytic:
            self._lazy_sync()
        return self.env.now - self.last_sync_true_time

    @property
    def healthy(self) -> bool:
        """False once the error bound exceeds the configured threshold
        (e.g. after a time-device failure)."""
        return self.error_bound_ns() <= self.config.unhealthy_error_ns
