"""The regional global time device (GPS receiver + atomic clock).

The paper deploys one per regional cluster; it reports time accurate to
within nanoseconds of real time. We model it as an oracle for true time with
a configurable (tiny) accuracy, plus failure injection: a failed device
stops answering sync requests, which makes dependent clocks' error bounds
grow until the cluster falls back to GTM mode (§III-A, Fig. 3).
"""

from __future__ import annotations

import random

from repro.errors import ClockError
from repro.sim.core import Environment


class GlobalTimeDevice:
    """A GPS + atomic-clock time source for one region."""

    def __init__(self, env: Environment, region: str, rng: random.Random | None = None,
                 accuracy_ns: int = 50):
        self.env = env
        self.region = region
        self.accuracy_ns = accuracy_ns
        self._rng = rng or random.Random(0)
        self.failed = False
        self.queries = 0

    def query(self) -> int:
        """Report the current time (within ``accuracy_ns`` of true time).

        Raises :class:`ClockError` if the device has failed.
        """
        if self.failed:
            raise ClockError(f"time device in region {self.region!r} has failed")
        self.queries += 1
        return self.env.now + self._rng.randint(-self.accuracy_ns, self.accuracy_ns)

    def fail(self) -> None:
        """Inject a device failure (GPS signal loss, hardware fault)."""
        self.failed = True

    def recover(self) -> None:
        """Restore the device."""
        self.failed = False
