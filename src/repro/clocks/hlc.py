"""Hybrid Logical Clock (Kulkarni et al., OPODIS 2014).

Included as the comparator timestamping scheme used by CockroachDB and
YugabyteDB (§II-C): strictly monotonic timestamps combining a physical
component with a logical counter, advanced on every local event and on every
received remote timestamp. GlobalDB itself does not use HLC; the benchmark
suite uses it to contrast commit-wait (GClock) against causality-tracking
(HLC) designs in the ablation discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.physical import PhysicalClock


@dataclass(frozen=True, order=True)
class HlcTimestamp:
    """An HLC timestamp: (physical ns, logical counter)."""

    physical: int
    logical: int

    def pack(self) -> int:
        """Pack into a single comparable integer (physical << 16 | logical)."""
        return (self.physical << 16) | (self.logical & 0xFFFF)


class HybridLogicalClock:
    """Per-node HLC instance."""

    def __init__(self, clock: PhysicalClock):
        self.clock = clock
        self._last = HlcTimestamp(0, 0)

    @property
    def last(self) -> HlcTimestamp:
        return self._last

    def now(self) -> HlcTimestamp:
        """Advance for a local event and return the new timestamp."""
        physical = self.clock.read()
        if physical > self._last.physical:
            self._last = HlcTimestamp(physical, 0)
        else:
            self._last = HlcTimestamp(self._last.physical, self._last.logical + 1)
        return self._last

    def update(self, remote: HlcTimestamp) -> HlcTimestamp:
        """Merge a received timestamp and return the advanced local value."""
        physical = self.clock.read()
        top = max(physical, self._last.physical, remote.physical)
        if top == physical and top > self._last.physical and top > remote.physical:
            logical = 0
        elif top == self._last.physical and top == remote.physical:
            logical = max(self._last.logical, remote.logical) + 1
        elif top == self._last.physical:
            logical = self._last.logical + 1
        elif top == remote.physical:
            logical = remote.logical + 1
        else:
            logical = 0
        self._last = HlcTimestamp(top, logical)
        return self._last
