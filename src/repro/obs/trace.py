"""Structured span tracing over simulated time.

A :class:`Span` is a named interval ``[start, end]`` of *simulated*
nanoseconds on a *track* (a node, a terminal, a shipping channel). The
tracer is purely passive: starting or ending a span never schedules an
event and never reads a wall clock, so a traced run's event history is
byte-identical to an untraced one — the determinism contract that
``tests/test_determinism.py`` enforces.

Span categories used by the built-in instrumentation:

==============  ====================================================
``txn``         client-visible transaction lifecycle (begin/execute/
                commit, emitted by the CN and the workload driver)
``ts``          timestamp protocols (GTM round trips, commit-waits)
``gtm``         GTM server request service
``net``         individual network messages (send -> deliver)
``wal``         commit-time WAL flush / replication-ack waits
``repl.ship``   redo batch formation and flush on a shipping channel
``repl.replay`` redo batch replay on a replica
``ror``         RCP polls and update distribution
``dn``          data-node request handlers (per-op service spans)
``migration``   mode-migration phases
==============  ====================================================

Export formats: JSONL (one span object per line, lossless) and the Chrome
``chrome://tracing`` / Perfetto trace-event JSON format.
"""

from __future__ import annotations

import hashlib
import json
import typing


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Span:
    """One traced interval. Created via :meth:`Tracer.start`."""

    __slots__ = ("tracer", "cat", "name", "track", "start", "end", "args",
                 "span_id", "depth")

    def __init__(self, tracer: "Tracer", cat: str, name: str, track: str,
                 start: int, span_id: int, depth: int, args: dict):
        self.tracer = tracer
        self.cat = cat
        self.name = name
        self.track = track
        self.start = start
        self.end: int | None = None
        self.args = args
        self.span_id = span_id
        self.depth = depth

    @property
    def duration_ns(self) -> int:
        return (self.end - self.start) if self.end is not None else 0

    def finish(self, **args) -> "Span":
        """End the span at the current simulated time."""
        if self.end is None:
            if args:
                self.args.update(args)
            self.tracer._finish(self)
        return self

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "cat": self.cat,
            "name": self.name,
            "track": self.track,
            "start_ns": self.start,
            "end_ns": self.end if self.end is not None else self.start,
            "depth": self.depth,
            "args": {key: _jsonable(value) for key, value in self.args.items()},
        }


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()
    duration_ns = 0
    args: dict = {}

    def finish(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans in simulated-time order of completion.

    ``max_spans`` bounds memory on long runs: once reached, further spans
    are counted in ``dropped`` instead of stored (recording control flow is
    unaffected, so determinism holds regardless).
    """

    enabled = True

    def __init__(self, env, max_spans: int | None = 500_000):
        self.env = env
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 0
        self._open_by_track: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start(self, cat: str, name: str, track: str = "main", **args) -> Span:
        """Open a span at ``env.now``; call ``.finish()`` to close it."""
        self._next_id += 1
        depth = self._open_by_track.get(track, 0)
        self._open_by_track[track] = depth + 1
        return Span(self, cat, name, track, self.env.now, self._next_id,
                    depth, args)

    def _finish(self, span: Span) -> None:
        span.end = self.env.now
        open_count = self._open_by_track.get(span.track, 1)
        if open_count <= 1:
            self._open_by_track.pop(span.track, None)
        else:
            self._open_by_track[span.track] = open_count - 1
        self._store(span)

    def complete(self, cat: str, name: str, start: int, end: int,
                 track: str = "main", **args) -> None:
        """Record a span whose endpoints are already known."""
        self._next_id += 1
        span = Span(self, cat, name, track, start, self._next_id,
                    self._open_by_track.get(track, 0), args)
        span.end = end
        self._store(span)

    def instant(self, cat: str, name: str, track: str = "main", **args) -> None:
        """Record a zero-duration marker event."""
        self.complete(cat, name, self.env.now, self.env.now, track, **args)

    def _store(self, span: Span) -> None:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def counts_by_category(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.cat] = counts.get(span.cat, 0) + 1
        return dict(sorted(counts.items()))

    def duration_by_category(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for span in self.spans:
            totals[span.cat] = totals.get(span.cat, 0) + span.duration_ns
        return dict(sorted(totals.items()))

    def spans_in(self, cat: str, name: str | None = None) -> list[Span]:
        return [span for span in self.spans
                if span.cat == cat and (name is None or span.name == name)]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the span count."""
        return write_jsonl(path, (span.to_dict() for span in self.spans))

    def chrome_trace(self) -> dict:
        return chrome_trace_dict(span.to_dict() for span in self.spans)

    def write_chrome_trace(self, path) -> int:
        """Write a ``chrome://tracing``-loadable JSON file."""
        trace = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
        return len(trace["traceEvents"])

    def digest(self) -> str:
        """Order-sensitive content hash of every recorded span.

        Two runs with identical event histories produce identical digests;
        any divergence in scheduling order, timing, or span payloads
        changes the hash. This is the primitive behind the cross-process
        determinism harness (``python -m repro.lint --determinism``)."""
        return trace_digest(span.to_dict() for span in self.spans)


class NullTracer:
    """The default ``env.tracer``: all recording is a no-op."""

    enabled = False
    spans: list = []
    dropped = 0

    def start(self, cat: str, name: str, track: str = "main", **args) -> _NullSpan:
        return NULL_SPAN

    def complete(self, cat: str, name: str, start: int, end: int,
                 track: str = "main", **args) -> None:
        pass

    def instant(self, cat: str, name: str, track: str = "main", **args) -> None:
        pass

    def counts_by_category(self) -> dict:
        return {}

    def duration_by_category(self) -> dict:
        return {}

    def spans_in(self, cat: str, name: str | None = None) -> list:
        return []

    def digest(self) -> str:
        return trace_digest(())


#: Shared default tracer.
NULL_TRACER = NullTracer()


def trace_digest(span_dicts: typing.Iterable[dict]) -> str:
    """SHA-256 over canonical (sorted-key) JSON of each span, in order.

    Works on live ``Span.to_dict()`` streams and on spans re-read from a
    ``trace.jsonl`` file alike, so in-process and cross-process checks
    compare the same value."""
    hasher = hashlib.sha256()
    for span in span_dicts:
        hasher.update(json.dumps(span, sort_keys=True, default=str).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Coverage-signature helpers (used by ``repro.explore``)
# ----------------------------------------------------------------------
def window_categories(spans: typing.Iterable, start_ns: int,
                      end_ns: int) -> list[str]:
    """Sorted unique span categories intersecting ``[start_ns, end_ns]``.

    Works on live :class:`Span` objects (``tracer.spans``). This is the
    structural primitive behind the explorer's coverage signature: "which
    subsystems were active while fault X held" is exactly the set of span
    categories whose intervals overlap the fault window.
    """
    seen = set()
    for span in spans:
        span_end = span.end if span.end is not None else span.start
        if span.start <= end_ns and span_end >= start_ns:
            seen.add(span.cat)
    return sorted(seen)


# ----------------------------------------------------------------------
# Trace-file helpers (also used by ``python -m repro.obs``)
# ----------------------------------------------------------------------
def write_jsonl(path, span_dicts: typing.Iterable[dict]) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in span_dicts:
            fh.write(json.dumps(span, default=str))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path) -> list[dict]:
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def chrome_trace_dict(span_dicts: typing.Iterable[dict]) -> dict:
    """Convert span dicts to the Chrome trace-event JSON structure.

    Spans become ``ph: "X"`` complete events (timestamps in microseconds,
    as the format requires); zero-duration spans become ``ph: "i"``
    instants. Tracks map to ``tid`` with thread-name metadata so the
    timeline shows node names instead of numbers.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    for span in span_dicts:
        track = span.get("track", "main")
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
        start_us = span["start_ns"] / 1000.0
        dur_us = (span["end_ns"] - span["start_ns"]) / 1000.0
        event = {
            "name": span["name"],
            "cat": span["cat"],
            "pid": 1,
            "tid": tid,
            "ts": start_us,
            "args": span.get("args", {}),
        }
        if dur_us > 0:
            event["ph"] = "X"
            event["dur"] = dur_us
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    metadata = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro-sim"}},
    ]
    metadata.extend(
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": track}}
        for track, tid in tids.items()
    )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}
