"""Self-contained run dashboard: time-series + alerts + critical path.

Renders a telemetry snapshot (``TimeSeriesStore.snapshot()`` +
``MonitorEngine.snapshot()``) and a trace (span dicts) into either a
plain-text report or a single HTML file with inline CSS and inline SVG
sparklines — no external assets, no JS frameworks, openable from a CI
artifact. ``python -m repro.obs dash <trace>`` is the entry point.

Pure formatting over already-captured data: nothing here touches the
simulation.
"""

from __future__ import annotations

import html
import typing

from repro.obs.critpath import SEGMENTS, CriticalPathReport

_MS = 1e6

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2em;
       background: #fafafa; color: #1a1a1a; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 2em;
     border-bottom: 1px solid #ccc; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: right; }
th { background: #eee; } td.l, th.l { text-align: left; }
.sev-error { color: #b00020; font-weight: bold; }
.sev-warning { color: #a05a00; }
.sev-info { color: #555; }
.spark { margin: 0.4em 0; }
.spark .name { display: inline-block; width: 26em; vertical-align: middle; }
.muted { color: #777; font-size: 0.9em; }
svg { vertical-align: middle; background: #fff; border: 1px solid #ddd; }
"""


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _sparkline(windows: list, window_ns: int, width: int = 360,
               height: int = 44) -> str:
    """Inline SVG polyline over a series' ``[index, last, min, max, count]``
    rows (sorted by index)."""
    values = [row[1] for row in windows]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1
    first, last = windows[0][0], windows[-1][0]
    x_span = (last - first) or 1
    points = " ".join(
        f"{2 + (row[0] - first) / x_span * (width - 4):.1f},"
        f"{height - 4 - (row[1] - lo) / span * (height - 8):.1f}"
        for row in windows)
    window_ms = window_ns / _MS
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline fill="none" stroke="#2a6fb0" stroke-width="1.5" '
        f'points="{points}"/></svg> '
        f'<span class="muted">[{lo:g} .. {hi:g}] over windows '
        f'{first}-{last} ({window_ms:g} ms each)</span>')


class Dashboard:
    """One run's telemetry + trace, renderable as text or HTML."""

    def __init__(self, telemetry: dict | None = None,
                 spans: typing.Iterable[dict] | None = None,
                 title: str = "repro run dashboard",
                 window: tuple[int, int] | None = None):
        self.telemetry = telemetry or {}
        self.title = title
        span_list = list(spans) if spans is not None else []
        self.critpath = CriticalPathReport.from_spans(span_list, window)
        self.span_count = len(span_list)

    # ------------------------------------------------------------------
    @property
    def series(self) -> list[dict]:
        return self.telemetry.get("timeseries", {}).get("series", [])

    @property
    def window_ns(self) -> int:
        return self.telemetry.get("timeseries", {}).get("window_ns", 0)

    @property
    def alerts(self) -> list[dict]:
        return self.telemetry.get("monitor", {}).get("alerts", [])

    def alerts_by_severity(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for alert in self.alerts:
            counts[alert["severity"]] = counts.get(alert["severity"], 0) + 1
        return counts

    def error_alerts(self) -> list[dict]:
        return [alert for alert in self.alerts
                if alert["severity"] == "error"]

    def _sorted_alerts(self) -> list[dict]:
        return sorted(self.alerts, key=lambda alert: (
            _SEVERITY_ORDER.get(alert["severity"], 9), alert["window"],
            alert["rule"], sorted(alert["labels"].items())))

    # ------------------------------------------------------------------
    # Text rendering
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines = [f"=== {self.title} ===", ""]
        counts = self.alerts_by_severity()
        lines.append(f"alerts: {counts['error']} error / "
                     f"{counts['warning']} warning / {counts['info']} info")
        for alert in self._sorted_alerts():
            window_ms = alert["window_start_ns"] / _MS
            lines.append(
                f"  [{alert['severity']:>7}] {alert['rule']}: "
                f"{alert['series']}{_fmt_labels(alert['labels'])} = "
                f"{alert['value']:g} (threshold {alert['threshold']:g}) "
                f"in window {alert['window']} @ {window_ms:g} ms")
        if not self.alerts:
            lines.append("  (none)")

        lines += ["", f"time-series ({len(self.series)} series, "
                      f"window = {self.window_ns / _MS:g} ms):"]
        for series in self.series:
            windows = series["windows"]
            if not windows:
                continue
            values = [row[1] for row in windows]
            lines.append(
                f"  {series['name']}{_fmt_labels(series['labels'])} "
                f"[{series['kind']}]: {len(windows)} windows, "
                f"last={values[-1]:g} min={min(values):g} max={max(values):g}")
        if not self.series:
            lines.append("  (no telemetry captured)")

        lines += ["", self.critpath.render()]
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # HTML rendering
    # ------------------------------------------------------------------
    def render_html(self) -> str:
        esc = html.escape
        parts = [
            "<!DOCTYPE html><html><head><meta charset='utf-8'>",
            f"<title>{esc(self.title)}</title>",
            f"<style>{_CSS}</style></head><body>",
            f"<h1>{esc(self.title)}</h1>",
        ]
        counts = self.alerts_by_severity()
        parts.append(
            f"<p><span class='sev-error'>{counts['error']} error</span> / "
            f"<span class='sev-warning'>{counts['warning']} warning</span> / "
            f"<span class='sev-info'>{counts['info']} info</span> alerts; "
            f"{len(self.series)} series at "
            f"{self.window_ns / _MS:g} ms windows</p>")

        parts.append("<h2>Alerts</h2>")
        if self.alerts:
            parts.append("<table><tr><th class='l'>severity</th>"
                         "<th class='l'>rule</th><th class='l'>series</th>"
                         "<th>value</th><th>threshold</th><th>window</th>"
                         "<th>sim time (ms)</th></tr>")
            for alert in self._sorted_alerts():
                sev = alert["severity"]
                parts.append(
                    f"<tr><td class='l sev-{esc(sev)}'>{esc(sev)}</td>"
                    f"<td class='l'>{esc(alert['rule'])}</td>"
                    f"<td class='l'>{esc(alert['series'])}"
                    f"{esc(_fmt_labels(alert['labels']))}</td>"
                    f"<td>{alert['value']:g}</td>"
                    f"<td>{alert['threshold']:g}</td>"
                    f"<td>{alert['window']}</td>"
                    f"<td>{alert['window_start_ns'] / _MS:g}</td></tr>")
            parts.append("</table>")
        else:
            parts.append("<p class='muted'>no alerts — all monitors "
                         "stayed green</p>")

        parts.append("<h2>Time-series</h2>")
        if self.series:
            for series in self.series:
                if not series["windows"]:
                    continue
                name = esc(series["name"] + _fmt_labels(series["labels"]))
                parts.append(
                    f"<div class='spark'><span class='name'>{name}</span> "
                    f"{_sparkline(series['windows'], self.window_ns)}</div>")
        else:
            parts.append("<p class='muted'>no telemetry captured (run with "
                         "--telemetry)</p>")

        parts.append("<h2>Commit critical path</h2>")
        parts.append(self._critpath_html())
        parts.append("</body></html>")
        return "\n".join(parts)

    def _critpath_html(self) -> str:
        esc = html.escape
        if not self.critpath.paths:
            return "<p class='muted'>no complete traced transactions</p>"
        agg = self.critpath.aggregate()
        rows = ["<table><tr><th class='l'>segment</th><th>mean (ms)</th>"
                "<th>share %</th><th>dominates</th></tr>"]
        for name in SEGMENTS:
            row = agg[name]
            rows.append(f"<tr><td class='l'>{esc(name)}</td>"
                        f"<td>{row['mean_ns'] / _MS:.3f}</td>"
                        f"<td>{100 * row['share']:.1f}</td>"
                        f"<td>{row['dominates']}</td></tr>")
        rows.append("</table>")
        rows.append(
            f"<p class='muted'>{len(self.critpath.paths)} transactions; mean "
            f"e2e = {self.critpath.mean_e2e_ns() / _MS:.3f} ms; max "
            f"attribution error = "
            f"{self.critpath.max_attribution_error_ns()} ns</p>")
        return "\n".join(rows)
