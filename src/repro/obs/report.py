"""Per-run observability reports.

:class:`RunReport` digests a traced run into paper-style tables (rendered
through the same :class:`~repro.bench.harness.ExperimentTable` machinery
the benchmarks use):

- **commit-latency breakdown** — where a read-write transaction's
  end-to-end time goes: timestamp acquisition, execution, commit-wait,
  log-flush/ack wait, and the commit-path residual (CN/DN service +
  network). Components are taken from the per-transaction spans the CN,
  provider, and DN emit, so for the median transaction they sum *exactly*
  to its measured end-to-end latency.
- **subsystem span summary** — span counts and total simulated time per
  category (where simulated time goes, Fig. 1/4/6-style).
- **run overview** — cluster-wide counters (commits, GTM traffic, RCP lag,
  shipped bytes) plus key metric-registry instruments.

The report is JSON-serializable (``to_dict``) so benches can attach it to
``ExperimentTable.extra_info``.
"""

from __future__ import annotations

import typing

_MS = 1e6  # ns per ms

#: The five components the breakdown partitions a transaction into.
BREAKDOWN_COMPONENTS = (
    "timestamp acquisition",
    "execute",
    "commit wait",
    "log flush / acks",
    "commit other (service+net)",
)


def _experiment_table():
    # Imported lazily: repro.bench pulls in the cluster builder, which
    # imports repro.obs — a module-level import here would be circular.
    from repro.bench.harness import ExperimentTable
    return ExperimentTable


class _TxnBreakdown:
    """Per-transaction component durations extracted from spans."""

    __slots__ = ("txid", "begin", "execute", "commit", "wait", "flush", "end")

    def __init__(self, txid):
        self.txid = txid
        self.begin = self.execute = self.commit = None
        self.wait = 0
        self.flush = 0
        self.end = 0

    @property
    def complete(self) -> bool:
        return None not in (self.begin, self.execute, self.commit)

    @property
    def total(self) -> int:
        return self.begin + self.execute + self.commit

    def components(self) -> dict[str, int]:
        other = max(0, self.commit - self.wait - self.flush)
        return {
            BREAKDOWN_COMPONENTS[0]: self.begin,
            BREAKDOWN_COMPONENTS[1]: self.execute,
            BREAKDOWN_COMPONENTS[2]: self.wait,
            BREAKDOWN_COMPONENTS[3]: self.flush,
            BREAKDOWN_COMPONENTS[4]: other + min(
                0, self.commit - self.wait - self.flush),
        }


def extract_transactions(spans, window: tuple[int, int] | None = None
                         ) -> list[_TxnBreakdown]:
    """Group lifecycle spans by transaction id.

    ``window`` (start_ns, end_ns) filters to transactions whose commit
    finished inside it — matching the workload driver's measurement window
    so the two latency populations are identical.
    """
    txns: dict[typing.Any, _TxnBreakdown] = {}

    def entry(txid) -> _TxnBreakdown:
        breakdown = txns.get(txid)
        if breakdown is None:
            breakdown = txns[txid] = _TxnBreakdown(txid)
        return breakdown

    for span in spans:
        txid = span.args.get("txid")
        if txid is None:
            continue
        if span.cat == "txn":
            if span.name == "begin":
                entry(txid).begin = span.duration_ns
            elif span.name == "execute":
                entry(txid).execute = span.duration_ns
            elif span.name == "commit":
                record = entry(txid)
                record.commit = span.duration_ns
                record.end = span.end
        elif span.cat == "ts" and span.name == "commit_wait":
            entry(txid).wait += span.duration_ns
        elif span.cat == "wal" and span.name == "flush":
            # Parallel per-shard flushes: the critical path is the longest.
            record = entry(txid)
            record.flush = max(record.flush, span.duration_ns)
    complete = [txn for txn in txns.values() if txn.complete]
    if window is not None:
        start, end = window
        complete = [txn for txn in complete if start <= txn.end < end]
    return complete


class RunReport:
    """Digest of one run's tracer + metrics + cluster counters."""

    def __init__(self, transactions: list[_TxnBreakdown],
                 category_counts: dict[str, int],
                 category_duration_ns: dict[str, int],
                 overview: dict, dropped_spans: int = 0,
                 driver_p50_ms: float | None = None,
                 metrics_snapshot: list | None = None):
        self.transactions = transactions
        self.category_counts = category_counts
        self.category_duration_ns = category_duration_ns
        self.overview = overview
        self.dropped_spans = dropped_spans
        self.driver_p50_ms = driver_p50_ms
        self.metrics_snapshot = metrics_snapshot or []

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, db, result=None) -> "RunReport":
        """Build a report from a :class:`~repro.cluster.builder.GlobalDB`
        (after a run) and optionally the :class:`WorkloadResult`."""
        tracer = db.env.tracer
        window = None
        driver_p50 = None
        if result is not None:
            stats = result.stats
            driver_p50 = stats.latency_percentile_ms(50)
            if stats.window_ns and getattr(stats, "window_start_ns", 0):
                window = (stats.window_start_ns,
                          stats.window_start_ns + stats.window_ns)
        transactions = extract_transactions(tracer.spans, window)
        return cls(
            transactions=transactions,
            category_counts=tracer.counts_by_category(),
            category_duration_ns=tracer.duration_by_category(),
            overview=db.stats(),
            dropped_spans=tracer.dropped,
            driver_p50_ms=driver_p50,
            metrics_snapshot=db.env.metrics.snapshot(),
        )

    # ------------------------------------------------------------------
    # Commit-latency breakdown
    # ------------------------------------------------------------------
    def e2e_p50_ns(self) -> int:
        """Measured end-to-end p50 over component-complete transactions."""
        if not self.transactions:
            return 0
        totals = sorted(txn.total for txn in self.transactions)
        return totals[(len(totals) - 1) // 2]

    def median_transaction(self) -> _TxnBreakdown | None:
        if not self.transactions:
            return None
        ordered = sorted(self.transactions, key=lambda txn: txn.total)
        return ordered[(len(ordered) - 1) // 2]

    def breakdown_error(self) -> float:
        """Relative error between the median transaction's component sum
        and the measured end-to-end p50 (0.0 when both agree exactly)."""
        p50 = self.e2e_p50_ns()
        median = self.median_transaction()
        if not p50 or median is None:
            return 0.0
        return abs(sum(median.components().values()) - p50) / p50

    def commit_breakdown(self):
        """The breakdown table: median-transaction and mean components."""
        table = _experiment_table()(
            experiment="Run report — commit latency breakdown",
            paper_claim="where simulated time goes in a read-write commit",
            columns=["component", "median_txn_ms", "mean_ms", "share_pct"])
        txns = self.transactions
        if not txns:
            table.note("no traced read-write transactions (tracing off, or "
                       "read-only workload)")
            return table
        median = self.median_transaction()
        median_parts = median.components()
        mean_parts = {name: 0.0 for name in BREAKDOWN_COMPONENTS}
        for txn in txns:
            for name, value in txn.components().items():
                mean_parts[name] += value
        mean_total = sum(txn.total for txn in txns) / len(txns)
        for name in BREAKDOWN_COMPONENTS:
            mean_value = mean_parts[name] / len(txns)
            table.add_row(name, median_parts[name] / _MS, mean_value / _MS,
                          100.0 * mean_value / mean_total if mean_total else 0.0)
        p50 = self.e2e_p50_ns()
        table.add_row("end-to-end (sum)",
                      sum(median_parts.values()) / _MS, mean_total / _MS, 100.0)
        table.note(f"{len(txns)} traced read-write transactions; "
                   f"measured e2e p50 = {p50 / _MS:.3f} ms "
                   f"(component sum within {self.breakdown_error() * 100:.2f}%)")
        if self.driver_p50_ms is not None:
            table.note(f"driver-measured p50 over all transaction types = "
                       f"{self.driver_p50_ms:.3f} ms")
        return table

    # ------------------------------------------------------------------
    # Subsystem + overview tables
    # ------------------------------------------------------------------
    def subsystem_table(self):
        table = _experiment_table()(
            experiment="Run report — spans by subsystem",
            paper_claim="per-component activity and simulated time",
            columns=["category", "spans", "total_ms"])
        for category, count in self.category_counts.items():
            table.add_row(category, count,
                          self.category_duration_ns.get(category, 0) / _MS)
        if self.dropped_spans:
            table.note(f"{self.dropped_spans} spans dropped (max_spans cap)")
        return table

    def overview_table(self):
        table = _experiment_table()(
            experiment="Run report — cluster overview",
            paper_claim="cluster-wide counters for this run",
            columns=["metric", "value"])
        for key, value in self.overview.items():
            table.add_row(key, value)
        table.add_row("metric instruments", len(self.metrics_snapshot))
        return table

    # ------------------------------------------------------------------
    def tables(self) -> list:
        return [self.commit_breakdown(), self.subsystem_table(),
                self.overview_table()]

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables())

    def to_dict(self) -> dict:
        return {
            "categories": self.category_counts,
            "category_duration_ns": self.category_duration_ns,
            "traced_transactions": len(self.transactions),
            "e2e_p50_ns": self.e2e_p50_ns(),
            "breakdown_error": self.breakdown_error(),
            "driver_p50_ms": self.driver_p50_ms,
            "dropped_spans": self.dropped_spans,
            "overview": {key: value for key, value in self.overview.items()},
            "tables": [table.to_dict() for table in self.tables()],
        }
