"""Per-transaction commit critical-path analysis.

:func:`analyze` reconstructs each committed transaction's span tree from a
trace (live :class:`~repro.obs.trace.Span` objects or the dicts read back
from ``trace.jsonl``) and partitions its end-to-end latency into
**exclusive** segments that sum *exactly* — to the nanosecond — to the
measured e2e latency:

- ``snapshot / admission`` — the ``txn begin`` span (GTM snapshot RTT or
  local invocation wait, plus CN admission);
- ``execute (statements)`` — the ``txn execute`` span;
- the ``txn commit`` interval, partitioned between the txid-matched child
  spans that overlap it, attributed by priority (a nanosecond covered by
  several children counts once, for the highest-priority one):

  1. ``commit: commit-wait``        (``ts commit_wait``)
  2. ``commit: gtm rpc``            (``ts commit_rpc``)
  3. ``commit: wal flush & acks``   (``wal flush``, parallel per-shard)
  4. ``commit: service + network``  — the residual nobody claims.

Exactness falls out of the construction: the three lifecycle spans are
contiguous (``begin.end == execute.start``, ``execute.end ==
commit.start``), children are clipped to the commit interval before the
interval subtraction, and the residual is defined as the uncovered
remainder. The begin phase stays a single segment because its children
(``ts begin_rpc`` / ``invocation_wait``) carry no txid — several
concurrent transactions share a CN track, so containment matching would
mis-attribute.

Pure functions over span data: no env, no clocks, importable offline.
"""

from __future__ import annotations

import typing

_MS = 1e6  # ns per ms

SEG_BEGIN = "snapshot / admission"
SEG_EXECUTE = "execute (statements)"
SEG_COMMIT_WAIT = "commit: commit-wait"
SEG_GTM_RPC = "commit: gtm rpc"
SEG_WAL = "commit: wal flush & acks"
SEG_RESIDUAL = "commit: service + network"

#: Segment names in report order.
SEGMENTS = (SEG_BEGIN, SEG_EXECUTE, SEG_COMMIT_WAIT, SEG_GTM_RPC, SEG_WAL,
            SEG_RESIDUAL)

#: (category, name) -> commit-interval priority class, best first.
_CHILD_SEGMENT = {
    ("ts", "commit_wait"): SEG_COMMIT_WAIT,
    ("ts", "commit_rpc"): SEG_GTM_RPC,
    ("wal", "flush"): SEG_WAL,
}

_COMMIT_PRIORITY = (SEG_COMMIT_WAIT, SEG_GTM_RPC, SEG_WAL)


# ----------------------------------------------------------------------
# Exact interval arithmetic (half-open [start, end) pairs, integer ns)
# ----------------------------------------------------------------------
def _merge(intervals: typing.Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of intervals as a sorted, disjoint list."""
    merged: list[list[int]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return [(start, end) for start, end in merged]


def _subtract(intervals: list[tuple[int, int]],
              covered: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """``intervals`` minus ``covered`` (both sorted and disjoint)."""
    result: list[tuple[int, int]] = []
    for start, end in intervals:
        cursor = start
        for cov_start, cov_end in covered:
            if cov_end <= cursor:
                continue
            if cov_start >= end:
                break
            if cov_start > cursor:
                result.append((cursor, min(cov_start, end)))
            cursor = max(cursor, cov_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append((cursor, end))
    return result


def _total(intervals: list[tuple[int, int]]) -> int:
    return sum(end - start for start, end in intervals)


# ----------------------------------------------------------------------
# Per-transaction path
# ----------------------------------------------------------------------
class TxnPath:
    """One transaction's exact latency partition."""

    __slots__ = ("txid", "track", "start_ns", "end_ns", "segments")

    def __init__(self, txid, track: str, start_ns: int, end_ns: int,
                 segments: dict[str, int]):
        self.txid = txid
        self.track = track          # the CN that ran it
        self.start_ns = start_ns    # begin-span start
        self.end_ns = end_ns        # commit-span end
        self.segments = segments    # segment name -> exclusive ns

    @property
    def e2e_ns(self) -> int:
        """Measured end-to-end latency (commit end minus begin start)."""
        return self.end_ns - self.start_ns

    @property
    def attributed_ns(self) -> int:
        return sum(self.segments.values())

    def dominant(self) -> str:
        """The segment that claims the most time."""
        return max(SEGMENTS, key=lambda name: self.segments[name])

    def to_dict(self) -> dict:
        return {
            "txid": self.txid,
            "track": self.track,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "e2e_ns": self.e2e_ns,
            "segments": dict(self.segments),
        }


def _as_dict(span) -> dict:
    return span.to_dict() if hasattr(span, "to_dict") else span


def analyze(spans, window: tuple[int, int] | None = None) -> list[TxnPath]:
    """Reconstruct every complete transaction's critical path.

    ``window`` (start_ns, end_ns) keeps only transactions whose commit
    finished inside it, matching the workload driver's measurement window.
    Output is sorted by commit-finish time (ties by begin start), so it is
    independent of span iteration details.
    """
    lifecycle: dict = {}
    children: dict = {}
    for raw in spans:
        span = _as_dict(raw)
        txid = span.get("args", {}).get("txid")
        if txid is None:
            continue
        cat, name = span["cat"], span["name"]
        if cat == "txn" and name in ("begin", "execute", "commit"):
            lifecycle.setdefault(txid, {})[name] = span
        elif (cat, name) in _CHILD_SEGMENT:
            children.setdefault(txid, []).append(span)

    paths = []
    for txid, parts in lifecycle.items():
        if len(parts) != 3:
            continue  # aborted or clipped transaction
        begin, execute, commit = parts["begin"], parts["execute"], parts["commit"]
        commit_start, commit_end = commit["start_ns"], commit["end_ns"]
        if window is not None and not (window[0] <= commit_end < window[1]):
            continue

        by_segment: dict[str, list[tuple[int, int]]] = {
            name: [] for name in _COMMIT_PRIORITY}
        for child in children.get(txid, ()):
            segment = _CHILD_SEGMENT[(child["cat"], child["name"])]
            clipped = (max(child["start_ns"], commit_start),
                       min(child["end_ns"], commit_end))
            if clipped[1] > clipped[0]:
                by_segment[segment].append(clipped)

        segments = {
            SEG_BEGIN: begin["end_ns"] - begin["start_ns"],
            SEG_EXECUTE: execute["end_ns"] - execute["start_ns"],
        }
        covered: list[tuple[int, int]] = []
        for name in _COMMIT_PRIORITY:
            exclusive = _subtract(_merge(by_segment[name]), covered)
            segments[name] = _total(exclusive)
            covered = _merge(covered + exclusive)
        segments[SEG_RESIDUAL] = (commit_end - commit_start) - _total(covered)
        paths.append(TxnPath(txid, commit["track"], begin["start_ns"],
                             commit_end, segments))
    paths.sort(key=lambda path: (path.end_ns, path.start_ns, str(path.txid)))
    return paths


# ----------------------------------------------------------------------
# Cluster-level aggregation
# ----------------------------------------------------------------------
class CriticalPathReport:
    """Aggregates :class:`TxnPath` rows into a where-commit-time-goes table."""

    def __init__(self, paths: list[TxnPath]):
        self.paths = paths

    @classmethod
    def from_spans(cls, spans,
                   window: tuple[int, int] | None = None) -> "CriticalPathReport":
        return cls(analyze(spans, window))

    # ------------------------------------------------------------------
    def aggregate(self) -> dict[str, dict]:
        """Per segment: total ns, mean ns, share of total e2e time, and
        how many transactions it dominates."""
        totals = {name: 0 for name in SEGMENTS}
        dominant = {name: 0 for name in SEGMENTS}
        for path in self.paths:
            for name, value in path.segments.items():
                totals[name] += value
            dominant[path.dominant()] += 1
        grand = sum(totals.values())
        count = len(self.paths)
        return {
            name: {
                "total_ns": totals[name],
                "mean_ns": totals[name] / count if count else 0.0,
                "share": totals[name] / grand if grand else 0.0,
                "dominates": dominant[name],
            }
            for name in SEGMENTS
        }

    def max_attribution_error_ns(self) -> int:
        """Worst |attributed − measured| over all paths; 0 by construction
        unless the trace was damaged."""
        return max((abs(path.attributed_ns - path.e2e_ns)
                    for path in self.paths), default=0)

    def mean_e2e_ns(self) -> float:
        if not self.paths:
            return 0.0
        return sum(path.e2e_ns for path in self.paths) / len(self.paths)

    # ------------------------------------------------------------------
    def table(self):
        from repro.bench.harness import ExperimentTable  # lazy: avoids cycle
        table = ExperimentTable(
            experiment="Critical path — where commit latency goes",
            paper_claim="exclusive per-segment attribution; segments sum "
                        "exactly to measured e2e latency",
            columns=["segment", "mean_ms", "share_pct", "dominates_txns"])
        agg = self.aggregate()
        for name in SEGMENTS:
            row = agg[name]
            table.add_row(name, row["mean_ns"] / _MS, 100.0 * row["share"],
                          row["dominates"])
        if self.paths:
            table.note(f"{len(self.paths)} transactions; mean e2e = "
                       f"{self.mean_e2e_ns() / _MS:.3f} ms; max attribution "
                       f"error = {self.max_attribution_error_ns()} ns")
        else:
            table.note("no complete traced transactions")
        return table

    def render(self) -> str:
        return self.table().render()

    def to_dict(self) -> dict:
        return {
            "transactions": len(self.paths),
            "mean_e2e_ns": self.mean_e2e_ns(),
            "max_attribution_error_ns": self.max_attribution_error_ns(),
            "segments": self.aggregate(),
        }
