"""Observability CLI: ``python -m repro.obs <command>``.

Commands:

- ``run`` — execute a small traced Three-City TPC-C run, print the
  :class:`RunReport`, and write ``trace.jsonl`` + a Chrome trace-event
  ``trace.json`` (open in ``chrome://tracing`` / Perfetto). ``--check``
  turns it into a smoke test: exit non-zero unless the trace covers at
  least six span categories, the Chrome export is valid JSON, and the
  median transaction's component sum lands within 5% of the measured
  end-to-end p50.
- ``dash <trace.jsonl>`` — render the run dashboard (alerts, time-series
  sparklines, commit critical path) as text and optionally a
  self-contained HTML file. Telemetry is read from a sibling
  ``telemetry.json`` (written by ``run --telemetry``) or ``--telemetry``;
  ``--fail-on-error-alerts`` turns it into a CI gate.
- ``summarize <trace.jsonl>`` — per-category span counts/durations of a
  previously written trace.
- ``convert <in.jsonl> <out.json>`` — turn a JSONL span log into a Chrome
  trace-event file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.report import RunReport
from repro.obs.trace import chrome_trace_dict, read_jsonl

_MS = 1e6

#: ``run --check`` requires at least this many distinct span categories.
MIN_CATEGORIES = 6

#: ... and the breakdown to be at least this close to the measured p50.
MAX_BREAKDOWN_ERROR = 0.05


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    # Imported here so `summarize`/`convert` stay usable without the
    # simulator package fully importable (and to keep startup snappy).
    from repro.cluster import ClusterConfig, build_cluster, three_city
    from repro.workloads import TpccConfig, TpccWorkload, run_workload

    config = ClusterConfig.globaldb(three_city(), metrics_enabled=True,
                                    trace_enabled=True,
                                    timeseries_enabled=args.telemetry)
    db = build_cluster(config)
    workload = TpccWorkload(TpccConfig(warehouses=args.warehouses))
    result = run_workload(db, workload, terminals=args.terminals,
                          duration_s=args.duration, warmup_s=args.warmup)
    report = RunReport.capture(db, result)
    print(result.summary())
    print()
    print(report.render())

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    jsonl_path = out_dir / "trace.jsonl"
    chrome_path = out_dir / "trace.json"
    db.env.tracer.to_jsonl(str(jsonl_path))
    db.env.tracer.write_chrome_trace(str(chrome_path))
    print(f"\nwrote {jsonl_path} ({len(db.env.tracer.spans)} spans) "
          f"and {chrome_path}")

    if args.telemetry:
        from repro.obs import telemetry_snapshot
        db.env.series.catch_up()  # seal + evaluate trailing windows
        snapshot = telemetry_snapshot(db.env)
        telemetry_path = out_dir / "telemetry.json"
        with open(telemetry_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle)
        alerts = snapshot["monitor"]["alerts"]
        print(f"wrote {telemetry_path} "
              f"({len(snapshot['timeseries']['series'])} series, "
              f"{len(alerts)} alerts)")
        for alert in alerts:
            print(f"  alert [{alert['severity']}] {alert['rule']}: "
                  f"{alert['series']} = {alert['value']:g} "
                  f"in window {alert['window']}")

    if args.check:
        return _check(report, chrome_path)
    return 0


# ----------------------------------------------------------------------
# dash
# ----------------------------------------------------------------------
def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import Dashboard

    spans = read_jsonl(args.trace)
    telemetry_path = Path(args.telemetry) if args.telemetry else \
        Path(args.trace).parent / "telemetry.json"
    telemetry = None
    if telemetry_path.exists():
        with open(telemetry_path, encoding="utf-8") as handle:
            telemetry = json.load(handle)
    else:
        print(f"note: no telemetry at {telemetry_path} "
              f"(run with --telemetry to capture time-series + alerts)")

    dashboard = Dashboard(telemetry=telemetry, spans=spans,
                          title=f"repro dashboard — {args.trace}")
    print(dashboard.render_text())
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(dashboard.render_html())
        print(f"wrote {args.html}")
    if args.fail_on_error_alerts:
        errors = dashboard.error_alerts()
        if errors:
            for alert in errors:
                print(f"dash FAIL: error alert {alert['rule']} on "
                      f"{alert['series']} in window {alert['window']}",
                      file=sys.stderr)
            return 1
        print("dash PASS: no severity=error alerts")
    return 0


def _check(report: RunReport, chrome_path: Path) -> int:
    """Validate the run for CI; print PASS/FAIL per criterion."""
    failures = []
    categories = sorted(report.category_counts)
    if len(categories) < MIN_CATEGORIES:
        failures.append(f"only {len(categories)} span categories "
                        f"({categories}); need >= {MIN_CATEGORIES}")
    try:
        with open(chrome_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not payload.get("traceEvents"):
            failures.append("chrome trace has no traceEvents")
    except (OSError, ValueError) as exc:
        failures.append(f"chrome trace is not valid JSON: {exc}")
    if not report.transactions:
        failures.append("no traced read-write transactions in the window")
    else:
        error = report.breakdown_error()
        if error > MAX_BREAKDOWN_ERROR:
            failures.append(
                f"breakdown error {error * 100:.2f}% exceeds "
                f"{MAX_BREAKDOWN_ERROR * 100:.0f}% "
                f"(e2e p50 {report.e2e_p50_ns() / _MS:.3f} ms)")

    print(f"\ncheck: {len(categories)} span categories: "
          f"{', '.join(categories)}")
    if failures:
        for failure in failures:
            print(f"check FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check PASS: chrome trace valid, "
          f"{len(report.transactions)} transactions, breakdown within "
          f"{report.breakdown_error() * 100:.2f}% of e2e p50")
    return 0


# ----------------------------------------------------------------------
# summarize / convert
# ----------------------------------------------------------------------
def _cmd_summarize(args: argparse.Namespace) -> int:
    spans = read_jsonl(args.trace)
    counts: dict[str, int] = {}
    durations: dict[str, int] = {}
    for span in spans:
        cat = span["cat"]
        counts[cat] = counts.get(cat, 0) + 1
        durations[cat] = (durations.get(cat, 0)
                          + span["end_ns"] - span["start_ns"])
    if not spans:
        print("no spans")
        return 0
    first = min(span["start_ns"] for span in spans)
    last = max(span["end_ns"] for span in spans)
    print(f"{len(spans)} spans over {(last - first) / _MS:.3f} sim-ms "
          f"in {len(counts)} categories")
    width = max(len(cat) for cat in counts)
    for cat in sorted(counts):
        print(f"  {cat.ljust(width)}  {counts[cat]:>8} spans  "
              f"{durations[cat] / _MS:>12.3f} ms total")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    spans = read_jsonl(args.trace)
    payload = chrome_trace_dict(spans)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    print(f"wrote {args.output} ({len(payload['traceEvents'])} events)")
    return 0


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace / metrics tooling for simulator runs.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="traced Three-City TPC-C smoke run")
    run.add_argument("--out", default="traces",
                     help="output directory (default: ./traces)")
    run.add_argument("--duration", type=float, default=0.5,
                     help="measured sim-seconds (default: 0.5)")
    run.add_argument("--warmup", type=float, default=0.2,
                     help="warmup sim-seconds excluded from stats")
    run.add_argument("--terminals", type=int, default=30)
    run.add_argument("--warehouses", type=int, default=6)
    run.add_argument("--check", action="store_true",
                     help="exit non-zero unless the trace passes the "
                          "acceptance criteria (for CI)")
    run.add_argument("--telemetry", action="store_true",
                     help="also capture windowed time-series + default SLO "
                          "monitors; writes telemetry.json next to the trace")
    run.set_defaults(func=_cmd_run)

    dash = sub.add_parser("dash", help="render the run dashboard "
                                       "(alerts, sparklines, critical path)")
    dash.add_argument("trace", help="trace.jsonl from a run")
    dash.add_argument("--telemetry", default=None,
                      help="telemetry.json path (default: sibling of trace)")
    dash.add_argument("--html", default=None,
                      help="also write a self-contained HTML dashboard here")
    dash.add_argument("--fail-on-error-alerts", action="store_true",
                      help="exit non-zero if any severity=error alert fired "
                           "(for CI)")
    dash.set_defaults(func=_cmd_dash)

    summarize = sub.add_parser("summarize",
                               help="per-category summary of a trace.jsonl")
    summarize.add_argument("trace")
    summarize.set_defaults(func=_cmd_summarize)

    convert = sub.add_parser("convert",
                             help="JSONL span log -> Chrome trace JSON")
    convert.add_argument("trace")
    convert.add_argument("output")
    convert.set_defaults(func=_cmd_convert)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        if isinstance(exc, BrokenPipeError):  # e.g. piped into `head`
            return 0
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
