"""Online SLO / invariant monitors over the windowed time-series.

A :class:`MonitorEngine` registers as a listener on a
:class:`~repro.obs.timeseries.TimeSeriesStore` and evaluates its declarative
:class:`Rule` set at every window seal — *inside* the simulation, at
deterministic points, on deterministic data. A rule that trips emits a
structured :class:`Alert` (appended to ``engine.alerts`` and, when tracing
is live, recorded as an ``alert`` span on the ``monitor`` track), so tests
can assert "the staleness bound was violated in window 37 on dn0r1" and a
CI gate can fail a run on any ``severity=error`` alert.

Rule kinds:

``above``        a series' window value exceeds ``threshold`` for
                 ``for_windows`` consecutive sealed windows;
``below``        the value falls short of ``threshold`` (quorum degraded);
``ratio_above``  numerator / (numerator + denominator) window deltas exceed
                 ``threshold`` (abort-rate spike), gated on a minimum total;
``stalled``      a gauge stops increasing for ``for_windows`` windows while
                 an activity series shows progress (RCP stall under load);
``silent``       the watchdog: a series that has reported before receives
                 no samples for ``for_windows`` consecutive windows.

Every rule evaluates each labelled series matching its ``series`` name
independently (so ``repl.lag_records{node=dn0r1}`` trips separately from
``dn2r0``), fires once on entry into the bad state, and re-arms after one
healthy window. Series are visited in sorted (name, labels) order; nothing
here iterates a set or dict in insertion order, which is what makes the
alert stream digest-stable under ``PYTHONHASHSEED`` perturbation
(``python -m repro.lint --determinism`` proves it).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.obs.timeseries import Series, TimeSeriesStore
from repro.obs.trace import trace_digest

SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Rule:
    """One declarative monitor rule."""

    name: str
    series: str
    kind: str                   # above | below | ratio_above | stalled | silent
    severity: str = "warning"
    threshold: float = 0.0
    for_windows: int = 1        # consecutive bad windows before firing
    #: ratio_above: series name whose delta joins the denominator
    #: (denominator = numerator + this series' delta).
    denominator: str | None = None
    #: ratio_above: skip windows with fewer than this many total events.
    min_total: int = 0
    #: stalled: only count windows where this counter series shows progress.
    activity: str | None = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


@dataclass(frozen=True)
class Alert:
    """One structured monitor alert (digest-stable, JSON-serializable)."""

    rule: str
    severity: str
    series: str
    labels: tuple                # sorted (key, value) pairs
    window: int
    window_start_ns: int
    window_end_ns: int
    value: float
    threshold: float

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "series": self.series,
            "labels": dict(self.labels),
            "window": self.window,
            "window_start_ns": self.window_start_ns,
            "window_end_ns": self.window_end_ns,
            "value": self.value,
            "threshold": self.threshold,
        }


def alerts_digest(alerts: typing.Iterable[Alert | dict]) -> str:
    """Order-sensitive SHA-256 over the alert stream (same canonical-JSON
    scheme as the trace digest, so the perturbation harness can compare
    alert streams across processes)."""
    return trace_digest(
        alert if isinstance(alert, dict) else alert.to_dict()
        for alert in alerts)


def default_monitor_rules(replicas_per_shard: int = 2,
                          staleness_bound_ns: int = 400_000_000,
                          lag_records: int = 5_000) -> tuple[Rule, ...]:
    """The default SLO set CI gates on. Thresholds are sized so a healthy
    run is silent: staleness in a live cluster stays well under the bound
    (the RCP advances every few ms), heartbeats keep every replica's
    frontier moving (no watchdog), and TPC-C abort rates are far below the
    spike threshold."""
    return (
        # The paper's headline promise: replica staleness stays bounded.
        Rule(name="staleness-bound", series="ror.staleness_ns", kind="above",
             severity="error", threshold=float(staleness_bound_ns)),
        # Replication lag persistently above threshold (log-shipping
        # backlog the replayer is not absorbing).
        Rule(name="replication-lag", series="repl.lag_records", kind="above",
             severity="warning", threshold=float(lag_records), for_windows=4),
        # A shard lost replica redundancy.
        Rule(name="quorum-degraded", series="cluster.shard_replicas_up",
             kind="below", severity="warning",
             threshold=float(replicas_per_shard), for_windows=2),
        # Abort-rate spike: > 50% of outcomes aborting, sustained.
        Rule(name="abort-spike", series="cn.aborts", kind="ratio_above",
             severity="warning", threshold=0.5, for_windows=2,
             denominator="cn.commits", min_total=20),
        # The RCP stopped advancing while commits kept happening.
        Rule(name="rcp-stall", series="ror.rcp", kind="stalled",
             severity="warning", for_windows=6, activity="cn.commits"),
        # Watchdog: a replica's applied frontier went silent (no samples),
        # e.g. its replayer died or shipping stopped entirely.
        Rule(name="frontier-silent", series="repl.applied_lsn", kind="silent",
             severity="info", for_windows=8),
    )


class _RuleState:
    """Consecutive-window bookkeeping for one (rule, labelled series)."""

    __slots__ = ("bad_streak", "firing", "last_value")

    def __init__(self):
        self.bad_streak = 0
        self.firing = False
        self.last_value = None


class MonitorEngine:
    """Evaluates rules at window boundaries; collects alerts."""

    enabled = True

    def __init__(self, env, store: TimeSeriesStore,
                 rules: typing.Sequence[Rule] = ()):
        self.env = env
        self.store = store
        self.rules = tuple(rules)
        self.alerts: list[Alert] = []
        self.windows_evaluated = 0
        self._state: dict[tuple, _RuleState] = {}
        store.add_listener(self.on_window_sealed)

    # ------------------------------------------------------------------
    def on_window_sealed(self, window: int, store: TimeSeriesStore) -> None:
        self.windows_evaluated += 1
        for rule in self.rules:
            if rule.kind == "ratio_above":
                self._eval_ratio(rule, window)
                continue
            for series in store.series_named(rule.series):
                if rule.kind == "silent":
                    self._eval_silent(rule, series, window)
                elif rule.kind == "stalled":
                    self._eval_stalled(rule, series, window)
                else:
                    self._eval_threshold(rule, series, window)

    # ------------------------------------------------------------------
    def _state_for(self, rule: Rule, labels: tuple) -> _RuleState:
        key = (rule.name, labels)
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = _RuleState()
        return state

    def _eval_threshold(self, rule: Rule, series: Series, window: int) -> None:
        value = series.value_in(window)
        if value is None:
            return  # no data this window; threshold rules need a sample
        if rule.kind == "above":
            bad = value > rule.threshold
        else:
            bad = value < rule.threshold
        self._step(rule, series.labels, window, bad, float(value), series.name)

    def _eval_silent(self, rule: Rule, series: Series, window: int) -> None:
        if series.last_window < 0:
            return  # never reported at all: nothing to watch yet
        state = self._state_for(rule, series.labels)
        silent_for = window - series.last_window
        if silent_for < rule.for_windows:
            state.firing = False  # healthy (or not yet silent long enough)
            return
        if not state.firing:
            state.firing = True
            self._fire(rule, series.name, series.labels, window,
                       float(silent_for))

    def _eval_stalled(self, rule: Rule, series: Series, window: int) -> None:
        value = series.value_in(window)
        state = self._state_for(rule, series.labels)
        if value is None:
            return  # silence is the watchdog's business, not the stall rule's
        progressed = state.last_value is None or value > state.last_value
        state.last_value = value
        if not progressed and rule.activity is not None:
            active = any(
                (activity.value_in(window) or 0) > 0
                for activity in self.store.series_named(rule.activity))
            if not active:
                return  # idle-and-flat: neither stall evidence nor recovery
        self._step(rule, series.labels, window, bad=not progressed,
                   value=float(value), series_name=series.name)

    def _eval_ratio(self, rule: Rule, window: int) -> None:
        numerator = sum(
            series.value_in(window) or 0
            for series in self.store.series_named(rule.series))
        denominator = numerator + sum(
            series.value_in(window) or 0
            for series in self.store.series_named(rule.denominator or ""))
        if denominator < max(1, rule.min_total):
            return
        ratio = numerator / denominator
        self._step(rule, (), window, bad=(ratio > rule.threshold),
                   value=ratio, series_name=rule.series)

    def _step(self, rule: Rule, labels: tuple, window: int, bad: bool,
              value: float, series_name: str) -> None:
        """Shared consecutive-window / fire-on-entry / re-arm logic."""
        state = self._state_for(rule, labels)
        if not bad:
            state.bad_streak = 0
            state.firing = False
            return
        state.bad_streak += 1
        if state.bad_streak >= rule.for_windows and not state.firing:
            state.firing = True
            self._fire(rule, series_name, labels, window, value)

    def _fire(self, rule: Rule, series_name: str, labels: tuple,
              window: int, value: float) -> None:
        start_ns, end_ns = self.store.window_bounds(window)
        alert = Alert(rule=rule.name, severity=rule.severity,
                      series=series_name, labels=labels, window=window,
                      window_start_ns=start_ns, window_end_ns=end_ns,
                      value=value, threshold=rule.threshold)
        self.alerts.append(alert)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete(
                "alert", rule.name, start_ns, end_ns, track="monitor",
                severity=rule.severity, series=series_name,
                labels=",".join(f"{k}={v}" for k, v in labels),
                window=window, value=value, threshold=rule.threshold)

    # ------------------------------------------------------------------
    def alerts_with(self, rule: str | None = None,
                    severity: str | None = None) -> list[Alert]:
        return [alert for alert in self.alerts
                if (rule is None or alert.rule == rule)
                and (severity is None or alert.severity == severity)]

    def digest(self) -> str:
        return alerts_digest(self.alerts)

    def snapshot(self) -> dict:
        return {
            "rules": [rule.name for rule in self.rules],
            "windows_evaluated": self.windows_evaluated,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "alerts_digest": self.digest(),
        }


class NullMonitor:
    """The default ``env.monitor``: no rules, no alerts."""

    enabled = False
    rules: tuple = ()
    alerts: list = []
    windows_evaluated = 0

    def alerts_with(self, rule: str | None = None,
                    severity: str | None = None) -> list:
        return []

    def digest(self) -> str:
        return alerts_digest(())

    def snapshot(self) -> dict:
        return {"rules": [], "windows_evaluated": 0, "alerts": [],
                "alerts_digest": self.digest()}


#: Shared default monitor.
NULL_MONITOR = NullMonitor()
