"""Windowed sim-time series: the sampling layer of the telemetry pipeline.

A :class:`TimeSeriesStore` folds instrumentation samples into fixed-width
windows of *simulated* time. Window ``k`` covers
``[k * window_ns, (k + 1) * window_ns)``; a sample recorded at sim time
``t`` lands in window ``t // window_ns``, so an event exactly on a window
boundary belongs to the *later* window (half-open intervals, no
double-counting).

Like the rest of ``repro.obs``, the store is passive: it never schedules
simulation events and never reads wall clocks. There is no sampler
process — windows *seal lazily*: whenever a sample lands in a later window
than any seen before, every window in between is sealed in order and the
registered listeners (the monitor engine) are invoked per sealed window.
Because samples arrive in deterministic simulation order, sealing — and
therefore every alert a monitor emits — is deterministic too.

Memory is bounded by a ring: each series keeps at most ``capacity``
windows; older windows are evicted as the frontier advances, and samples
aimed below the ring (possible only for out-of-order ``record_at`` calls,
since sim time is monotonic) are counted in ``dropped`` instead of stored.

Series kinds:

- **gauge** — per window: last/min/max sampled value and the sample count
  (replica lag, RCP, staleness, skyline size);
- **counter** — per window: the sum of increments, i.e. the window delta
  (commits, aborts, shipped bytes, failover phase marks).
"""

from __future__ import annotations

import typing

#: Default window width: 50 simulated milliseconds.
DEFAULT_WINDOW_NS = 50_000_000

#: Default ring capacity (windows kept per series).
DEFAULT_CAPACITY = 256

GAUGE = "gauge"
COUNTER = "counter"


class Window:
    """Aggregates of one series over one window."""

    __slots__ = ("index", "last", "min", "max", "count")

    def __init__(self, index: int, value) -> None:
        self.index = index
        self.last = value
        self.min = value
        self.max = value
        self.count = 1

    def add_gauge(self, value) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1

    def add_delta(self, amount) -> None:
        self.last += amount
        self.count += 1

    def to_list(self) -> list:
        """Compact JSON form: ``[index, last, min, max, count]``."""
        return [self.index, self.last, self.min, self.max, self.count]


class Series:
    """One named, labelled stream of windowed aggregates."""

    __slots__ = ("name", "labels", "kind", "windows", "last_window", "dropped")

    def __init__(self, name: str, labels: tuple, kind: str):
        self.name = name
        self.labels = labels  # tuple of sorted (key, value) pairs
        self.kind = kind
        self.windows: dict[int, Window] = {}
        self.last_window = -1  # newest window this series has data in
        self.dropped = 0

    def record(self, window: int, value, floor: int) -> None:
        """Fold ``value`` into ``window``; evict below ``floor``."""
        if window < floor:
            self.dropped += 1
            return
        existing = self.windows.get(window)
        if existing is None:
            self.windows[window] = Window(window, value)
            if window > self.last_window:
                self.last_window = window
                if len(self.windows) > 1:
                    for index in [i for i in self.windows if i < floor]:
                        del self.windows[index]
        elif self.kind == COUNTER:
            existing.add_delta(value)
        else:
            existing.add_gauge(value)

    # ------------------------------------------------------------------
    def window(self, index: int) -> Window | None:
        return self.windows.get(index)

    def value_in(self, index: int):
        """The window's headline value: last (gauge) / delta sum (counter).
        ``None`` when the series has no data in that window."""
        window = self.windows.get(index)
        return None if window is None else window.last

    def nonempty_windows(self) -> list[int]:
        return sorted(self.windows)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "kind": self.kind,
            "dropped": self.dropped,
            "windows": [self.windows[i].to_list()
                        for i in sorted(self.windows)],
        }


class TimeSeriesStore:
    """Sim-clock-driven windowed sampler (see module docstring)."""

    enabled = True

    def __init__(self, env, window_ns: int = DEFAULT_WINDOW_NS,
                 capacity: int = DEFAULT_CAPACITY):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.env = env
        self.window_ns = window_ns
        self.capacity = capacity
        self._series: dict[tuple, Series] = {}
        #: Newest window any sample has landed in; every window strictly
        #: below it is sealed.
        self.frontier = 0
        self._listeners: list[typing.Callable[[int, "TimeSeriesStore"], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def window_index(self, at_ns: int) -> int:
        return at_ns // self.window_ns

    def window_bounds(self, index: int) -> tuple[int, int]:
        return index * self.window_ns, (index + 1) * self.window_ns

    def _get(self, name: str, labels: dict, kind: str) -> Series:
        key = (name, tuple(sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Series(name, key[1], kind)
        return series

    def gauge(self, name: str, value, **labels) -> None:
        """Record a gauge sample at the current sim time."""
        self.record_at(self.env.now, name, value, GAUGE, labels)

    def counter(self, name: str, amount=1, **labels) -> None:
        """Add to a counter series in the current window."""
        self.record_at(self.env.now, name, amount, COUNTER, labels)

    def mark(self, name: str, **labels) -> None:
        """Record a discrete event (e.g. a failover phase transition)."""
        self.record_at(self.env.now, name, 1, COUNTER, labels)

    def record_at(self, at_ns: int, name: str, value, kind: str,
                  labels: dict) -> None:
        """Fold one sample at an explicit sim time (unit tests drive this
        directly; live instrumentation goes through gauge/counter/mark)."""
        window = at_ns // self.window_ns
        if window > self.frontier:
            self._advance(window)
        series = self._get(name, labels, kind)
        series.record(window, value, self.frontier - self.capacity + 1)

    def _advance(self, window: int) -> None:
        """Seal every window in ``[frontier, window)`` in order."""
        listeners = self._listeners
        for sealed in range(self.frontier, window):
            self.frontier = sealed + 1
            for listener in listeners:
                listener(sealed, self)

    def catch_up(self) -> None:
        """Seal every window that has fully elapsed at the current sim
        time (call after a run quiesces so trailing windows are evaluated
        by the monitors even though no later sample arrived)."""
        self._advance(self.env.now // self.window_ns)

    def add_listener(self, listener) -> None:
        """Register ``listener(sealed_window_index, store)``; called once
        per sealed window, in window order."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def series(self, name: str, **labels) -> Series | None:
        return self._series.get((name, tuple(sorted(labels.items()))))

    def series_named(self, name: str) -> list[Series]:
        """Every labelled series with ``name``, in stable (label) order."""
        return [series for key, series in sorted(self._series.items())
                if key[0] == name]

    def all_series(self) -> list[Series]:
        return [series for _key, series in sorted(self._series.items())]

    @property
    def dropped(self) -> int:
        return sum(series.dropped for series in self._series.values())

    def snapshot(self) -> dict:
        """JSON-serializable dump of every series (sorted, so the dump —
        and anything hashed from it — is independent of insertion order)."""
        return {
            "window_ns": self.window_ns,
            "capacity": self.capacity,
            "frontier": self.frontier,
            "dropped": self.dropped,
            "series": [series.to_dict() for series in self.all_series()],
        }


class NullTimeSeries:
    """The default ``env.series``: every call is a no-op."""

    enabled = False
    window_ns = DEFAULT_WINDOW_NS
    frontier = 0
    dropped = 0

    def gauge(self, name: str, value, **labels) -> None:
        pass

    def counter(self, name: str, amount=1, **labels) -> None:
        pass

    def mark(self, name: str, **labels) -> None:
        pass

    def record_at(self, at_ns: int, name: str, value, kind: str,
                  labels: dict) -> None:
        pass

    def catch_up(self) -> None:
        pass

    def add_listener(self, listener) -> None:
        pass

    def series(self, name: str, **labels) -> None:
        return None

    def series_named(self, name: str) -> list:
        return []

    def all_series(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"window_ns": self.window_ns, "capacity": 0, "frontier": 0,
                "dropped": 0, "series": []}


#: Shared default store (stateless, so one instance serves everyone).
NULL_TIMESERIES = NullTimeSeries()
