"""Sim-native observability: metrics, transaction tracing, run reports.

The layer is **determinism-preserving** by construction: instruments and
spans only *record* — they never schedule simulation events, never consult
wall clocks, and never alter control flow. Every timestamp is
``Environment.now``. A run with observability enabled therefore produces a
byte-identical event history to the same run without it
(``tests/test_determinism.py`` proves this).

Quickstart::

    from repro import ClusterConfig, build_cluster, three_city

    config = ClusterConfig.globaldb(three_city(),
                                    metrics_enabled=True, trace_enabled=True)
    db = build_cluster(config)
    result = run_workload(db, workload, terminals=60, duration_s=1.0)

    report = RunReport.capture(db, result)
    print(report.render())                      # latency breakdown tables
    db.env.tracer.to_jsonl("run.trace.jsonl")   # lossless span log
    db.env.tracer.write_chrome_trace("run.trace.json")  # chrome://tracing

Convert / summarize trace files offline with ``python -m repro.obs``.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_dict,
    read_jsonl,
    trace_digest,
    write_jsonl,
)
from repro.obs.report import RunReport


def enable_observability(env, metrics: bool = True, trace: bool = True,
                         max_spans: int | None = 500_000):
    """Attach live metrics/tracing to an environment (before building the
    cluster, so construction-time instruments register too)."""
    if metrics:
        env.metrics = MetricsRegistry(env)
    if trace:
        env.tracer = Tracer(env, max_spans=max_spans)
    # Keep the kernel's single-load instrumentation guards in sync
    # (see Environment.__init__): hot paths read these instead of
    # ``env.metrics.enabled`` / ``env.tracer.enabled``.
    env.metrics_on = env.metrics.enabled
    env.trace_on = env.tracer.enabled
    return env.metrics, env.tracer


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS_NS",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunReport",
    "chrome_trace_dict",
    "read_jsonl",
    "trace_digest",
    "write_jsonl",
    "enable_observability",
]
