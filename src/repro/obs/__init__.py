"""Sim-native observability: metrics, transaction tracing, run reports.

The layer is **determinism-preserving** by construction: instruments and
spans only *record* — they never schedule simulation events, never consult
wall clocks, and never alter control flow. Every timestamp is
``Environment.now``. A run with observability enabled therefore produces a
byte-identical event history to the same run without it
(``tests/test_determinism.py`` proves this).

Quickstart::

    from repro import ClusterConfig, build_cluster, three_city

    config = ClusterConfig.globaldb(three_city(),
                                    metrics_enabled=True, trace_enabled=True)
    db = build_cluster(config)
    result = run_workload(db, workload, terminals=60, duration_s=1.0)

    report = RunReport.capture(db, result)
    print(report.render())                      # latency breakdown tables
    db.env.tracer.to_jsonl("run.trace.jsonl")   # lossless span log
    db.env.tracer.write_chrome_trace("run.trace.json")  # chrome://tracing

Convert / summarize trace files offline with ``python -m repro.obs``.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_dict,
    read_jsonl,
    trace_digest,
    window_categories,
    write_jsonl,
)
from repro.obs.timeseries import (
    DEFAULT_WINDOW_NS,
    NULL_TIMESERIES,
    NullTimeSeries,
    TimeSeriesStore,
)
from repro.obs.monitor import (
    NULL_MONITOR,
    Alert,
    MonitorEngine,
    NullMonitor,
    Rule,
    alerts_digest,
    default_monitor_rules,
)
from repro.obs.critpath import CriticalPathReport, TxnPath, analyze
from repro.obs.dashboard import Dashboard
from repro.obs.report import RunReport


def enable_observability(env, metrics: bool = True, trace: bool = True,
                         max_spans: int | None = 500_000,
                         timeseries: bool = False,
                         window_ns: int = DEFAULT_WINDOW_NS,
                         capacity: int = 256,
                         monitor_rules=None):
    """Attach live metrics/tracing/telemetry to an environment (before
    building the cluster, so construction-time instruments register too).

    ``timeseries=True`` turns on the windowed sampler; ``monitor_rules``
    (a sequence of :class:`Rule`, e.g. :func:`default_monitor_rules`)
    additionally attaches an online monitor engine to its window seals.
    """
    if metrics:
        env.metrics = MetricsRegistry(env)
    if trace:
        env.tracer = Tracer(env, max_spans=max_spans)
    if timeseries:
        env.series = TimeSeriesStore(env, window_ns=window_ns,
                                     capacity=capacity)
        if monitor_rules:
            env.monitor = MonitorEngine(env, env.series, monitor_rules)
    # Keep the kernel's single-load instrumentation guards in sync
    # (see Environment.__init__): hot paths read these instead of
    # ``env.metrics.enabled`` / ``env.tracer.enabled``.
    env.metrics_on = env.metrics.enabled
    env.trace_on = env.tracer.enabled
    env.series_on = env.series.enabled
    env.rebind_hooks()
    return env.metrics, env.tracer


def telemetry_snapshot(env) -> dict:
    """The JSON document ``repro.obs dash`` consumes: the time-series dump
    plus the monitor's alert stream. Call after ``env.series.catch_up()``
    so trailing windows are sealed and evaluated."""
    return {
        "timeseries": env.series.snapshot(),
        "monitor": env.monitor.snapshot(),
    }


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS_NS",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunReport",
    "chrome_trace_dict",
    "read_jsonl",
    "trace_digest",
    "window_categories",
    "write_jsonl",
    "enable_observability",
    "telemetry_snapshot",
    "TimeSeriesStore",
    "NullTimeSeries",
    "NULL_TIMESERIES",
    "DEFAULT_WINDOW_NS",
    "Rule",
    "Alert",
    "MonitorEngine",
    "NullMonitor",
    "NULL_MONITOR",
    "alerts_digest",
    "default_monitor_rules",
    "CriticalPathReport",
    "TxnPath",
    "analyze",
    "Dashboard",
]
