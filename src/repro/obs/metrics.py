"""Metric instruments: counters, gauges, and fixed-bucket histograms.

All instruments are *sim-time-native*: they never consult wall clocks and
never schedule simulation events, so enabling metrics cannot perturb a
deterministic run. Timestamps (gauge update times, window boundaries) come
from the owning :class:`~repro.sim.core.Environment`'s ``now`` when a
registry is bound to one.

Two registries exist:

- :class:`MetricsRegistry` — the real thing: instruments are created on
  first use, cached by ``(kind, name, labels)``, and appear in
  :meth:`~MetricsRegistry.snapshot` / windowed snapshots.
- :class:`NullRegistry` — the default on every ``Environment``: every
  lookup returns a shared no-op instrument, so instrumented hot paths cost
  one attribute check (``registry.enabled``) when observability is off.

Instruments are also usable standalone (``Counter()``, ``Histogram()``)
for stats objects that must keep counting even when the global registry is
disabled — see :class:`repro.txn.provider.TimestampStats`.
"""

from __future__ import annotations

import typing

#: Default latency buckets: 1 us .. 10 s in a 1-2-5 progression, in ns.
LATENCY_BUCKETS_NS: tuple[int, ...] = tuple(
    base * scale
    for scale in (1_000, 1_000_000, 1_000_000_000)
    for base in (1, 2, 5, 10, 20, 50, 100, 200, 500)
    if base * scale <= 10_000_000_000
)

#: Default size buckets (records, bytes): 1 .. 1M in powers of four.
SIZE_BUCKETS: tuple[int, ...] = tuple(4 ** exp for exp in range(11))


class Counter:
    """A monotonically increasing count (messages, round trips, bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (backlog depth, replica lag, RCP)."""

    __slots__ = ("value", "updated_at", "max_value")

    def __init__(self) -> None:
        self.value = 0
        self.updated_at = 0
        self.max_value = 0

    def set(self, value, now: int = 0) -> None:
        self.value = value
        self.updated_at = now
        if value > self.max_value:
            self.max_value = value


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in a +Inf overflow bucket. Percentiles are estimated by linear
    interpolation within the containing bucket (clamped to the observed
    min/max so tiny samples do not report absurd bounds).
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: typing.Sequence[int] = LATENCY_BUCKETS_NS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1: overflow
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimated value at percentile ``pct`` (0-100)."""
        if not self.count:
            return 0.0
        target = pct / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = self.buckets[index - 1] if index > 0 else 0
                upper = (self.buckets[index] if index < len(self.buckets)
                         else (self.max or lower))
                fraction = ((target - previous) / bucket_count
                            if bucket_count else 0.0)
                estimate = lower + (upper - lower) * fraction
                low = self.min if self.min is not None else estimate
                high = self.max if self.max is not None else estimate
                return min(max(estimate, low), high)
        return float(self.max or 0)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` pairs; the final bound is +Inf."""
        bounds = list(self.buckets) + [float("inf")]
        return list(zip(bounds, self.counts))


class MetricsRegistry:
    """Creates, caches, and snapshots instruments.

    Instruments are identified by ``(name, labels)``; asking twice returns
    the same object. ``labels`` keep cardinality sane: use node/link/op
    names, never per-transaction values.
    """

    enabled = True

    def __init__(self, env=None):
        self.env = env
        self._instruments: dict[tuple, typing.Any] = {}
        self._window_started_at = self._now()
        self._window_base: dict[tuple, tuple] = {}

    def _now(self) -> int:
        return self.env.now if self.env is not None else 0

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: typing.Sequence[int] = LATENCY_BUCKETS_NS,
                  **labels) -> Histogram:
        return self._get("hist", name, labels, lambda: Histogram(buckets))

    def set_gauge(self, name: str, value, **labels) -> None:
        """Convenience: set a gauge stamped with the current sim time."""
        self.gauge(name, **labels).set(value, self._now())

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """Every instrument's current state, JSON-serializable."""
        rows = []
        for (kind, name, labels), instrument in sorted(
                self._instruments.items(), key=lambda item: item[0][:2]):
            row: dict[str, typing.Any] = {
                "name": name, "type": kind, "labels": dict(labels)}
            if kind == "counter":
                row["value"] = instrument.value
            elif kind == "gauge":
                row["value"] = instrument.value
                row["max"] = instrument.max_value
                row["updated_at"] = instrument.updated_at
            else:
                row.update(count=instrument.count, sum=instrument.sum,
                           min=instrument.min, max=instrument.max,
                           mean=instrument.mean,
                           p50=instrument.percentile(50),
                           p95=instrument.percentile(95),
                           p99=instrument.percentile(99))
            rows.append(row)
        return rows

    def begin_window(self) -> None:
        """Mark the start of a reporting window (e.g. after warmup)."""
        self._window_started_at = self._now()
        self._window_base = {}
        for key, instrument in self._instruments.items():
            if key[0] == "counter":
                self._window_base[key] = (instrument.value,)
            elif key[0] == "hist":
                self._window_base[key] = (instrument.count, instrument.sum)

    def window_snapshot(self) -> dict:
        """Counter/histogram deltas since :meth:`begin_window`, plus rates.

        Instruments created after the window opened count from zero.
        """
        now = self._now()
        window_ns = now - self._window_started_at
        rows = []
        for (kind, name, labels), instrument in sorted(
                self._instruments.items(), key=lambda item: item[0][:2]):
            if kind == "gauge":
                continue
            base = self._window_base.get((kind, name, labels))
            row: dict[str, typing.Any] = {
                "name": name, "type": kind, "labels": dict(labels)}
            if kind == "counter":
                delta = instrument.value - (base[0] if base else 0)
                row["delta"] = delta
                row["per_second"] = (delta / (window_ns / 1e9)
                                     if window_ns > 0 else 0.0)
            else:
                base_count, base_sum = base if base else (0, 0)
                row["delta_count"] = instrument.count - base_count
                row["delta_sum"] = instrument.sum - base_sum
            rows.append(row)
        return {"window_ns": window_ns, "instruments": rows}


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value, now: int = 0) -> None:
        pass

    def record(self, value) -> None:
        pass

    def percentile(self, pct: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default ``env.metrics``: everything is a shared no-op.

    Hot paths should guard label construction with ``registry.enabled``;
    unguarded calls still work, they just do nothing.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def set_gauge(self, name: str, value, **labels) -> None:
        pass

    def snapshot(self) -> list:
        return []

    def begin_window(self) -> None:
        pass

    def window_snapshot(self) -> dict:
        return {"window_ns": 0, "instruments": []}


#: Shared default registry: one instance is enough, it holds no state.
NULL_REGISTRY = NullRegistry()
