"""MVCC snapshots.

Visibility is purely timestamp-based (as in both GTM and GClock modes of the
paper): a version is visible to a snapshot if its creating transaction
committed with ``commit_ts <= read_ts`` and it was not deleted by a
transaction that also committed with ``commit_ts <= read_ts``. A
transaction always sees its own uncommitted writes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Snapshot:
    """A point-in-time view of the database.

    ``read_ts`` orders against commit timestamps; ``txid`` (when reading
    inside a transaction) enables own-write visibility.
    """

    read_ts: int
    txid: int | None = None

    def with_txid(self, txid: int) -> "Snapshot":
        return Snapshot(self.read_ts, txid)
