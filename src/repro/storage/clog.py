"""Commit log (clog): the authoritative record of transaction outcomes.

MVCC tuple versions carry only the writing transaction id; visibility is
resolved by looking the id up here. A transaction is in exactly one state:

    IN_PROGRESS -> PREPARED -> COMMITTED(commit_ts) | ABORTED
                \\--------------^

Commit timestamps, not ids, order transactions: ids are just handles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TransactionError


class TxnStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class TxnRecord:
    status: TxnStatus
    commit_ts: int | None = None


class CommitLog:
    """Maps transaction id -> outcome.

    ``_commit_ts`` mirrors the committed subset as a flat ``txid ->
    commit_ts`` table so the visibility hot path
    (:meth:`is_committed_before`, called per version per read) is a single
    dict probe instead of a record lookup + status comparison. A commit is
    final — abort-after-commit raises — so entries never need updating,
    only insertion (commit) and removal (vacuum pruning / rebuild)."""

    def __init__(self):
        self._records: dict[int, TxnRecord] = {}
        self._commit_ts: dict[int, int] = {}

    def begin(self, txid: int) -> None:
        if txid in self._records:
            raise TransactionError(f"transaction {txid} already exists in clog")
        self._records[txid] = TxnRecord(TxnStatus.IN_PROGRESS)

    def ensure(self, txid: int) -> None:
        """Register ``txid`` as in-progress if unseen (replica replay path,
        where data records may arrive before any explicit begin)."""
        if txid not in self._records:
            self._records[txid] = TxnRecord(TxnStatus.IN_PROGRESS)

    def status(self, txid: int) -> TxnStatus:
        record = self._records.get(txid)
        if record is None:
            raise TransactionError(f"unknown transaction {txid}")
        return record.status

    def known(self, txid: int) -> bool:
        return txid in self._records

    def prepare(self, txid: int) -> None:
        record = self._records.get(txid)
        if record is None or record.status is not TxnStatus.IN_PROGRESS:
            raise TransactionError(f"cannot prepare transaction {txid}")
        record.status = TxnStatus.PREPARED

    def commit(self, txid: int, commit_ts: int) -> None:
        record = self._records.get(txid)
        if record is None:
            raise TransactionError(f"cannot commit unknown transaction {txid}")
        if record.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            raise TransactionError(
                f"transaction {txid} already finished ({record.status.value})")
        record.status = TxnStatus.COMMITTED
        record.commit_ts = commit_ts
        self._commit_ts[txid] = commit_ts

    def abort(self, txid: int) -> None:
        record = self._records.get(txid)
        if record is None:
            raise TransactionError(f"cannot abort unknown transaction {txid}")
        if record.status is TxnStatus.COMMITTED:
            raise TransactionError(f"transaction {txid} already committed")
        record.status = TxnStatus.ABORTED
        record.commit_ts = None

    def commit_ts(self, txid: int) -> int | None:
        """The commit timestamp, or None if not committed."""
        return self._commit_ts.get(txid)

    def is_committed_before(self, txid: int, read_ts: int) -> bool:
        """True if ``txid`` committed with a timestamp <= ``read_ts``."""
        ts = self._commit_ts.get(txid)
        return ts is not None and ts <= read_ts

    def rebuild_cache(self) -> None:
        """Recompute the commit-ts table after ``_records`` was replaced
        wholesale (replica rebuild from a primary's clog snapshot)."""
        self._commit_ts = {
            txid: record.commit_ts for txid, record in self._records.items()
            if record.status is TxnStatus.COMMITTED
            and record.commit_ts is not None
        }
