"""Commit log (clog): the authoritative record of transaction outcomes.

MVCC tuple versions carry only the writing transaction id; visibility is
resolved by looking the id up here. A transaction is in exactly one state:

    IN_PROGRESS -> PREPARED -> COMMITTED(commit_ts) | ABORTED
                \\--------------^

Commit timestamps, not ids, order transactions: ids are just handles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TransactionError


class TxnStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxnRecord:
    status: TxnStatus
    commit_ts: int | None = None


class CommitLog:
    """Maps transaction id -> outcome."""

    def __init__(self):
        self._records: dict[int, TxnRecord] = {}

    def begin(self, txid: int) -> None:
        if txid in self._records:
            raise TransactionError(f"transaction {txid} already exists in clog")
        self._records[txid] = TxnRecord(TxnStatus.IN_PROGRESS)

    def ensure(self, txid: int) -> None:
        """Register ``txid`` as in-progress if unseen (replica replay path,
        where data records may arrive before any explicit begin)."""
        if txid not in self._records:
            self._records[txid] = TxnRecord(TxnStatus.IN_PROGRESS)

    def status(self, txid: int) -> TxnStatus:
        record = self._records.get(txid)
        if record is None:
            raise TransactionError(f"unknown transaction {txid}")
        return record.status

    def known(self, txid: int) -> bool:
        return txid in self._records

    def prepare(self, txid: int) -> None:
        record = self._records.get(txid)
        if record is None or record.status is not TxnStatus.IN_PROGRESS:
            raise TransactionError(f"cannot prepare transaction {txid}")
        record.status = TxnStatus.PREPARED

    def commit(self, txid: int, commit_ts: int) -> None:
        record = self._records.get(txid)
        if record is None:
            raise TransactionError(f"cannot commit unknown transaction {txid}")
        if record.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            raise TransactionError(
                f"transaction {txid} already finished ({record.status.value})")
        record.status = TxnStatus.COMMITTED
        record.commit_ts = commit_ts

    def abort(self, txid: int) -> None:
        record = self._records.get(txid)
        if record is None:
            raise TransactionError(f"cannot abort unknown transaction {txid}")
        if record.status is TxnStatus.COMMITTED:
            raise TransactionError(f"transaction {txid} already committed")
        record.status = TxnStatus.ABORTED
        record.commit_ts = None

    def commit_ts(self, txid: int) -> int | None:
        """The commit timestamp, or None if not committed."""
        record = self._records.get(txid)
        if record is None or record.status is not TxnStatus.COMMITTED:
            return None
        return record.commit_ts

    def is_committed_before(self, txid: int, read_ts: int) -> bool:
        """True if ``txid`` committed with a timestamp <= ``read_ts``."""
        record = self._records.get(txid)
        return (record is not None
                and record.status is TxnStatus.COMMITTED
                and record.commit_ts is not None
                and record.commit_ts <= read_ts)
