"""MVCC garbage collection (vacuum).

Version chains and the commit log grow with every update; long-running
clusters need dead-version reclamation. The vacuum rule, for a *horizon*
timestamp below which no new snapshot will ever read again:

- per key, keep the newest version whose creator committed at or below the
  horizon (it is what any snapshot >= horizon still sees under the chain's
  committed prefix), plus everything newer and everything not yet
  resolved; drop the older tail;
- if that horizon-visible version was itself deleted at or below the
  horizon, the whole tail below the deletion is dead;
- surviving versions whose creator committed at or below the horizon are
  *frozen* (``xmin`` rewritten to the bulk-load id 0), detaching them from
  the commit log so that committed/aborted clog entries at or below the
  horizon can be pruned.

Primaries vacuum against ``last_commit_ts - retention``; replicas against
their applied frontier minus the same retention, which keeps every
snapshot the RCP can still hand out readable. Reads below the horizon are
the caller's responsibility (the classic "snapshot too old" contract).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.storage.clog import CommitLog, TxnStatus
from repro.storage.heap import HeapTable


@dataclass
class VacuumStats:
    """Result of one vacuum pass."""

    versions_removed: int = 0
    versions_frozen: int = 0
    clog_pruned: int = 0

    def merge(self, other: "VacuumStats") -> None:
        self.versions_removed += other.versions_removed
        self.versions_frozen += other.versions_frozen
        self.clog_pruned += other.clog_pruned


def _commit_ts_of(clog: CommitLog, txid: int) -> int | None:
    """Commit timestamp of ``txid``; 1 for the frozen bulk-load id."""
    if txid == 0:
        return 1
    return clog.commit_ts(txid)


def vacuum_heap(heap: HeapTable, clog: CommitLog, horizon: int) -> VacuumStats:
    """Vacuum one table. Safe against in-flight transactions: versions
    whose creator or deleter is unresolved are always retained."""
    stats = VacuumStats()
    for key in list(heap.keys()):
        chain = heap.versions(key)
        keep_through = None  # index of the horizon-visible version
        for index, version in enumerate(chain):
            created = _commit_ts_of(clog, version.xmin)
            if created is not None and created <= horizon:
                keep_through = index
                break
        if keep_through is None:
            continue  # every version is above the horizon or unresolved
        anchor = chain[keep_through]
        # Is the anchor itself dead (deleted at or below the horizon)?
        anchor_dead = False
        if anchor.xmax is not None:
            ended = _commit_ts_of(clog, anchor.xmax)
            anchor_dead = ended is not None and ended <= horizon
        first_drop = keep_through if anchor_dead else keep_through + 1
        doomed = chain[first_drop:]
        for version in doomed:
            heap.remove_version(version)
            stats.versions_removed += 1
        # Freeze survivors that committed at or below the horizon so their
        # clog entries become prunable.
        for version in heap.versions(key):
            if version.xmin != 0:
                created = _commit_ts_of(clog, version.xmin)
                if created is not None and created <= horizon:
                    version.xmin = 0
                    stats.versions_frozen += 1
    return stats


def prune_clog(clog: CommitLog, horizon: int) -> int:
    """Drop resolved commit-log entries no frozen/removed version needs:
    committed at or below the horizon, or aborted (aborted effects are
    physically undone at abort time, so nothing references them)."""
    doomed = []
    for txid, record in clog._records.items():
        if txid == 0:
            continue  # the bulk-load/frozen id stays
        if record.status is TxnStatus.ABORTED:
            doomed.append(txid)
        elif (record.status is TxnStatus.COMMITTED
                and record.commit_ts is not None
                and record.commit_ts <= horizon):
            doomed.append(txid)
    for txid in doomed:
        del clog._records[txid]
        clog._commit_ts.pop(txid, None)
    return len(doomed)


def vacuum_tables(tables: typing.Mapping[str, HeapTable], clog: CommitLog,
                  horizon: int) -> VacuumStats:
    """Vacuum every table then prune the commit log."""
    stats = VacuumStats()
    if horizon <= 1:
        return stats
    # Frozen versions carry xmin=0: make sure the commit log resolves it
    # (engines that never bulk-loaded have no entry for it yet).
    clog.ensure(0)
    if clog.status(0) is not TxnStatus.COMMITTED:
        clog.commit(0, 1)
    for heap in tables.values():
        stats.merge(vacuum_heap(heap, clog, horizon))
    stats.clog_pruned = prune_clog(clog, horizon)
    return stats
