"""Per-row write locks with FIFO wait queues.

Writers lock a row before modifying it and hold the lock until commit or
abort, as in GaussDB. Waiting is a simulation event; a configurable timeout
aborts the waiter (this also breaks deadlocks, which the TPC-C access
patterns make rare but not impossible).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import WriteConflict
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.units import seconds


@dataclass
class _LockState:
    holder: int
    waiters: deque = field(default_factory=deque)  # of (txid, Event)


class LockTable:
    """Row-granularity exclusive locks for one shard."""

    def __init__(self, env: Environment, default_timeout_ns: int = seconds(1)):
        self.env = env
        self.default_timeout_ns = default_timeout_ns
        self._locks: dict[tuple, _LockState] = {}
        self._held: dict[int, set] = {}  # txid -> set of lock keys
        self.wait_count = 0
        #: Aborts from plain lock-wait timeouts (no cycle at expiry).
        self.timeout_count = 0
        #: Aborts that broke a deadlock: sanitizer cycle detection at wait
        #: time, or a timeout whose waiter was part of a wait-for cycle.
        self.deadlock_count = 0

    def acquire(self, txid: int, table: str, key: tuple,
                timeout_ns: int | None = None) -> Event:
        """Request the lock. The returned event fires with ``True`` once the
        lock is held, or fails with :class:`WriteConflict` on timeout.

        Re-entrant: a transaction acquiring a lock it already holds
        succeeds immediately.
        """
        lock_key = (table, key)
        env = self.env
        done = Event(env)
        state = self._locks.get(lock_key)
        san = env.san
        if state is None:
            self._locks[lock_key] = _LockState(holder=txid)
            self._held.setdefault(txid, set()).add(lock_key)
            if san is not None:
                san.on_lock_granted(self, txid, lock_key)
            done.succeed(True)
            return done
        if state.holder == txid:
            done.succeed(True)
            return done
        if san is not None:
            cycle = san.on_lock_wait(self, txid, lock_key)
            if cycle is not None:
                # Waiting would close a wait-for cycle: abort this
                # requester now instead of letting the cycle stall until
                # a timeout breaks it blindly.
                self.deadlock_count += 1
                if env.series_on:
                    env.series.counter("lock.deadlocks", 1)
                done.fail(WriteConflict(f"deadlock detected: {cycle}"))
                return done
        self.wait_count += 1
        state.waiters.append((txid, done))
        self._arm_timeout(done, lock_key, txid,
                          timeout_ns if timeout_ns is not None else self.default_timeout_ns)
        return done

    def _arm_timeout(self, done: Event, lock_key: tuple, txid: int,
                     timeout_ns: int) -> None:
        timer = self.env.timeout(timeout_ns)

        def on_timer(_ev: Event) -> None:
            if done.triggered:
                return
            state = self._locks.get(lock_key)
            if state is not None:
                state.waiters = deque(
                    (waiting_txid, event) for waiting_txid, event in state.waiters
                    if event is not done)
            env = self.env
            san = env.san
            if san is not None:
                san.on_lock_wait_aborted(self, txid)
            # Classify the abort: a timeout whose waiter sat on a wait-for
            # cycle was really a deadlock the timeout happened to break.
            if self._part_of_cycle(txid, lock_key):
                self.deadlock_count += 1
                if env.series_on:
                    env.series.counter("lock.deadlocks", 1)
            else:
                self.timeout_count += 1
                if env.series_on:
                    env.series.counter("lock.timeouts", 1)
            done.fail(WriteConflict(
                f"lock wait timeout on {lock_key[0]}{lock_key[1]} (txn {txid})"))

        timer.add_callback(on_timer)

    def _part_of_cycle(self, txid: int, lock_key: tuple) -> bool:
        """Was ``txid`` (about to abort its wait on ``lock_key``) part of a
        wait-for cycle *within this table*? Follows the holder-of /
        waits-on chain from the contended lock; O(live waiters), only run
        on the rare timeout path. Cross-shard cycles need the sanitizer's
        global graph — a local miss under-counts, never over-counts."""
        waits: dict[int, tuple] = {}
        for key, state in self._locks.items():
            for waiting_txid, event in state.waiters:
                if not event.triggered and waiting_txid not in waits:
                    waits[waiting_txid] = key
        seen = set()
        current_key = lock_key
        while True:
            state = self._locks.get(current_key)
            if state is None:
                return False
            holder = state.holder
            if holder == txid:
                return True
            if holder in seen:
                return False
            seen.add(holder)
            next_key = waits.get(holder)
            if next_key is None:
                return False
            current_key = next_key

    def release_all(self, txid: int) -> None:
        """Release every lock held by ``txid``, waking FIFO waiters."""
        # Sorted, not set order: set iteration follows string hashing, which
        # PYTHONHASHSEED randomizes per process — releasing in hash order
        # made waiter wake-ups (and whole histories) differ across runs.
        for lock_key in sorted(self._held.pop(txid, set()), key=repr):
            self._release_one(lock_key)

    def _release_one(self, lock_key: tuple) -> None:
        state = self._locks.get(lock_key)
        if state is None:
            return
        san = self.env.san
        while state.waiters:
            next_txid, event = state.waiters.popleft()
            if event.triggered:  # timed out already
                continue
            state.holder = next_txid
            self._held.setdefault(next_txid, set()).add(lock_key)
            if san is not None:
                san.on_lock_granted(self, next_txid, lock_key)
            event.succeed(True)
            return
        del self._locks[lock_key]
        if san is not None:
            san.on_lock_released(self, lock_key)

    def holder(self, table: str, key: tuple) -> int | None:
        state = self._locks.get((table, key))
        return state.holder if state else None

    def held_by(self, txid: int) -> set:
        return set(self._held.get(txid, set()))

    def locked_count(self) -> int:
        return len(self._locks)
