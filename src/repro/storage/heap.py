"""MVCC heap table.

Rows are immutable versions chained per primary key, newest first. A version
records the transaction that created it (``xmin``) and, once superseded or
deleted, the transaction that ended it (``xmax``). Outcomes live in the
commit log; the heap only stores ids, so replaying a commit record on a
replica instantly flips the visibility of all that transaction's versions
without touching them.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.clog import CommitLog
from repro.storage.snapshot import Snapshot


@dataclass(slots=True)
class RowVersion:
    """One version of a row."""

    key: tuple
    data: dict
    xmin: int
    xmax: int | None = None

    def __repr__(self) -> str:
        return f"<RowVersion {self.key} xmin={self.xmin} xmax={self.xmax}>"


def _created_visible(version: RowVersion, snapshot: Snapshot, clog: CommitLog) -> bool:
    if snapshot.txid is not None and version.xmin == snapshot.txid:
        return True
    return clog.is_committed_before(version.xmin, snapshot.read_ts)


def _ended_visible(version: RowVersion, snapshot: Snapshot, clog: CommitLog) -> bool:
    if version.xmax is None:
        return False
    if snapshot.txid is not None and version.xmax == snapshot.txid:
        return True
    return clog.is_committed_before(version.xmax, snapshot.read_ts)


def version_visible(version: RowVersion, snapshot: Snapshot, clog: CommitLog) -> bool:
    """The MVCC visibility rule."""
    return (_created_visible(version, snapshot, clog)
            and not _ended_visible(version, snapshot, clog))


def _first_visible(versions, read_ts: int, own, committed: dict,
                   memo: dict) -> RowVersion | None:
    """First visible version in a newest-first chain, with memoized
    commit-before-``read_ts`` decisions.

    This is :func:`version_visible` unrolled against the commit log's
    ``txid -> commit_ts`` table, caching each transaction's verdict in
    ``memo``. The memo is only sound while the commit log cannot change —
    i.e. within a single simulation event. Every caller (scans, index
    lookups) materializes its result eagerly inside one data-node handler
    invocation, which is what makes per-snapshot caching safe here: a
    transaction committing *between* events would otherwise flip a cached
    False.
    """
    for version in versions:
        xmin = version.xmin
        if xmin != own:
            visible = memo.get(xmin)
            if visible is None:
                ts = committed.get(xmin)
                memo[xmin] = visible = ts is not None and ts <= read_ts
            if not visible:
                continue
        xmax = version.xmax
        if xmax is not None:
            if xmax == own:
                continue
            ended = memo.get(xmax)
            if ended is None:
                ts = committed.get(xmax)
                memo[xmax] = ended = ts is not None and ts <= read_ts
            if ended:
                continue
        return version
    return None


class HeapTable:
    """Version store for one table on one shard."""

    def __init__(self, name: str):
        self.name = name
        # key -> versions, newest first.
        self._rows: dict[tuple, list[RowVersion]] = {}
        # secondary indexes: column -> value -> set of keys (approximate:
        # contains keys of *any* version with that value; visibility is
        # re-checked at read time).
        self._indexes: dict[str, dict[typing.Any, set]] = {}

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        if column in self._indexes:
            raise StorageError(f"index on {self.name}.{column} already exists")
        index: dict[typing.Any, set] = {}
        for key, versions in self._rows.items():
            for version in versions:
                index.setdefault(version.data.get(column), set()).add(key)
        self._indexes[column] = index

    def drop_index(self, column: str) -> None:
        if column not in self._indexes:
            raise StorageError(f"no index on {self.name}.{column}")
        del self._indexes[column]

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def _index_add(self, version: RowVersion) -> None:
        for column, index in self._indexes.items():
            index.setdefault(version.data.get(column), set()).add(version.key)

    # ------------------------------------------------------------------
    # Version chain operations (no visibility logic here)
    # ------------------------------------------------------------------
    def versions(self, key: tuple) -> list[RowVersion]:
        return self._rows.get(key, [])

    def add_version(self, version: RowVersion) -> None:
        """Prepend a new version for its key (newest first)."""
        chain = self._rows.get(version.key)
        if chain is None:
            self._rows[version.key] = [version]
        else:
            chain.insert(0, version)
        self._index_add(version)

    def remove_version(self, version: RowVersion) -> None:
        """Physically remove a version (rollback of an aborted insert)."""
        chain = self._rows.get(version.key)
        if chain and version in chain:
            chain.remove(version)
            if not chain:
                del self._rows[version.key]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, key: tuple, snapshot: Snapshot, clog: CommitLog) -> dict | None:
        """The visible row for ``key``, or None."""
        versions = self._rows.get(key)
        if versions is None:
            return None
        version = _first_visible(versions, snapshot.read_ts, snapshot.txid,
                                 clog._commit_ts, {})
        return None if version is None else version.data

    def visible_version(self, key: tuple, snapshot: Snapshot,
                        clog: CommitLog) -> RowVersion | None:
        versions = self._rows.get(key)
        if versions is None:
            return None
        return _first_visible(versions, snapshot.read_ts, snapshot.txid,
                              clog._commit_ts, {})

    def scan(self, snapshot: Snapshot, clog: CommitLog,
             predicate: typing.Callable[[dict], bool] | None = None
             ) -> typing.Iterator[dict]:
        """Yield every visible row (optionally filtered).

        Visibility verdicts are cached per transaction id for the duration
        of the scan (see :func:`_first_visible`), so a TPC-C stock scan
        decides each bulk-load/committing transaction once instead of once
        per version. Callers must consume the iterator within the event
        that created it — data-node handlers materialize it eagerly."""
        read_ts = snapshot.read_ts
        own = snapshot.txid
        committed = clog._commit_ts
        memo: dict[int, bool] = {}
        for versions in self._rows.values():
            version = _first_visible(versions, read_ts, own, committed, memo)
            if version is not None:
                if predicate is None or predicate(version.data):
                    yield version.data

    def lookup_index(self, column: str, value: typing.Any, snapshot: Snapshot,
                     clog: CommitLog) -> list[dict]:
        """Equality lookup via a secondary index."""
        index = self._indexes.get(column)
        if index is None:
            raise StorageError(f"no index on {self.name}.{column}")
        rows = []
        read_ts = snapshot.read_ts
        own = snapshot.txid
        committed = clog._commit_ts
        memo: dict[int, bool] = {}
        # Sorted, not set order: bucket iteration order decides result-row
        # order (e.g. TPC-C pay-by-lastname picks the middle row), and set
        # order follows PYTHONHASHSEED — same bug class as locks.py PR 1.
        for key in sorted(index.get(value, ()), key=repr):
            version = _first_visible(self._rows.get(key, ()), read_ts, own,
                                     committed, memo)
            if version is not None and version.data.get(column) == value:
                rows.append(version.data)
        return rows

    def keys(self) -> typing.Iterator[tuple]:
        return iter(self._rows)

    def version_count(self) -> int:
        return sum(len(chain) for chain in self._rows.values())

    def __len__(self) -> int:
        """Number of keys with at least one version (not visibility-aware)."""
        return len(self._rows)
