"""Write-ahead (redo) log buffer.

Primaries append records here; log shippers subscribe and drain. The buffer
assigns monotonically increasing LSNs and notifies subscribers on append so
shipping can be latency-driven (flush small batches fast) rather than
poll-driven.
"""

from __future__ import annotations

import typing

from repro.storage.redo import RedoRecord


class WalBuffer:
    """An append-only in-memory redo log with subscriber callbacks."""

    def __init__(self, name: str = "wal", start_lsn: int = 1):
        self.name = name
        self._records: list[RedoRecord] = []
        #: LSN of the first record this buffer will hold. Normally 1; a
        #: promoted replica's fresh WAL continues from its applied LSN so
        #: the shard keeps one dense LSN sequence across the failover.
        self.start_lsn = start_lsn
        self._next_lsn = start_lsn
        self._subscribers: list[typing.Callable[[RedoRecord], None]] = []
        self.bytes_written = 0

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def append(self, record: RedoRecord) -> int:
        """Assign an LSN, store the record, notify subscribers."""
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._records.append(record)
        self.bytes_written += record.size_bytes()
        for subscriber in self._subscribers:
            subscriber(record)
        return record.lsn

    def subscribe(self, callback: typing.Callable[[RedoRecord], None]) -> None:
        """Register a callback invoked synchronously on every append."""
        self._subscribers.append(callback)

    def records_from(self, lsn_exclusive: int) -> list[RedoRecord]:
        """All records with LSN > ``lsn_exclusive`` (replica catch-up)."""
        # LSNs are dense from start_lsn, so slicing is exact.
        index = max(0, lsn_exclusive - self.start_lsn + 1)
        return self._records[index:]

    def __len__(self) -> int:
        return len(self._records)
