"""Write-ahead (redo) log buffer.

Primaries append records here; log shippers subscribe and drain. The buffer
assigns monotonically increasing LSNs and notifies subscribers on append so
shipping can be latency-driven (flush small batches fast) rather than
poll-driven.

The buffer also owns the redo-record free lists: once every replica has
*applied* an LSN (tracked by the primary's :class:`AckTracker`), the prefix
below it can never be read again — catch-up requests always start at the
requester's enqueued LSN, which is at least its applied LSN, and in-flight
batches only carry records above the receiver's applied LSN. Truncating
that prefix recycles the record shells for the storage engine to reuse,
so a long benchmark run allocates O(window) redo records, not O(history).
"""

from __future__ import annotations

import typing

from repro.storage.redo import RedoInsert, RedoRecord, RedoUpdate

#: Max recycled shells kept per record type.
_POOL_CAP = 512


class WalBuffer:
    """An append-only in-memory redo log with subscriber callbacks."""

    def __init__(self, name: str = "wal", start_lsn: int = 1,
                 pooling: bool = True):
        self.name = name
        self._records: list[RedoRecord] = []
        #: LSN of the first record this buffer will hold. Normally 1; a
        #: promoted replica's fresh WAL continues from its applied LSN so
        #: the shard keeps one dense LSN sequence across the failover.
        self.start_lsn = start_lsn
        self._next_lsn = start_lsn
        self._subscribers: list[typing.Callable[[RedoRecord], None]] = []
        self.bytes_written = 0
        #: Whether truncated record shells are recycled (see module
        #: docstring). Off => truncation still frees the list prefix but
        #: shells are left to the garbage collector.
        self.pooling = pooling
        self._pools: dict[type, list[RedoRecord]] = {}
        self.truncated_records = 0

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def append(self, record: RedoRecord) -> int:
        """Assign an LSN, store the record, notify subscribers."""
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._records.append(record)
        self.bytes_written += record.size_bytes()
        for subscriber in self._subscribers:
            subscriber(record)
        return record.lsn

    def subscribe(self, callback: typing.Callable[[RedoRecord], None]) -> None:
        """Register a callback invoked synchronously on every append."""
        self._subscribers.append(callback)

    def records_from(self, lsn_exclusive: int) -> list[RedoRecord]:
        """All records with LSN > ``lsn_exclusive`` (replica catch-up).

        A request below ``start_lsn - 1`` returns everything still held
        (a rebuilt replica asking "send me what you have"); legitimate
        catch-up never lands inside a truncated prefix because truncation
        stays below every replica's applied LSN.
        """
        # LSNs are dense from start_lsn, so slicing is exact.
        index = max(0, lsn_exclusive - self.start_lsn + 1)
        return self._records[index:]

    def take(self, cls: type) -> RedoRecord | None:
        """Pop a recycled shell of ``cls`` (caller must reset every field),
        or None when the pool is empty."""
        pool = self._pools.get(cls)
        if pool:
            return pool.pop()
        return None

    def truncate_below(self, keep_from_lsn: int) -> int:
        """Drop records with LSN < ``keep_from_lsn`` and recycle their
        shells. Only call with ``keep_from_lsn`` at most one past the
        minimum replica applied LSN. Returns the number dropped."""
        count = keep_from_lsn - self.start_lsn
        if count <= 0:
            return 0
        dropped = self._records[:count]
        del self._records[:count]
        self.start_lsn = keep_from_lsn
        self.truncated_records += count
        if self.pooling:
            pools = self._pools
            for record in dropped:
                cls = type(record)
                pool = pools.get(cls)
                if pool is None:
                    pool = pools[cls] = []
                if len(pool) < _POOL_CAP:
                    if cls is RedoInsert or cls is RedoUpdate:
                        # Drop the row reference so pooled shells do not
                        # pin live row dicts until reuse.
                        record.row = None
                    pool.append(record)
        return count

    def __len__(self) -> int:
        return len(self._records)
