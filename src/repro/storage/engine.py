"""The per-shard storage engine (primary role).

Combines the MVCC heap, commit log, catalog, lock table and WAL into the
write/read surface a primary data node exposes:

- DML writes create versions immediately and stream matching redo records
  into the WAL (steal-style), so replication lag is governed purely by
  shipping and replay.
- Updates and deletes use read-committed write semantics (as in
  GaussDB/openGauss): after the row lock is granted, the write applies to
  the *latest committed* version, not the transaction's snapshot. This keeps
  TPC-C abort rates realistic for hot rows (district next-order-id).
- Commit follows the paper's §IV-A ordering: a ``PENDING_COMMIT`` record is
  logged *before* the commit timestamp is obtained, then the ``COMMIT``
  record carries the timestamp. Replicas use the pair to hold back reads on
  in-doubt tuples.
"""

from __future__ import annotations

import typing

from repro.errors import DuplicateKeyError, StorageError, TransactionError
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.storage.catalog import Catalog, TableSchema
from repro.storage.clog import CommitLog, TxnStatus
from repro.storage.heap import HeapTable, RowVersion
from repro.storage.locks import LockTable
from repro.storage.redo import (
    RedoAbort,
    RedoAbortPrepared,
    RedoCommit,
    RedoCommitPrepared,
    RedoDdl,
    RedoDelete,
    RedoHeartbeat,
    RedoInsert,
    RedoPendingCommit,
    RedoPrepare,
    RedoUpdate,
)
from repro.storage.snapshot import Snapshot
from repro.storage.wal import WalBuffer


class StorageEngine:
    """Storage for one shard's primary."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.catalog = Catalog()
        self.clog = CommitLog()
        self.wal = WalBuffer(name=f"{name}.wal")
        self.locks = LockTable(env)
        self._tables: dict[str, HeapTable] = {}
        # txid -> undo entries, applied in reverse on abort.
        self._undo: dict[int, list[tuple]] = {}
        # Transactions in the commit window (PENDING_COMMIT logged, or
        # prepared) whose outcome a reader may need to wait for. The GClock
        # commit timestamp of such a transaction can land *below* an
        # existing snapshot (within the clock error window), so readers
        # touching its tuples block until it resolves — the primary-side
        # mirror of the replica's PENDING_COMMIT holdback.
        self._unresolved: dict[int, Event] = {}
        self.last_commit_ts = 0

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema, ddl_ts: int = 0,
                     log: bool = True) -> None:
        self.catalog.create_table(schema, ddl_ts)
        self._tables[schema.name] = HeapTable(schema.name)
        if log:
            self.wal.append(RedoDdl(txid=0, action="create_table",
                                    table=schema.name, payload=schema,
                                    commit_ts=ddl_ts))
            self._note_commit_ts(ddl_ts)

    def drop_table(self, name: str, ddl_ts: int = 0, log: bool = True) -> None:
        self.catalog.drop_table(name, ddl_ts)
        del self._tables[name]
        if log:
            self.wal.append(RedoDdl(txid=0, action="drop_table", table=name,
                                    commit_ts=ddl_ts))
            self._note_commit_ts(ddl_ts)

    def create_index(self, table: str, column: str, ddl_ts: int = 0,
                     log: bool = True) -> None:
        self.table(table).create_index(column)
        self.catalog.record_ddl(table, ddl_ts)
        if log:
            self.wal.append(RedoDdl(txid=0, action="create_index", table=table,
                                    payload=column, commit_ts=ddl_ts))
            self._note_commit_ts(ddl_ts)

    def drop_index(self, table: str, column: str, ddl_ts: int = 0,
                   log: bool = True) -> None:
        self.table(table).drop_index(column)
        self.catalog.record_ddl(table, ddl_ts)
        if log:
            self.wal.append(RedoDdl(txid=0, action="drop_index", table=table,
                                    payload=column, commit_ts=ddl_ts))
            self._note_commit_ts(ddl_ts)

    def table(self, name: str) -> HeapTable:
        heap = self._tables.get(name)
        if heap is None:
            # Raises TableNotFoundError if genuinely unknown:
            self.catalog.table(name)
            raise StorageError(f"table {name} has no heap on shard {self.name}")
        return heap

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, txid: int) -> None:
        self.clog.begin(txid)
        self._undo[txid] = []

    def is_active(self, txid: int) -> bool:
        return (self.clog.known(txid)
                and self.clog.status(txid) in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED))

    def tables_written(self, txid: int) -> set[str]:
        """Names of tables this in-flight transaction has modified."""
        return {entry[1].name for entry in self._undo.get(txid, [])}

    def log_pending_commit(self, txid: int) -> int:
        """§IV-A: written before the commit timestamp is obtained."""
        self._unresolved.setdefault(txid, Event(self.env))
        record = self.wal.take(RedoPendingCommit)
        if record is None:
            record = RedoPendingCommit(txid=txid)
        else:
            record.txid = txid
        return self.wal.append(record)

    def commit(self, txid: int, commit_ts: int) -> int:
        """Commit locally and log the commit record. Returns its LSN."""
        self.clog.commit(txid, commit_ts)
        self._undo.pop(txid, None)
        record = self.wal.take(RedoCommit)
        if record is None:
            record = RedoCommit(txid=txid, commit_ts=commit_ts)
        else:
            record.txid = txid
            record.commit_ts = commit_ts
        lsn = self.wal.append(record)
        self.locks.release_all(txid)
        self._note_commit_ts(commit_ts)
        self._resolve(txid)
        return lsn

    def abort(self, txid: int) -> int:
        """Roll back and log the abort record. Returns its LSN."""
        for entry in reversed(self._undo.pop(txid, [])):
            kind, heap, version, old_version = entry
            if kind == "insert":
                heap.remove_version(version)
            elif kind in ("update", "delete"):
                if old_version.xmax == txid:
                    old_version.xmax = None
                if version is not None:
                    heap.remove_version(version)
        self.clog.abort(txid)
        lsn = self.wal.append(RedoAbort(txid=txid))
        self.locks.release_all(txid)
        self._resolve(txid)
        return lsn

    def prepare(self, txid: int) -> int:
        """2PC phase one."""
        self.clog.prepare(txid)
        self._unresolved.setdefault(txid, Event(self.env))
        return self.wal.append(RedoPrepare(txid=txid))

    def commit_prepared(self, txid: int, commit_ts: int) -> int:
        if self.clog.status(txid) is not TxnStatus.PREPARED:
            raise TransactionError(f"transaction {txid} is not prepared")
        self.clog.commit(txid, commit_ts)
        self._undo.pop(txid, None)
        lsn = self.wal.append(RedoCommitPrepared(txid=txid, commit_ts=commit_ts))
        self.locks.release_all(txid)
        self._note_commit_ts(commit_ts)
        self._resolve(txid)
        return lsn

    def abort_prepared(self, txid: int) -> int:
        if self.clog.status(txid) is not TxnStatus.PREPARED:
            raise TransactionError(f"transaction {txid} is not prepared")
        for entry in reversed(self._undo.pop(txid, [])):
            kind, heap, version, old_version = entry
            if kind == "insert":
                heap.remove_version(version)
            elif kind in ("update", "delete"):
                if old_version.xmax == txid:
                    old_version.xmax = None
                if version is not None:
                    heap.remove_version(version)
        self.clog.abort(txid)
        lsn = self.wal.append(RedoAbortPrepared(txid=txid))
        self.locks.release_all(txid)
        self._resolve(txid)
        return lsn

    def heartbeat(self, commit_ts: int) -> int:
        """Log a heartbeat so idle replicas keep advancing (§IV-A)."""
        self._note_commit_ts(commit_ts)
        record = self.wal.take(RedoHeartbeat)
        if record is None:
            record = RedoHeartbeat(txid=0, commit_ts=commit_ts)
        else:
            record.txid = 0
            record.commit_ts = commit_ts
        return self.wal.append(record)

    def _note_commit_ts(self, commit_ts: int) -> None:
        if commit_ts > self.last_commit_ts:
            self.last_commit_ts = commit_ts

    def _resolve(self, txid: int) -> None:
        event = self._unresolved.pop(txid, None)
        if event is not None and not event.triggered:
            event.succeed(txid)

    # ------------------------------------------------------------------
    # Commit-window holdback for readers
    # ------------------------------------------------------------------
    def blocking_txid(self, table: str, key: tuple,
                      reader_txid: int | None = None) -> int | None:
        """If ``key``'s visibility could hinge on a transaction in its
        commit window, return that transaction's id."""
        if not self._unresolved:
            return None
        for version in self.table(table).versions(key):
            if version.xmin in self._unresolved and version.xmin != reader_txid:
                return version.xmin
            if (version.xmax is not None and version.xmax in self._unresolved
                    and version.xmax != reader_txid):
                return version.xmax
        return None

    def read_waiting(self, table: str, key: tuple, snapshot: Snapshot):
        """Generator: read ``key``, waiting out commit-window transactions."""
        while True:
            txid = self.blocking_txid(table, key, snapshot.txid)
            if txid is None:
                return self.read(table, key, snapshot)
            event = self._unresolved.get(txid)
            if event is None:
                continue
            yield event

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, txid: int, table: str, row: dict) -> None:
        schema = self.catalog.table(table)
        heap = self.table(table)
        key = schema.key_of(row)
        existing = self._latest_committed(heap, key)
        if existing is not None:
            raise DuplicateKeyError(f"duplicate key {key} in {table}")
        for version in heap.versions(key):
            status = self.clog.status(version.xmin) if self.clog.known(version.xmin) \
                else TxnStatus.COMMITTED
            if status in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED) \
                    and version.xmin != txid and version.xmax is None:
                raise DuplicateKeyError(
                    f"concurrent insert of key {key} in {table}")
        version = RowVersion(key=key, data=dict(row), xmin=txid)
        heap.add_version(version)
        self._undo[txid].append(("insert", heap, version, None))
        record = self.wal.take(RedoInsert)
        if record is None:
            record = RedoInsert(txid=txid, table=table, key=key,
                                row=version.data)
        else:
            record.txid = txid
            record.table = table
            record.key = key
            record.row = version.data
        self.wal.append(record)

    def update(self, txid: int, table: str, key: tuple,
               changes: typing.Mapping[str, typing.Any]) -> dict | None:
        """Apply ``changes`` to the latest committed version of ``key``.

        The caller must already hold the row lock. Returns the new row, or
        None if the row does not exist (or is deleted).
        """
        heap = self.table(table)
        current = self._current_for_write(heap, key, txid)
        if current is None:
            return None
        new_data = dict(current.data)
        new_data.update(changes)
        current.xmax = txid
        version = RowVersion(key=key, data=new_data, xmin=txid)
        heap.add_version(version)
        self._undo[txid].append(("update", heap, version, current))
        record = self.wal.take(RedoUpdate)
        if record is None:
            record = RedoUpdate(txid=txid, table=table, key=key, row=new_data)
        else:
            record.txid = txid
            record.table = table
            record.key = key
            record.row = new_data
        self.wal.append(record)
        return new_data

    def delete(self, txid: int, table: str, key: tuple) -> bool:
        """Delete the latest committed version of ``key``. Caller holds the
        row lock. Returns True if a row was deleted."""
        heap = self.table(table)
        current = self._current_for_write(heap, key, txid)
        if current is None:
            return False
        current.xmax = txid
        self._undo[txid].append(("delete", heap, None, current))
        record = self.wal.take(RedoDelete)
        if record is None:
            record = RedoDelete(txid=txid, table=table, key=key)
        else:
            record.txid = txid
            record.table = table
            record.key = key
        self.wal.append(record)
        return True

    def _current_for_write(self, heap: HeapTable, key: tuple,
                           txid: int) -> RowVersion | None:
        """The version a write should target: the transaction's own latest
        un-ended write if any, else the latest committed version."""
        for version in heap.versions(key):
            if version.xmin == txid and version.xmax is None:
                return version
        return self._latest_committed(heap, key)

    def _latest_committed(self, heap: HeapTable, key: tuple) -> RowVersion | None:
        """Latest committed, un-superseded version of ``key``."""
        best: RowVersion | None = None
        best_ts = -1
        for version in heap.versions(key):
            created_ts = self.clog.commit_ts(version.xmin)
            if created_ts is None:
                continue
            if version.xmax is not None:
                end_status = (self.clog.status(version.xmax)
                              if self.clog.known(version.xmax) else TxnStatus.COMMITTED)
                if end_status is TxnStatus.COMMITTED:
                    continue
            if created_ts > best_ts:
                best = version
                best_ts = created_ts
        return best

    # ------------------------------------------------------------------
    # Vacuum (MVCC garbage collection)
    # ------------------------------------------------------------------
    def vacuum(self, retention_ns: int):
        """Reclaim dead versions older than ``last_commit_ts -
        retention_ns`` and prune the commit log. Returns VacuumStats.

        ``retention_ns`` bounds how far back snapshots remain readable
        (the "snapshot too old" horizon); it must comfortably exceed the
        clock error bound and any replica staleness bound in use.
        """
        from repro.storage.vacuum import vacuum_tables

        horizon = self.last_commit_ts - retention_ns
        return vacuum_tables(self._tables, self.clog, horizon)

    # ------------------------------------------------------------------
    # Bulk load (offline data installation, bypassing the redo stream)
    # ------------------------------------------------------------------
    def bulk_load(self, table: str, rows: typing.Iterable[dict],
                  load_ts: int = 1) -> int:
        """Install rows directly as committed at ``load_ts``.

        Used for initial workload loading (the equivalent of restoring a
        base backup before benchmarking); nothing is written to the WAL, so
        replicas must be loaded the same way.
        """
        from repro.storage.clog import TxnStatus as _TxnStatus
        from repro.storage.heap import RowVersion as _RowVersion

        schema = self.catalog.table(table)
        heap = self.table(table)
        self.clog.ensure(0)
        if self.clog.status(0) is not _TxnStatus.COMMITTED:
            self.clog.commit(0, load_ts)
        count = 0
        for row in rows:
            key = schema.key_of(row)
            heap.add_version(_RowVersion(key=key, data=dict(row), xmin=0))
            count += 1
        self._note_commit_ts(load_ts)
        return count

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, table: str, key: tuple, snapshot: Snapshot) -> dict | None:
        return self.table(table).read(key, snapshot, self.clog)

    def scan(self, table: str, snapshot: Snapshot,
             predicate: typing.Callable[[dict], bool] | None = None
             ) -> typing.Iterator[dict]:
        return self.table(table).scan(snapshot, self.clog, predicate)

    def lookup_index(self, table: str, column: str, value: typing.Any,
                     snapshot: Snapshot) -> list[dict]:
        return self.table(table).lookup_index(column, value, snapshot, self.clog)
