"""Redo log record types.

The redo stream is the only channel from a primary to its replicas. Record
types mirror the paper's §IV-A:

- Data records (``INSERT``/``UPDATE``/``DELETE``) carry the writing
  transaction id; their visibility is resolved later by the commit record.
- ``PENDING_COMMIT`` is written *before* the transaction obtains its commit
  timestamp; replaying it locks the transaction's tuples on the replica so
  reads cannot observe a gap caused by out-of-order commit-record writes.
- ``PREPARE`` / ``COMMIT_PREPARED`` / ``ABORT_PREPARED`` carry two-phase
  commit outcomes; a prepared transaction blocks replica visibility checks
  until its outcome record is replayed.
- ``HEARTBEAT`` carries a fresh timestamp so idle replicas keep advancing
  their max applied commit timestamp (needed for a monotone RCP).
- ``DDL`` carries catalog changes plus the DDL timestamp used by the ROR
  DDL-fencing rules.

Each record estimates its wire size so the shipping layer can do byte
accounting (compression, bandwidth, Nagle).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

#: Fixed per-record framing overhead in bytes (header, CRC, LSN).
RECORD_HEADER_BYTES = 32


def _row_bytes(row: typing.Mapping[str, typing.Any] | None) -> int:
    """Rough serialized size of a row payload."""
    if not row:
        return 0
    total = 0
    for key, value in row.items():
        total += len(key) + 2
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, (int, float)):
            total += 8
        elif value is None:
            total += 1
        else:
            total += len(str(value))
    return total


@dataclass(slots=True)
class RedoRecord:
    """Base redo record. ``lsn`` is assigned when appended to the WAL."""

    txid: int
    lsn: int = field(default=0, kw_only=True)

    def size_bytes(self) -> int:
        return RECORD_HEADER_BYTES


@dataclass(slots=True)
class RedoInsert(RedoRecord):
    table: str = ""
    key: tuple = ()
    row: dict = field(default_factory=dict)

    def size_bytes(self) -> int:
        return RECORD_HEADER_BYTES + _row_bytes(self.row)


@dataclass(slots=True)
class RedoUpdate(RedoRecord):
    table: str = ""
    key: tuple = ()
    row: dict = field(default_factory=dict)

    def size_bytes(self) -> int:
        return RECORD_HEADER_BYTES + _row_bytes(self.row)


@dataclass(slots=True)
class RedoDelete(RedoRecord):
    table: str = ""
    key: tuple = ()

    def size_bytes(self) -> int:
        return RECORD_HEADER_BYTES + 16


@dataclass(slots=True)
class RedoPendingCommit(RedoRecord):
    """Written before the transaction obtains its commit timestamp."""


@dataclass(slots=True)
class RedoCommit(RedoRecord):
    commit_ts: int = 0


@dataclass(slots=True)
class RedoAbort(RedoRecord):
    pass


@dataclass(slots=True)
class RedoPrepare(RedoRecord):
    """2PC phase one: the transaction is prepared on this shard."""


@dataclass(slots=True)
class RedoCommitPrepared(RedoRecord):
    commit_ts: int = 0


@dataclass(slots=True)
class RedoAbortPrepared(RedoRecord):
    pass


@dataclass(slots=True)
class RedoDdl(RedoRecord):
    """A catalog change. ``action`` is one of 'create_table', 'drop_table',
    'create_index', 'drop_index'; ``payload`` carries the schema object or
    index spec; ``commit_ts`` is the DDL timestamp used for ROR fencing."""

    action: str = ""
    table: str = ""
    payload: typing.Any = None
    commit_ts: int = 0

    def size_bytes(self) -> int:
        return RECORD_HEADER_BYTES + 128


@dataclass(slots=True)
class RedoHeartbeat(RedoRecord):
    """Advances the replica's max applied commit timestamp during idle."""

    commit_ts: int = 0

    def size_bytes(self) -> int:
        return RECORD_HEADER_BYTES


#: Records that resolve a transaction's outcome on the replica.
OUTCOME_RECORDS = (RedoCommit, RedoAbort, RedoCommitPrepared, RedoAbortPrepared)
