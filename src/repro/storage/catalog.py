"""Table catalog: schemas, distribution specs, and DDL timestamps.

The catalog tracks, per table, the commit timestamp of the last DDL that
touched it, plus the global maximum DDL timestamp. The ROR router uses
these for the paper's two DDL-fencing rules (§IV-A): a replica read is
allowed if the RCP has passed the global max DDL timestamp, or failing
that, the DDL timestamp of every table the query touches.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.errors import StorageError, TableNotFoundError


@dataclass(frozen=True)
class ColumnDef:
    """A column: name plus a coarse type tag ('int', 'float', 'text')."""

    name: str
    type: str = "text"


@dataclass(frozen=True)
class DistributionSpec:
    """How a table's rows are spread over shards.

    ``method`` is 'hash' (on ``column``), 'range' (on ``column``, with
    boundaries decided by the sharding layer), or 'replicated' (full copy on
    every shard — used for small read-mostly tables like TPC-C ITEM).
    """

    method: str = "hash"
    column: str | None = None


@dataclass
class TableSchema:
    """Schema of one table."""

    name: str
    columns: list[ColumnDef]
    primary_key: tuple[str, ...]
    distribution: DistributionSpec = field(default_factory=DistributionSpec)
    #: The paper's future-work feature, implemented here: a table can opt
    #: into synchronous replication — commits touching it wait for every
    #: replica's ack, trading update latency for maximum read freshness —
    #: while the rest of the database stays asynchronous.
    sync_replication: bool = False

    def __post_init__(self) -> None:
        if self.distribution.method not in ("hash", "range", "replicated"):
            raise StorageError(
                f"unknown distribution method {self.distribution.method!r} "
                f"for table {self.name} (use 'hash', 'range', or "
                f"'replicated')")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column in table {self.name}")
        for key_column in self.primary_key:
            if key_column not in names:
                raise StorageError(
                    f"primary key column {key_column!r} not in table {self.name}")
        if (self.distribution.method in ("hash", "range")
                and self.distribution.column is None):
            # Default distribution key: the first primary-key column.
            self.distribution = DistributionSpec(
                self.distribution.method, self.primary_key[0])

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def key_of(self, row: typing.Mapping[str, typing.Any]) -> tuple:
        """Extract the primary-key tuple from a row."""
        try:
            return tuple(row[column] for column in self.primary_key)
        except KeyError as exc:
            raise StorageError(
                f"row for {self.name} missing primary key column {exc}") from None


class Catalog:
    """All table schemas known to one node, plus DDL timestamps."""

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}
        self._ddl_ts: dict[str, int] = {}
        self.max_ddl_ts: int = 0

    def create_table(self, schema: TableSchema, ddl_ts: int = 0) -> None:
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name} already exists")
        self._tables[schema.name] = schema
        self._touch(schema.name, ddl_ts)

    def drop_table(self, name: str, ddl_ts: int = 0) -> None:
        if name not in self._tables:
            raise TableNotFoundError(name)
        del self._tables[name]
        self._touch(name, ddl_ts)

    def table(self, name: str) -> TableSchema:
        schema = self._tables.get(name)
        if schema is None:
            raise TableNotFoundError(name)
        return schema

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> list[str]:
        return list(self._tables)

    def _touch(self, name: str, ddl_ts: int) -> None:
        self._ddl_ts[name] = max(self._ddl_ts.get(name, 0), ddl_ts)
        self.max_ddl_ts = max(self.max_ddl_ts, ddl_ts)

    def record_ddl(self, name: str, ddl_ts: int) -> None:
        """Record a DDL timestamp for a table (e.g. index create/drop)."""
        self._touch(name, ddl_ts)

    def ddl_ts(self, name: str) -> int:
        """DDL timestamp of the last DDL touching ``name`` (0 if never)."""
        return self._ddl_ts.get(name, 0)
