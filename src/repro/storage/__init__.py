"""Per-data-node storage engine.

Each shard's primary data node runs one :class:`~repro.storage.engine.StorageEngine`:
an MVCC heap with timestamp-based visibility, a commit log mapping
transaction ids to outcomes, per-row write locks with FIFO wait queues, a
table catalog carrying DDL timestamps, and a redo (WAL) stream that is the
sole replication channel to replica nodes — exactly the shape the paper's
ROR machinery (§IV) depends on: replicas learn *everything* from replayed
redo, including ``PENDING_COMMIT`` holdbacks and 2PC outcomes.
"""

from repro.storage.catalog import Catalog, ColumnDef, DistributionSpec, TableSchema
from repro.storage.clog import CommitLog, TxnStatus
from repro.storage.engine import StorageEngine
from repro.storage.heap import HeapTable, RowVersion
from repro.storage.redo import (
    RedoAbort,
    RedoAbortPrepared,
    RedoCommit,
    RedoCommitPrepared,
    RedoDdl,
    RedoDelete,
    RedoHeartbeat,
    RedoInsert,
    RedoPendingCommit,
    RedoPrepare,
    RedoRecord,
    RedoUpdate,
)
from repro.storage.snapshot import Snapshot
from repro.storage.wal import WalBuffer

__all__ = [
    "StorageEngine",
    "Catalog",
    "TableSchema",
    "ColumnDef",
    "DistributionSpec",
    "CommitLog",
    "TxnStatus",
    "HeapTable",
    "RowVersion",
    "Snapshot",
    "WalBuffer",
    "RedoRecord",
    "RedoInsert",
    "RedoUpdate",
    "RedoDelete",
    "RedoCommit",
    "RedoAbort",
    "RedoPendingCommit",
    "RedoPrepare",
    "RedoCommitPrepared",
    "RedoAbortPrepared",
    "RedoDdl",
    "RedoHeartbeat",
]
