"""Experiment scaffolding: scales, result tables, and pretty-printing."""

from __future__ import annotations

import os
import typing
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Scale:
    """How big to run an experiment.

    ``quick`` keeps the whole suite in minutes; ``full`` approximates the
    paper's client scale (600 terminals) at the cost of longer wall time.
    Select with the ``REPRO_BENCH_SCALE`` environment variable.
    """

    name: str
    warehouses: int
    terminals: int
    duration_s: float
    warmup_s: float

    @classmethod
    def quick(cls) -> "Scale":
        return cls(name="quick", warehouses=12, terminals=120,
                   duration_s=1.5, warmup_s=0.4)

    @classmethod
    def full(cls) -> "Scale":
        return cls(name="full", warehouses=24, terminals=600,
                   duration_s=2.5, warmup_s=0.6)

    @classmethod
    def from_env(cls) -> "Scale":
        """Scale named by ``REPRO_BENCH_SCALE`` (default quick).

        An unrecognized value raises instead of silently running quick —
        a typo like ``REPRO_BENCH_SCALE=fulll`` used to produce
        quick-scale numbers labelled as a full run."""
        choice = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
        if choice in ("", "quick"):
            return cls.quick()
        if choice == "full":
            return cls.full()
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE={choice!r}: expected 'quick' or 'full'")


@dataclass
class ExperimentTable:
    """One paper table/figure's reproduced data."""

    experiment: str
    paper_claim: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Free-form JSON-serializable attachments (e.g. a RunReport digest
    #: when the run was traced via ``REPRO_TRACE=1``).
    extra_info: dict = field(default_factory=dict)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def cell(self, row: int, column: str):
        return self.rows[row][self.columns.index(column)]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Paper-style fixed-width table."""
        headers = [str(column) for column in self.columns]
        body = [[_fmt(value) for value in row] for row in self.rows]
        widths = [max(len(headers[i]), *(len(row[i]) for row in body))
                  if body else len(headers[i]) for i in range(len(headers))]
        lines = [f"== {self.experiment} ==",
                 f"   paper: {self.paper_claim}"]
        lines.append("   " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("   " + "  ".join("-" * w for w in widths))
        for row in body:
            lines.append("   " + "  ".join(cell.rjust(w)
                                           for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """For pytest-benchmark's extra_info (must be JSON-serializable)."""
        return {
            "experiment": self.experiment,
            "paper_claim": self.paper_claim,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
            "extra_info": self.extra_info,
        }


def _fmt(value: typing.Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
