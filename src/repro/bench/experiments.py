"""Experiment definitions — one per paper figure (§V) plus ablations.

Calibration: the simulated cluster's cost model is sized so closed-loop
clients saturate at a few thousand TPC-C transactions per second (the
regime the paper's 600-terminal experiments operate in). The read
benchmarks (Figs. 6c/6d) additionally use a CN statement cost calibrated
to the paper's 2013-era Xeon full-SQL path, which is what makes the
"up to 14x / 8.9x" ratios land: the ratio is (cluster capacity) x
(baseline latency) / terminals, so it is a property of the client/capacity
regime, not just of the protocols.
"""

from __future__ import annotations

import os
import typing
from dataclasses import replace

from repro.bench.harness import ExperimentTable, Scale
from repro.cluster import ClusterConfig, build_cluster, one_region, three_city
from repro.cluster.cn import CnConfig
from repro.cluster.topology import chain_topology
from repro.replication.shipper import ShipperConfig
from repro.sim.transport import (
    BBR,
    CUBIC,
    LZ4,
    NAGLE_OFF,
    NAGLE_ON,
    NO_COMPRESSION,
    TransportConfig,
)
from repro.sim.units import SECOND, ms, ns_to_ms, us
from repro.workloads import (
    SysbenchConfig,
    SysbenchWorkload,
    TpccConfig,
    TpccWorkload,
    run_workload,
)
from repro.workloads.tpcc import ReadOnlyTpccWorkload

#: Delay points swept in Figs. 6b-6d (the paper sweeps 0-100 ms).
DELAY_POINTS_MS = (0, 25, 50, 100)

#: CN calibration for the read benchmarks (see module docstring).
READ_BENCH_CN = CnConfig(statement_cost_ns=us(600), workers=5)


def _tracing() -> bool:
    """``REPRO_TRACE=1`` turns every experiment run into a traced run."""
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


def _build(config: ClusterConfig):
    """Build a cluster, attaching observability when ``REPRO_TRACE`` is set.

    Observability is passive, so traced runs produce the same numbers as
    untraced ones (``tests/test_determinism.py``)."""
    if _tracing():
        config = replace(config, metrics_enabled=True, trace_enabled=True)
    return build_cluster(config)


def _attach_observability(table: ExperimentTable, db, result=None,
                          label: str = "") -> None:
    """Digest a traced run into ``table.extra_info`` (and optionally a
    Chrome trace file under ``REPRO_TRACE_DIR``). No-op unless tracing."""
    if not _tracing():
        return
    from repro.obs import RunReport

    report = RunReport.capture(db, result)
    digest = report.to_dict()
    if label:
        digest["label"] = label
    table.extra_info.setdefault("run_reports", []).append(digest)
    out_dir = os.environ.get("REPRO_TRACE_DIR", "")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        slug = "".join(ch if ch.isalnum() else "-"
                       for ch in f"{table.experiment} {label}".lower()).strip("-")
        db.env.tracer.write_chrome_trace(os.path.join(out_dir, f"{slug}.json"))


def _tpcc(scale: Scale, **overrides) -> TpccWorkload:
    return TpccWorkload(TpccConfig(warehouses=scale.warehouses, **overrides))


def _run_tpcc(db, scale: Scale, workload=None, cns=None):
    workload = workload or _tpcc(scale)
    return run_workload(db, workload, terminals=scale.terminals,
                        duration_s=scale.duration_s, warmup_s=scale.warmup_s,
                        cns=cns)


# ----------------------------------------------------------------------
# Fig. 1a — motivation: OLTP degrades with geographic spread
# ----------------------------------------------------------------------
def fig1a_motivation(scale: Scale | None = None) -> ExperimentTable:
    """Baseline GaussDB TPC-C throughput as the cluster spans ever more
    distant regions (Fig. 1a's downward curve)."""
    scale = scale or Scale.from_env()
    table = ExperimentTable(
        experiment="Fig 1a — OLTP vs geographic spread (baseline GaussDB)",
        paper_claim="throughput degrades steeply as regions grow more distant",
        columns=["spread", "hop_latency_ms", "tpm", "normalized"])
    reference_tpm = None
    for label, hop_ms in [("same rack", 0.05), ("metro", 5.0),
                          ("near cities", 25.0), ("distant cities", 55.0)]:
        topology = chain_topology(3, hop_latency_ns=ms(hop_ms))
        db = _build(ClusterConfig.baseline(topology))
        result = _run_tpcc(db, scale)
        if reference_tpm is None:
            reference_tpm = result.tpm or 1.0
        table.add_row(label, hop_ms, result.tpm, result.tpm / reference_tpm)
        _attach_observability(table, db, result, label=label)
    return table


# ----------------------------------------------------------------------
# Fig. 6a — TPC-C on One-Region vs Three-City
# ----------------------------------------------------------------------
def fig6a_tpcc_geo(scale: Scale | None = None) -> ExperimentTable:
    """The four-bar comparison: {baseline, GlobalDB} x {One-Region,
    Three-City}, 100% local transactions."""
    scale = scale or Scale.from_env()
    table = ExperimentTable(
        experiment="Fig 6a — TPC-C throughput, One-Region vs Three-City",
        paper_claim=("baseline Three-City ~1/3 of One-Region; GlobalDB "
                     "Three-City ~91% of One-Region; GlobalDB no penalty "
                     "on One-Region"),
        columns=["system", "cluster", "tpm", "vs baseline one-region"])
    configs = [
        ("baseline", "one-region", ClusterConfig.baseline(one_region())),
        ("globaldb", "one-region", ClusterConfig.globaldb(one_region())),
        ("baseline", "three-city", ClusterConfig.baseline(three_city())),
        ("globaldb", "three-city", ClusterConfig.globaldb(three_city())),
    ]
    reference = None
    for system, cluster_name, config in configs:
        db = _build(config)
        result = _run_tpcc(db, scale)
        if reference is None:
            reference = result.tpm or 1.0
        table.add_row(system, cluster_name, result.tpm, result.tpm / reference)
        _attach_observability(table, db, result,
                              label=f"{system} {cluster_name}")
    return table


# ----------------------------------------------------------------------
# Fig. 6b — TPC-C vs injected delay (node remote from the GTM)
# ----------------------------------------------------------------------
def fig6b_tpcc_delay(scale: Scale | None = None,
                     delays_ms: typing.Sequence[float] = DELAY_POINTS_MS
                     ) -> ExperimentTable:
    """Throughput of a CN *not* co-located with the GTM server as tc-style
    delay grows; baseline collapses, GlobalDB stays flat."""
    scale = scale or Scale.from_env()
    table = ExperimentTable(
        experiment="Fig 6b — TPC-C vs network delay (CN remote from GTM)",
        paper_claim="baseline loses up to ~90% at 100 ms; GlobalDB flat",
        columns=["delay_ms", "baseline_tpm", "globaldb_tpm",
                 "baseline_retained", "globaldb_retained"])
    series: dict[str, list[float]] = {"baseline": [], "globaldb": []}
    for delay in delays_ms:
        for system, config_fn in [("baseline", ClusterConfig.baseline),
                                  ("globaldb", ClusterConfig.globaldb)]:
            db = _build(config_fn(one_region()))
            workload = _tpcc(scale)
            workload.setup(db)
            db.inject_delay_all(ms(delay))
            db.run_for(0.3)
            remote_cns = [cn for cn in db.cns if cn.region != db.gtm.region]
            result = run_workload(db, workload, terminals=scale.terminals,
                                  duration_s=scale.duration_s,
                                  warmup_s=scale.warmup_s, setup=False,
                                  cns=remote_cns)
            series[system].append(result.tpm)
            _attach_observability(table, db, result,
                                  label=f"{system} {delay}ms")
    for index, delay in enumerate(delays_ms):
        base0 = series["baseline"][0] or 1.0
        glob0 = series["globaldb"][0] or 1.0
        table.add_row(delay, series["baseline"][index],
                      series["globaldb"][index],
                      series["baseline"][index] / base0,
                      series["globaldb"][index] / glob0)
    return table


# ----------------------------------------------------------------------
# Fig. 6c — read-only TPC-C (Order-Status + Stock-Level, 50% multi-shard)
# ----------------------------------------------------------------------
def fig6c_readonly_tpcc(scale: Scale | None = None,
                        delays_ms: typing.Sequence[float] = DELAY_POINTS_MS
                        ) -> ExperimentTable:
    """Read-only TPC-C (Order-Status + Stock-Level, 50% multi-shard) under
    a delay sweep: GlobalDB's replica reads vs the baseline's remote
    primary reads (paper: up to 14x)."""
    scale = scale or Scale.from_env()
    # The paper drives 600 client terminals; the ratio depends on the
    # client/capacity regime, so pin the client count to the paper's.
    terminals = max(600, scale.terminals)
    table = ExperimentTable(
        experiment="Fig 6c — read-only TPC-C vs network delay",
        paper_claim="GlobalDB up to 14x baseline read throughput",
        columns=["delay_ms", "baseline_tps", "globaldb_tps", "speedup"])
    for delay in delays_ms:
        throughput = {}
        for system, config_fn in [("baseline", ClusterConfig.baseline),
                                  ("globaldb", ClusterConfig.globaldb)]:
            config = config_fn(one_region(), cn_config=READ_BENCH_CN)
            db = _build(config)
            workload = ReadOnlyTpccWorkload(
                TpccConfig(warehouses=scale.warehouses), multi_shard_pct=0.5)
            workload.setup(db)
            db.inject_delay_all(ms(delay))
            db.run_for(0.3)
            result = run_workload(db, workload, terminals=terminals,
                                  duration_s=scale.duration_s,
                                  warmup_s=scale.warmup_s, setup=False)
            throughput[system] = result.throughput_per_s
            _attach_observability(table, db, result,
                                  label=f"{system} {delay}ms")
        table.add_row(delay, throughput["baseline"], throughput["globaldb"],
                      throughput["globaldb"] / max(throughput["baseline"], 0.01))
    return table


# ----------------------------------------------------------------------
# Fig. 6d — Sysbench point select (2/3 remote tuples)
# ----------------------------------------------------------------------
def fig6d_sysbench_point_select(scale: Scale | None = None,
                                delays_ms: typing.Sequence[float] = DELAY_POINTS_MS
                                ) -> ExperimentTable:
    """Sysbench point select with 2/3 remote tuples under a delay sweep
    (paper: up to 8.9x)."""
    scale = scale or Scale.from_env()
    # The paper drives 600 client terminals; the ratio depends on the
    # client/capacity regime, so pin the client count to the paper's.
    terminals = max(600, scale.terminals)
    table = ExperimentTable(
        experiment="Fig 6d — Sysbench point select vs network delay",
        paper_claim="GlobalDB up to 8.9x baseline read throughput",
        columns=["delay_ms", "baseline_tps", "globaldb_tps", "speedup"])
    for delay in delays_ms:
        throughput = {}
        for system, config_fn in [("baseline", ClusterConfig.baseline),
                                  ("globaldb", ClusterConfig.globaldb)]:
            config = config_fn(one_region(), cn_config=READ_BENCH_CN)
            db = _build(config)
            workload = SysbenchWorkload(SysbenchConfig(
                tables=8, rows_per_table=250, remote_pct=2 / 3))
            workload.setup(db)
            db.inject_delay_all(ms(delay))
            db.run_for(0.3)
            result = run_workload(db, workload, terminals=terminals,
                                  duration_s=scale.duration_s,
                                  warmup_s=scale.warmup_s, setup=False)
            throughput[system] = result.throughput_per_s
            _attach_observability(table, db, result,
                                  label=f"{system} {delay}ms")
        table.add_row(delay, throughput["baseline"], throughput["globaldb"],
                      throughput["globaldb"] / max(throughput["baseline"], 0.01))
    return table


# ----------------------------------------------------------------------
# §III-A — zero-downtime migration under load (Figs. 2-3)
# ----------------------------------------------------------------------
def migration_under_load(scale: Scale | None = None,
                         window_ms: float = 100.0) -> ExperimentTable:
    """TPC-C keeps running while the cluster migrates GTM -> GClock and
    back; per-window commit counts show no downtime window."""
    scale = scale or Scale.from_env()
    table = ExperimentTable(
        experiment="Migration — TPC-C commits per 100 ms window across "
                    "GTM->GClock->GTM transitions",
        paper_claim="zero downtime; only stale GTM transactions abort at "
                    "the GClock cutover",
        columns=["window_start_ms", "commits", "phase"])
    db = _build(ClusterConfig.baseline(one_region()))
    workload = _tpcc(scale)
    workload.setup(db)
    env = db.env
    window_ns = ms(window_ms)
    commits_by_window: dict[int, int] = {}
    phase_marks: list[tuple[int, str]] = []

    from repro.errors import TransactionAborted

    def terminal(terminal_id):
        cn = db.cns[terminal_id % len(db.cns)]
        while env.now < stop_at:
            try:
                yield from workload.transaction(cn, terminal_id)
                window = env.now // window_ns
                commits_by_window[window] = commits_by_window.get(window, 0) + 1
            except TransactionAborted:
                pass

    start = env.now
    stop_at = start + round(scale.duration_s * 2 * SECOND)
    for terminal_id in range(scale.terminals // 2):
        env.process(terminal(terminal_id))

    def conductor():
        yield env.timeout(round(scale.duration_s * 0.5 * SECOND))
        phase_marks.append((env.now, "begin gtm->gclock"))
        report = yield from db.migration.to_gclock()
        phase_marks.append((env.now, f"gclock (dwell {report.dwell_ns}ns)"))
        yield env.timeout(round(scale.duration_s * 0.5 * SECOND))
        phase_marks.append((env.now, "begin gclock->gtm"))
        yield from db.migration.to_gtm()
        phase_marks.append((env.now, "gtm"))

    env.process(conductor())
    env.run(until=stop_at)
    aborts_on_cutover = sum(cn.provider.stats.aborts_on_cutover
                            for cn in db.cns)
    aborts_on_cutover += sum(p.provider.stats.aborts_on_cutover
                             for p in db.primaries)
    marks = list(phase_marks)
    for window in sorted(commits_by_window):
        window_start = window * window_ns
        phase = ""
        for when, label in marks:
            if window_start <= when < window_start + window_ns:
                phase = label
        table.add_row(round(ns_to_ms(window_start)),
                      commits_by_window[window], phase)
    zero_windows = sum(1 for count in commits_by_window.values() if count == 0)
    table.note(f"windows with zero commits: {zero_windows}")
    table.note(f"GTM transactions aborted at GClock cutover: {aborts_on_cutover}")
    table.note(f"GTM rejected commits: {db.gtm.rejected_commits}")
    _attach_observability(table, db, label="migration under load")
    return table


# ----------------------------------------------------------------------
# Ablation — log-shipping optimisations (§V-A narrative)
# ----------------------------------------------------------------------
def ablation_log_shipping(scale: Scale | None = None) -> ExperimentTable:
    """Three-City TPC-C under *synchronous* replication with each transport
    optimisation toggled: this is where LZ4/BBR/Nagle-off earn the
    'throughput back to 91%' claim."""
    scale = scale or Scale.from_env()
    table = ExperimentTable(
        experiment="Ablation — log shipping transport (Three-City, sync "
                    "replication)",
        paper_claim="LZ4 + BBR + Nagle-off close most of the Three-City gap",
        columns=["transport", "tpm", "mean_latency_ms", "wire_MB",
                 "compression"])
    variants = [
        ("stock (none+cubic+nagle)", TransportConfig.baseline()),
        ("+lz4", TransportConfig(LZ4, CUBIC, NAGLE_ON)),
        ("+bbr", TransportConfig(NO_COMPRESSION, BBR, NAGLE_ON)),
        ("+nagle-off", TransportConfig(NO_COMPRESSION, CUBIC, NAGLE_OFF)),
        ("optimized (lz4+bbr+off)", TransportConfig.optimized()),
    ]
    for label, transport in variants:
        config = ClusterConfig.baseline(
            three_city(), shipper=ShipperConfig(transport=transport))
        db = _build(config)
        result = _run_tpcc(db, scale)
        wire_mb = sum(shipper.wire_bytes_total for shipper in db.shippers) / 1e6
        ratios = [shipper.compression_ratio_achieved()
                  for shipper in db.shippers if shipper.wire_bytes_total]
        ratio = sum(ratios) / len(ratios) if ratios else 1.0
        table.add_row(label, result.tpm, result.stats.mean_latency_ms,
                      wire_mb, ratio)
        _attach_observability(table, db, result, label=label)
    return table


# ----------------------------------------------------------------------
# Ablation — ROR machinery (§IV)
# ----------------------------------------------------------------------
def ablation_ror(scale: Scale | None = None) -> ExperimentTable:
    """Two sub-ablations of the §IV machinery on Three-City:

    - *routing*: read-only TPC-C with skyline+replicas vs. all-primaries
      (where the read throughput comes from);
    - *freshness*: full (write-heavy) TPC-C with parallel vs. throttled
      serial replay (how replay speed bounds the RCP's lag behind the
      primaries' frontier).
    """
    scale = scale or Scale.from_env()
    table = ExperimentTable(
        experiment="Ablation — reads-on-replica machinery (Three-City)",
        paper_claim="replica reads + skyline routing dominate primary reads; "
                    "parallel replay keeps replicas (and the RCP) fresh",
        columns=["variant", "workload", "throughput_per_s", "replica_reads",
                 "primary_reads", "rcp_lag_ms"])

    def measure(db, workload):
        result = run_workload(db, workload, terminals=scale.terminals,
                              duration_s=scale.duration_s,
                              warmup_s=scale.warmup_s)
        ror_reads = sum(cn.ror_reads for cn in db.cns)
        fallback = sum(cn.primary_fallback_reads for cn in db.cns)
        frontier = max(primary.engine.last_commit_ts
                       for primary in db.primaries)
        rcp = max(cn.rcp_state.rcp for cn in db.cns)
        return result, ror_reads, fallback, ns_to_ms(max(0, frontier - rcp))

    # --- routing sub-ablation (read-only workload) ---------------------
    for label, ror in [("skyline + replicas", True),
                       ("primaries only (no ROR)", False)]:
        db = _build(ClusterConfig.globaldb(three_city(), ror_enabled=ror))
        workload = ReadOnlyTpccWorkload(
            TpccConfig(warehouses=scale.warehouses), multi_shard_pct=0.5)
        result, ror_reads, fallback, lag = measure(db, workload)
        table.add_row(label, "read-only tpcc", result.throughput_per_s,
                      ror_reads, fallback, lag)
        _attach_observability(table, db, result, label=label)

    # --- freshness sub-ablation (write-heavy workload) ------------------
    for label, apply_ns, parallelism in [
            ("parallel replay (x8)", us(2), 8),
            ("throttled serial replay", us(150), 1)]:
        db = _build(ClusterConfig.globaldb(three_city()))
        for replica_list in db.replicas.values():
            for replica in replica_list:
                replica.replayer.apply_ns_per_record = apply_ns
                replica.replayer.parallelism = parallelism
        workload = _tpcc(scale)
        result, ror_reads, fallback, lag = measure(db, workload)
        table.add_row(label, "full tpcc", result.throughput_per_s,
                      ror_reads, fallback, lag)
        _attach_observability(table, db, result, label=label)
    table.note("primary_reads on the read-only rows are mostly skyline "
               "choices of the (local, freshest) primary, not failures")
    return table
