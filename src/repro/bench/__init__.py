"""Benchmark harness: experiment definitions for every figure in §V.

Each experiment function builds the cluster(s), runs the workload, and
returns an :class:`~repro.bench.harness.ExperimentTable` with the same
rows/series the paper reports. The ``benchmarks/`` pytest-benchmark suite
is a thin wrapper that runs these and prints the tables; they can also be
called directly (see ``examples/``).
"""

from repro.bench.harness import ExperimentTable, Scale
from repro.bench.experiments import (
    fig1a_motivation,
    fig6a_tpcc_geo,
    fig6b_tpcc_delay,
    fig6c_readonly_tpcc,
    fig6d_sysbench_point_select,
    migration_under_load,
    ablation_log_shipping,
    ablation_ror,
)

__all__ = [
    "ExperimentTable",
    "Scale",
    "fig1a_motivation",
    "fig6a_tpcc_geo",
    "fig6b_tpcc_delay",
    "fig6c_readonly_tpcc",
    "fig6d_sysbench_point_select",
    "migration_under_load",
    "ablation_log_shipping",
    "ablation_ror",
]
