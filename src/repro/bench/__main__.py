"""Command-line experiment runner.

Usage::

    python -m repro.bench list
    python -m repro.bench fig6a
    python -m repro.bench fig6d --scale full
    python -m repro.bench all

Each experiment prints the same paper-style table the benchmark suite
records, without pytest in the way.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import (
    Scale,
    ablation_log_shipping,
    ablation_ror,
    fig1a_motivation,
    fig6a_tpcc_geo,
    fig6b_tpcc_delay,
    fig6c_readonly_tpcc,
    fig6d_sysbench_point_select,
    migration_under_load,
)

EXPERIMENTS = {
    "fig1a": fig1a_motivation,
    "fig6a": fig6a_tpcc_geo,
    "fig6b": fig6b_tpcc_delay,
    "fig6c": fig6c_readonly_tpcc,
    "fig6d": fig6d_sysbench_point_select,
    "migration": migration_under_load,
    "shipping": ablation_log_shipping,
    "ror": ablation_ror,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce GaussDB-Global's evaluation figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="which experiment to run")
    parser.add_argument("--scale", choices=["quick", "full"], default="quick",
                        help="client scale (default: quick)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            doc_lines = (fn.__doc__ or "").strip().splitlines()
            summary = doc_lines[0] if doc_lines else fn.__name__
            print(f"{name:10s} {summary}")
        return 0

    scale = Scale.full() if args.scale == "full" else Scale.quick()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        # Host-side progress timing only — never feeds simulated state.
        started = time.time()  # simlint: ignore[SIM101]
        table = EXPERIMENTS[name](scale)
        print(table.render())
        print(f"   ({time.time() - started:.1f}s wall)\n")  # simlint: ignore[SIM101]
    return 0


if __name__ == "__main__":
    sys.exit(main())
