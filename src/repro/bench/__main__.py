"""Command-line experiment runner.

Usage::

    python -m repro.bench list
    python -m repro.bench fig6a
    python -m repro.bench fig6d --scale full
    python -m repro.bench perf --scale quick
    python -m repro.bench all

Each experiment prints the same paper-style table the benchmark suite
records, without pytest in the way. ``perf`` is the wall-clock performance
harness (writes ``BENCH_PERF.json``); see ``repro.bench.perf``.

Scale selection: ``--scale`` wins when given; otherwise the
``REPRO_BENCH_SCALE`` environment variable (via :meth:`Scale.from_env`,
which rejects unknown values); otherwise quick.

Set ``REPRO_PROFILE=1`` to wrap each experiment in :mod:`cProfile` and
dump ``bench_<name>.prof`` next to the results (load with ``pstats`` or
``snakeviz``). Profiling is host-side tooling only — it never feeds
simulated state.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import (
    Scale,
    ablation_log_shipping,
    ablation_ror,
    fig1a_motivation,
    fig6a_tpcc_geo,
    fig6b_tpcc_delay,
    fig6c_readonly_tpcc,
    fig6d_sysbench_point_select,
    migration_under_load,
)
from repro.bench.perf import render as render_perf
from repro.bench.perf import run_perf

EXPERIMENTS = {
    "fig1a": fig1a_motivation,
    "fig6a": fig6a_tpcc_geo,
    "fig6b": fig6b_tpcc_delay,
    "fig6c": fig6c_readonly_tpcc,
    "fig6d": fig6d_sysbench_point_select,
    "migration": migration_under_load,
    "shipping": ablation_log_shipping,
    "ror": ablation_ror,
}


def _profiled(fn, name: str):
    """Run ``fn()`` under cProfile when REPRO_PROFILE=1, dumping
    ``bench_<name>.prof`` next to the results (current directory)."""
    if os.environ.get("REPRO_PROFILE") != "1":
        return fn()
    import cProfile

    profiler = cProfile.Profile()  # simlint: ignore[SIM101]
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        path = f"bench_{name}.prof"
        profiler.dump_stats(path)
        print(f"   (profile written to {path})", file=sys.stderr)


def _resolve_scale(flag: str | None) -> Scale:
    """``--scale`` beats ``REPRO_BENCH_SCALE`` beats quick."""
    if flag is not None:
        return Scale.full() if flag == "full" else Scale.quick()
    return Scale.from_env()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce GaussDB-Global's evaluation figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list", "perf"],
                        help="which experiment to run ('perf' = wall-clock "
                             "performance harness)")
    parser.add_argument("--scale", choices=["quick", "full"], default=None,
                        help="client scale; overrides REPRO_BENCH_SCALE "
                             "(default: the environment variable, else quick)")
    parser.add_argument("--stamp", default=None,
                        help="label for the BENCH_HISTORY.jsonl record "
                             "(perf only; default: host UTC time)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="perf only: run the scenario N times and "
                             "report the best run (suppresses host noise)")
    parser.add_argument("--check", action="store_true",
                        help="perf only: fail (exit 1) if events/s drops "
                             ">10%% below the last same-scale "
                             "BENCH_HISTORY.jsonl record; set "
                             "REPRO_PERF_ALLOW_REGRESSION=1 to override")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            doc_lines = (fn.__doc__ or "").strip().splitlines()
            summary = doc_lines[0] if doc_lines else fn.__name__
            print(f"{name:10s} {summary}")
        print("perf       Wall-clock perf harness -> BENCH_PERF.json")
        return 0

    if args.experiment == "perf":
        # perf has its own scales: quick (CI smoke) and standard (the
        # baseline-comparison scenario). --scale full maps to standard.
        perf_scale = (args.scale if args.scale is not None
                      else _resolve_scale(None).name)
        stamp = args.stamp
        if stamp is None:
            # Host-side wall time labelling the history record only —
            # never feeds simulated state.
            now_utc = time.gmtime()  # simlint: ignore[SIM101]
            stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", now_utc)
        report = _profiled(
            lambda: run_perf(perf_scale, stamp=stamp, repeat=args.repeat,
                             check=args.check), "perf")
        print(render_perf(report))
        check = report.get("check")
        if check is not None and not check["ok"]:
            return 1
        return 0

    scale = _resolve_scale(args.scale)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        # Host-side progress timing only — never feeds simulated state.
        started = time.time()  # simlint: ignore[SIM101]
        table = _profiled(lambda fn=EXPERIMENTS[name]: fn(scale), name)
        print(table.render())
        print(f"   ({time.time() - started:.1f}s wall)\n")  # simlint: ignore[SIM101]
    return 0


if __name__ == "__main__":
    sys.exit(main())
