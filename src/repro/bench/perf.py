"""Wall-clock performance harness: ``python -m repro.bench perf``.

Every other module in ``repro.bench`` measures *simulated* quantities —
tpmC, latency percentiles, staleness — which are deterministic and
machine-independent. This one measures the opposite: how fast the host
can push simulated events through the kernel. It runs a fixed-seed
scenario (TPC-C + Sysbench + prepared SQL point-selects, the three
workload shapes the evaluation figures use), reports events/sec,
committed-transactions per wall-second, and peak RSS, and writes the lot
to ``BENCH_PERF.json`` so the perf trajectory is tracked in-repo.

Two guarantees make the numbers trustworthy:

- the scenario is seed-fixed and the harness re-runs the determinism
  smoke scenario (:func:`repro.lint.determinism.smoke_run`), failing hard
  if its trace digest differs from the recorded pre-optimization digest —
  an optimization that changes simulated histories is a bug, not a win;
- ``BASELINES`` pins one reference measurement *per scale*, so the
  reported speedup always compares like with like (an earlier harness
  compared quick-scale runs against the standard-scale baseline, which
  made the headline number meaningless). Wall-clock numbers are
  machine-dependent; compare the ratio, not the absolute values, across
  machines.

Two knobs tame host noise: ``repeat`` runs the scenario N times and
reports the best run (single-machine wall clocks on shared hosts swing
+-20%; best-of-N converges on the machine's actual capability), and
``check`` compares the result against the last same-scale record in
``BENCH_HISTORY.jsonl``, failing on a >10% drop unless the
``REPRO_PERF_ALLOW_REGRESSION`` environment variable acknowledges an
intentional trade-off.

All wall-clock reads live here, on the host side of the sim boundary,
and are pragma'd for simlint like the ones in ``__main__``.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import resource
import time
import typing
from dataclasses import dataclass

from repro.sim.units import SECOND

#: Trace digest of ``repro.lint.determinism.smoke_run()``. The calendar-queue
#: kernel, object pooling and cache fast paths must reproduce it bit-for-bit
#: (also enforced by tests/test_perf_caches.py). Re-pinned when the
#: group-commit pipeline landed: GTM service windows, deferred shipper flush
#: timers and the shared quorum done-event intentionally change *when*
#: things happen (batched timestamps, one flush timer per window), so the
#: simulated history legitimately differs from the pre-group-commit
#: recording. The digest below was verified identical across repeated runs.
PRE_OPT_SMOKE_DIGEST = (
    "bb786c3ce5e4d3299a89a7ddc09474a030e4a186467ff7713a335fecb0e55b4a")

#: Reference measurements, one per scale, so speedups compare like with
#: like. ``standard`` is the pre-optimization capture from the hot-path
#: work's reference host; ``quick`` was captured by running the PR-4-tip
#: harness (commit 6cc6ef5, the same host as the current numbers, best of
#: three) because the pre-optimization kernel predates the quick scenario.
#: Each entry's ``recorded_at`` says what it is — the speedup is only as
#: meaningful as its label.
BASELINES: dict[str, dict[str, typing.Any]] = {
    "standard": {
        "recorded_at": "pre-optimization (PR 4 baseline)",
        "scale": "standard",
        "events_per_sec": 74340.9,
        "committed_txns_per_wall_s": 5323.8,
        "peak_rss_kb": 335512,
    },
    "quick": {
        "recorded_at": "PR 4 tip (6cc6ef5), best of 3, dev host",
        "scale": "quick",
        "events_per_sec": 213932.6,
        "committed_txns_per_wall_s": 9550.4,
        "peak_rss_kb": 50064,
    },
}

#: Backwards-compatible alias: the standard-scale reference.
BASELINE = BASELINES["standard"]

#: A run is a regression when events/s drops more than this far below the
#: last same-scale BENCH_HISTORY.jsonl record (the ``--check`` gate).
DEFAULT_MAX_DROP_PCT = 10.0

#: Setting this environment variable (to anything non-empty) turns a
#: failed ``--check`` into a waved-through, recorded regression.
ALLOW_REGRESSION_ENV = "REPRO_PERF_ALLOW_REGRESSION"


@dataclass(frozen=True)
class PerfScale:
    """Scenario sizing. ``standard`` is the reference scenario acceptance
    numbers quote; ``quick`` keeps the CI perf-smoke step under a minute."""

    name: str
    tpcc_warehouses: int
    tpcc_terminals: int
    tpcc_duration_s: float
    sysbench_tables: int
    sysbench_rows: int
    sysbench_terminals: int
    sysbench_duration_s: float
    sql_rows: int
    sql_terminals: int
    sql_duration_s: float

    @classmethod
    def quick(cls) -> "PerfScale":
        return cls(name="quick", tpcc_warehouses=2, tpcc_terminals=16,
                   tpcc_duration_s=0.3, sysbench_tables=2, sysbench_rows=80,
                   sysbench_terminals=16, sysbench_duration_s=0.3,
                   sql_rows=120, sql_terminals=8, sql_duration_s=0.25)

    @classmethod
    def standard(cls) -> "PerfScale":
        return cls(name="standard", tpcc_warehouses=6, tpcc_terminals=60,
                   tpcc_duration_s=1.0, sysbench_tables=6, sysbench_rows=300,
                   sysbench_terminals=80, sysbench_duration_s=1.0,
                   sql_rows=400, sql_terminals=24, sql_duration_s=0.5)


def events_scheduled(env) -> int:
    """Total events ever scheduled on ``env`` (the kernel's seq counter)."""
    seq = env._seq
    if isinstance(seq, int):
        return seq
    return next(seq)  # pre-fast-path kernels used itertools.count


def _phase_tpcc(scale: PerfScale) -> dict:
    from repro import ClusterConfig, build_cluster, one_region
    from repro.workloads import TpccConfig, TpccWorkload, run_workload

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=0))
    workload = TpccWorkload(TpccConfig(warehouses=scale.tpcc_warehouses,
                                       seed=42))
    started = time.perf_counter()  # simlint: ignore[SIM101]
    result = run_workload(db, workload, terminals=scale.tpcc_terminals,
                          duration_s=scale.tpcc_duration_s, warmup_s=0.1)
    wall_s = time.perf_counter() - started  # simlint: ignore[SIM101]
    return {"phase": "tpcc", "wall_s": wall_s,
            "events": events_scheduled(db.env),
            "committed": result.stats.committed,
            "sim_ns": db.env.now}


def _phase_sysbench(scale: PerfScale) -> dict:
    from repro import ClusterConfig, build_cluster, one_region
    from repro.workloads import SysbenchConfig, SysbenchWorkload, run_workload

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=3))
    workload = SysbenchWorkload(SysbenchConfig(
        tables=scale.sysbench_tables, rows_per_table=scale.sysbench_rows))
    started = time.perf_counter()  # simlint: ignore[SIM101]
    result = run_workload(db, workload, terminals=scale.sysbench_terminals,
                          duration_s=scale.sysbench_duration_s, warmup_s=0.1)
    wall_s = time.perf_counter() - started  # simlint: ignore[SIM101]
    return {"phase": "sysbench", "wall_s": wall_s,
            "events": events_scheduled(db.env),
            "committed": result.stats.committed,
            "sim_ns": db.env.now}


def _phase_sql(scale: PerfScale) -> dict:
    """Prepared point-selects through the SQL executor (the Sysbench
    dominant op as the paper's Fig. 6d issues it: one parsed statement,
    re-executed with fresh parameters)."""
    from repro import ClusterConfig, build_cluster, one_region
    from repro.sql import SqlExecutor, parse

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=1))
    session = db.session()
    session.create_table("points", [("id", "int"), ("val", "int")],
                         primary_key=["id"])
    session.begin()
    for i in range(scale.sql_rows):
        session.insert("points", {"id": i, "val": i * 7})
    session.commit()
    db.run_for(0.2)  # let replication settle so ROR reads route freely

    env = db.env
    statement = parse("SELECT id, val FROM points WHERE id = ?")
    stop_at = env.now + round(scale.sql_duration_s * SECOND)
    executed = [0]

    def terminal(terminal_id: int, cn):
        executor = SqlExecutor(cn)
        sequence = 0
        while env.now < stop_at:
            key = (terminal_id * 7919 + sequence) % scale.sql_rows
            rows = yield from executor.g_execute(statement, (key,))
            assert rows and rows[0]["val"] == key * 7
            sequence += 1
            executed[0] += 1

    for terminal_id in range(scale.sql_terminals):
        env.process(terminal(terminal_id, db.cns[terminal_id % len(db.cns)]))
    started = time.perf_counter()  # simlint: ignore[SIM101]
    env.run(until=stop_at)
    wall_s = time.perf_counter() - started  # simlint: ignore[SIM101]
    return {"phase": "sql", "wall_s": wall_s,
            "events": events_scheduled(env),
            "committed": executed[0],
            "sim_ns": env.now}


PHASES = (_phase_tpcc, _phase_sysbench, _phase_sql)


@contextlib.contextmanager
def _collector_tuned():
    """Pause the cyclic collector for one phase (host-side tuning only —
    it cannot affect simulated histories, which the digest check proves).

    Steady-state DES allocation is the worst case for generational GC:
    the long-lived cluster state gets rescanned on every collection while
    the per-event churn (events, messages, generator frames) is acyclic
    by construction — ``step()`` clears each event's callback list, so
    reference counting reclaims it all. Freezing survivors and disabling
    collection for the timed region removes that rescan cost (roughly a
    third of the sysbench phase); everything is restored, and a full
    collection run, between phases."""
    gc.collect()
    gc.freeze()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.unfreeze()
        gc.collect()


def run_scenario(scale: PerfScale) -> dict:
    """Run every phase; aggregate events/sec and committed per wall-sec."""
    phases = []
    for phase in PHASES:
        with _collector_tuned():
            phases.append(phase(scale))
    wall_s = sum(p["wall_s"] for p in phases)
    events = sum(p["events"] for p in phases)
    committed = sum(p["committed"] for p in phases)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "scale": scale.name,
        "wall_s": round(wall_s, 3),
        "events": events,
        "committed": committed,
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "committed_txns_per_wall_s": round(committed / wall_s, 1)
        if wall_s else 0.0,
        "peak_rss_kb": peak_rss_kb,
        "phases": [{**p, "wall_s": round(p["wall_s"], 3)} for p in phases],
    }


def check_determinism() -> dict:
    """Re-run the lint smoke scenario and compare against the recorded
    pre-optimization digest. Returns the check summary; raises if the
    simulated history changed."""
    from repro.lint.determinism import smoke_run

    summary = smoke_run()
    ok = summary["digest"] == PRE_OPT_SMOKE_DIGEST
    if not ok:
        raise RuntimeError(
            "determinism digest changed: expected "
            f"{PRE_OPT_SMOKE_DIGEST[:16]}…, got {summary['digest'][:16]}… — "
            "an optimization altered the simulated history")
    return {"ok": ok, "digest": summary["digest"],
            "spans": summary["spans"], "committed": summary["committed"]}


def last_history_record(history_path: str,
                        scale_name: str) -> dict | None:
    """Most recent BENCH_HISTORY.jsonl record for ``scale_name``, or None
    (no file, or no record at that scale). Malformed lines are skipped."""
    try:
        with open(history_path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return None
    for line in reversed(lines):
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("scale") == scale_name:
            return record
    return None


def check_against_history(current: dict, history_path: str | None,
                          max_drop_pct: float = DEFAULT_MAX_DROP_PCT) -> dict:
    """The CI perf-regression gate: compare ``current`` against the last
    same-scale history record. A drop of more than ``max_drop_pct`` fails
    unless the REPRO_PERF_ALLOW_REGRESSION env var waves it through."""
    reference = (last_history_record(history_path, current["scale"])
                 if history_path else None)
    result = {
        "enabled": True,
        "max_drop_pct": max_drop_pct,
        "reference": reference,
        "ok": True,
        "drop_pct": None,
        "allowed_by_env": False,
    }
    if not reference or not reference.get("events_per_sec"):
        return result  # nothing to compare against: first run at this scale
    drop_pct = round(100.0 * (1 - current["events_per_sec"]
                              / reference["events_per_sec"]), 1)
    result["drop_pct"] = drop_pct
    if drop_pct > max_drop_pct:
        if os.environ.get(ALLOW_REGRESSION_ENV):
            result["allowed_by_env"] = True
        else:
            result["ok"] = False
    return result


def run_perf(scale_name: str = "standard",
             out_path: str = "BENCH_PERF.json",
             history_path: str | None = "BENCH_HISTORY.jsonl",
             stamp: str | None = None,
             repeat: int = 1,
             check: bool = False) -> dict:
    """The ``python -m repro.bench perf`` entry point.

    Besides overwriting ``out_path`` with the full report, appends a
    one-line summary record to ``history_path`` (None disables) so the
    perf *trajectory* accumulates in-repo across runs. ``stamp`` is a
    caller-supplied timestamp/label — the harness never reads wall clocks
    itself beyond the perf measurement.

    ``repeat`` > 1 runs the scenario that many times and reports the best
    run by events/s (host-noise suppression; the runs' individual rates
    are kept in the report). ``check`` compares the result against the
    last same-scale history record *before* appending the new one and
    marks the report; callers decide what a failed check does (the CLI
    exits non-zero).
    """
    scale = PerfScale.quick() if scale_name == "quick" else PerfScale.standard()
    determinism = check_determinism()
    runs = [run_scenario(scale) for _ in range(max(1, repeat))]
    current = max(runs, key=lambda run: run["events_per_sec"])
    baseline = BASELINES.get(scale.name)
    baseline_eps = (baseline or {}).get("events_per_sec") or 0.0
    speedup = (current["events_per_sec"] / baseline_eps
               if baseline_eps else None)
    report = {
        "schema": 2,
        "scenario": "repro.bench.perf fixed-seed TPC-C + Sysbench + SQL",
        "baseline": dict(baseline) if baseline else None,
        "current": {**current,
                    "speedup_events_per_sec":
                        round(speedup, 2) if speedup else None},
        "determinism": determinism,
        "repeat": len(runs),
        "run_events_per_sec": [run["events_per_sec"] for run in runs],
    }
    if check:
        report["check"] = check_against_history(current, history_path)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if history_path:
        record = {
            "stamp": stamp,
            "scale": current["scale"],
            "events_per_sec": current["events_per_sec"],
            "committed_txns_per_wall_s": current["committed_txns_per_wall_s"],
            "peak_rss_kb": current["peak_rss_kb"],
            "digest_ok": determinism["ok"],
        }
        with open(history_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return report


def render(report: dict) -> str:
    current = report["current"]
    baseline = report.get("baseline")
    lines = [
        "== perf: simulator hot-path throughput ==",
        f"   scale: {current['scale']}   wall: {current['wall_s']}s   "
        f"peak RSS: {current['peak_rss_kb']} kB",
    ]
    if baseline:
        lines += [
            f"   events/sec:            {current['events_per_sec']:>12,.1f}"
            f"   (baseline {baseline['events_per_sec']:,.1f}"
            f" @ {baseline['scale']})",
            f"   committed txns/wall-s: "
            f"{current['committed_txns_per_wall_s']:>12,.1f}"
            f"   (baseline {baseline['committed_txns_per_wall_s']:,.1f})",
        ]
    else:
        lines += [
            f"   events/sec:            {current['events_per_sec']:>12,.1f}"
            "   (no recorded baseline for this scale)",
            f"   committed txns/wall-s: "
            f"{current['committed_txns_per_wall_s']:>12,.1f}",
        ]
    speedup = current.get("speedup_events_per_sec")
    if speedup and baseline:
        lines.append(f"   speedup vs {baseline['recorded_at']}: {speedup}x")
    if report.get("repeat", 1) > 1:
        rates = ", ".join(f"{rate:,.0f}"
                          for rate in report["run_events_per_sec"])
        lines.append(f"   best of {report['repeat']} runs: [{rates}]")
    for phase in current["phases"]:
        lines.append(
            f"   - {phase['phase']:<9s} {phase['wall_s']:>7.3f}s wall  "
            f"{phase['events']:>9,d} events  "
            f"{phase['committed']:>6,d} committed")
    lines.append(
        f"   determinism: digest {report['determinism']['digest'][:16]}… "
        f"matches pinned recording "
        f"({report['determinism']['spans']} spans)")
    check = report.get("check")
    if check:
        reference = check.get("reference")
        if not reference:
            lines.append("   check: no prior history record at this scale "
                         "— gate passes vacuously")
        elif check["ok"] and not check["allowed_by_env"]:
            lines.append(
                f"   check: OK ({-check['drop_pct']:+.1f}% vs last history "
                f"record {reference.get('stamp')})")
        elif check["allowed_by_env"]:
            lines.append(
                f"   check: REGRESSION {check['drop_pct']:.1f}% allowed by "
                f"{ALLOW_REGRESSION_ENV}")
        else:
            lines.append(
                f"   check: FAIL — events/s dropped {check['drop_pct']:.1f}% "
                f"vs last history record {reference.get('stamp')} "
                f"(limit {check['max_drop_pct']:.0f}%); set "
                f"{ALLOW_REGRESSION_ENV}=1 if intentional")
    return "\n".join(lines)
