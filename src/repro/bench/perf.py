"""Wall-clock performance harness: ``python -m repro.bench perf``.

Every other module in ``repro.bench`` measures *simulated* quantities —
tpmC, latency percentiles, staleness — which are deterministic and
machine-independent. This one measures the opposite: how fast the host
can push simulated events through the kernel. It runs a fixed-seed
scenario (TPC-C + Sysbench + prepared SQL point-selects, the three
workload shapes the evaluation figures use), reports events/sec,
committed-transactions per wall-second, and peak RSS, and writes the lot
to ``BENCH_PERF.json`` so the perf trajectory is tracked in-repo.

Two guarantees make the numbers trustworthy:

- the scenario is seed-fixed and the harness re-runs the determinism
  smoke scenario (:func:`repro.lint.determinism.smoke_run`), failing hard
  if its trace digest differs from the recorded pre-optimization digest —
  an optimization that changes simulated histories is a bug, not a win;
- ``BASELINE`` pins the pre-optimization (PR 4) measurement of the very
  same scenario, so the report always shows the speedup since the perf
  work started. Wall-clock numbers are machine-dependent; compare the
  ratio, not the absolute values, across machines.

All wall-clock reads live here, on the host side of the sim boundary,
and are pragma'd for simlint like the ones in ``__main__``.
"""

from __future__ import annotations

import contextlib
import gc
import json
import resource
import time
import typing
from dataclasses import dataclass

from repro.sim.units import SECOND

#: Trace digest of ``repro.lint.determinism.smoke_run()`` captured at the
#: pre-optimization commit. The kernel/storage fast paths must reproduce
#: it bit-for-bit (also enforced by tests/test_perf_caches.py).
PRE_OPT_SMOKE_DIGEST = (
    "7e7216a0f3b6ca6ce9d12bae40c217688204382707903cff761109702b4251a0")

#: Pre-optimization measurement of this module's ``standard`` scenario,
#: captured on the CI reference host immediately before the hot-path work
#: landed. ``events_per_sec`` is the headline number the speedup is
#: computed against.
BASELINE: dict[str, typing.Any] = {
    "recorded_at": "pre-optimization (PR 4 baseline)",
    "scale": "standard",
    "events_per_sec": 74340.9,
    "committed_txns_per_wall_s": 5323.8,
    "peak_rss_kb": 335512,
}


@dataclass(frozen=True)
class PerfScale:
    """Scenario sizing. ``standard`` is the reference scenario acceptance
    numbers quote; ``quick`` keeps the CI perf-smoke step under a minute."""

    name: str
    tpcc_warehouses: int
    tpcc_terminals: int
    tpcc_duration_s: float
    sysbench_tables: int
    sysbench_rows: int
    sysbench_terminals: int
    sysbench_duration_s: float
    sql_rows: int
    sql_terminals: int
    sql_duration_s: float

    @classmethod
    def quick(cls) -> "PerfScale":
        return cls(name="quick", tpcc_warehouses=2, tpcc_terminals=16,
                   tpcc_duration_s=0.3, sysbench_tables=2, sysbench_rows=80,
                   sysbench_terminals=16, sysbench_duration_s=0.3,
                   sql_rows=120, sql_terminals=8, sql_duration_s=0.25)

    @classmethod
    def standard(cls) -> "PerfScale":
        return cls(name="standard", tpcc_warehouses=6, tpcc_terminals=60,
                   tpcc_duration_s=1.0, sysbench_tables=6, sysbench_rows=300,
                   sysbench_terminals=80, sysbench_duration_s=1.0,
                   sql_rows=400, sql_terminals=24, sql_duration_s=0.5)


def events_scheduled(env) -> int:
    """Total events ever scheduled on ``env`` (the kernel's seq counter)."""
    seq = env._seq
    if isinstance(seq, int):
        return seq
    return next(seq)  # pre-fast-path kernels used itertools.count


def _phase_tpcc(scale: PerfScale) -> dict:
    from repro import ClusterConfig, build_cluster, one_region
    from repro.workloads import TpccConfig, TpccWorkload, run_workload

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=0))
    workload = TpccWorkload(TpccConfig(warehouses=scale.tpcc_warehouses,
                                       seed=42))
    started = time.perf_counter()  # simlint: ignore[SIM101]
    result = run_workload(db, workload, terminals=scale.tpcc_terminals,
                          duration_s=scale.tpcc_duration_s, warmup_s=0.1)
    wall_s = time.perf_counter() - started  # simlint: ignore[SIM101]
    return {"phase": "tpcc", "wall_s": wall_s,
            "events": events_scheduled(db.env),
            "committed": result.stats.committed,
            "sim_ns": db.env.now}


def _phase_sysbench(scale: PerfScale) -> dict:
    from repro import ClusterConfig, build_cluster, one_region
    from repro.workloads import SysbenchConfig, SysbenchWorkload, run_workload

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=3))
    workload = SysbenchWorkload(SysbenchConfig(
        tables=scale.sysbench_tables, rows_per_table=scale.sysbench_rows))
    started = time.perf_counter()  # simlint: ignore[SIM101]
    result = run_workload(db, workload, terminals=scale.sysbench_terminals,
                          duration_s=scale.sysbench_duration_s, warmup_s=0.1)
    wall_s = time.perf_counter() - started  # simlint: ignore[SIM101]
    return {"phase": "sysbench", "wall_s": wall_s,
            "events": events_scheduled(db.env),
            "committed": result.stats.committed,
            "sim_ns": db.env.now}


def _phase_sql(scale: PerfScale) -> dict:
    """Prepared point-selects through the SQL executor (the Sysbench
    dominant op as the paper's Fig. 6d issues it: one parsed statement,
    re-executed with fresh parameters)."""
    from repro import ClusterConfig, build_cluster, one_region
    from repro.sql import SqlExecutor, parse

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=1))
    session = db.session()
    session.create_table("points", [("id", "int"), ("val", "int")],
                         primary_key=["id"])
    session.begin()
    for i in range(scale.sql_rows):
        session.insert("points", {"id": i, "val": i * 7})
    session.commit()
    db.run_for(0.2)  # let replication settle so ROR reads route freely

    env = db.env
    statement = parse("SELECT id, val FROM points WHERE id = ?")
    stop_at = env.now + round(scale.sql_duration_s * SECOND)
    executed = [0]

    def terminal(terminal_id: int, cn):
        executor = SqlExecutor(cn)
        sequence = 0
        while env.now < stop_at:
            key = (terminal_id * 7919 + sequence) % scale.sql_rows
            rows = yield from executor.g_execute(statement, (key,))
            assert rows and rows[0]["val"] == key * 7
            sequence += 1
            executed[0] += 1

    for terminal_id in range(scale.sql_terminals):
        env.process(terminal(terminal_id, db.cns[terminal_id % len(db.cns)]))
    started = time.perf_counter()  # simlint: ignore[SIM101]
    env.run(until=stop_at)
    wall_s = time.perf_counter() - started  # simlint: ignore[SIM101]
    return {"phase": "sql", "wall_s": wall_s,
            "events": events_scheduled(env),
            "committed": executed[0],
            "sim_ns": env.now}


PHASES = (_phase_tpcc, _phase_sysbench, _phase_sql)


@contextlib.contextmanager
def _collector_tuned():
    """Pause the cyclic collector for one phase (host-side tuning only —
    it cannot affect simulated histories, which the digest check proves).

    Steady-state DES allocation is the worst case for generational GC:
    the long-lived cluster state gets rescanned on every collection while
    the per-event churn (events, messages, generator frames) is acyclic
    by construction — ``step()`` clears each event's callback list, so
    reference counting reclaims it all. Freezing survivors and disabling
    collection for the timed region removes that rescan cost (roughly a
    third of the sysbench phase); everything is restored, and a full
    collection run, between phases."""
    gc.collect()
    gc.freeze()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.unfreeze()
        gc.collect()


def run_scenario(scale: PerfScale) -> dict:
    """Run every phase; aggregate events/sec and committed per wall-sec."""
    phases = []
    for phase in PHASES:
        with _collector_tuned():
            phases.append(phase(scale))
    wall_s = sum(p["wall_s"] for p in phases)
    events = sum(p["events"] for p in phases)
    committed = sum(p["committed"] for p in phases)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "scale": scale.name,
        "wall_s": round(wall_s, 3),
        "events": events,
        "committed": committed,
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "committed_txns_per_wall_s": round(committed / wall_s, 1)
        if wall_s else 0.0,
        "peak_rss_kb": peak_rss_kb,
        "phases": [{**p, "wall_s": round(p["wall_s"], 3)} for p in phases],
    }


def check_determinism() -> dict:
    """Re-run the lint smoke scenario and compare against the recorded
    pre-optimization digest. Returns the check summary; raises if the
    simulated history changed."""
    from repro.lint.determinism import smoke_run

    summary = smoke_run()
    ok = summary["digest"] == PRE_OPT_SMOKE_DIGEST
    if not ok:
        raise RuntimeError(
            "determinism digest changed: expected "
            f"{PRE_OPT_SMOKE_DIGEST[:16]}…, got {summary['digest'][:16]}… — "
            "an optimization altered the simulated history")
    return {"ok": ok, "digest": summary["digest"],
            "spans": summary["spans"], "committed": summary["committed"]}


def run_perf(scale_name: str = "standard",
             out_path: str = "BENCH_PERF.json",
             history_path: str | None = "BENCH_HISTORY.jsonl",
             stamp: str | None = None) -> dict:
    """The ``python -m repro.bench perf`` entry point.

    Besides overwriting ``out_path`` with the full report, appends a
    one-line summary record to ``history_path`` (None disables) so the
    perf *trajectory* accumulates in-repo across runs. ``stamp`` is a
    caller-supplied timestamp/label — the harness never reads wall clocks
    itself beyond the perf measurement.
    """
    scale = PerfScale.quick() if scale_name == "quick" else PerfScale.standard()
    determinism = check_determinism()
    current = run_scenario(scale)
    baseline_eps = BASELINE.get("events_per_sec") or 0.0
    speedup = (current["events_per_sec"] / baseline_eps
               if baseline_eps else None)
    report = {
        "schema": 1,
        "scenario": "repro.bench.perf fixed-seed TPC-C + Sysbench + SQL",
        "baseline": dict(BASELINE),
        "current": {**current,
                    "speedup_events_per_sec":
                        round(speedup, 2) if speedup else None},
        "determinism": determinism,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if history_path:
        record = {
            "stamp": stamp,
            "scale": current["scale"],
            "events_per_sec": current["events_per_sec"],
            "committed_txns_per_wall_s": current["committed_txns_per_wall_s"],
            "peak_rss_kb": current["peak_rss_kb"],
            "digest_ok": determinism["ok"],
        }
        with open(history_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return report


def render(report: dict) -> str:
    current = report["current"]
    baseline = report["baseline"]
    lines = [
        "== perf: simulator hot-path throughput ==",
        f"   scale: {current['scale']}   wall: {current['wall_s']}s   "
        f"peak RSS: {current['peak_rss_kb']} kB",
        f"   events/sec:            {current['events_per_sec']:>12,.1f}"
        f"   (baseline {baseline['events_per_sec']:,.1f}"
        f" @ {baseline['scale']})",
        f"   committed txns/wall-s: "
        f"{current['committed_txns_per_wall_s']:>12,.1f}"
        f"   (baseline {baseline['committed_txns_per_wall_s']:,.1f})",
    ]
    speedup = current.get("speedup_events_per_sec")
    if speedup:
        lines.append(f"   speedup vs pre-optimization baseline: {speedup}x")
    for phase in current["phases"]:
        lines.append(
            f"   - {phase['phase']:<9s} {phase['wall_s']:>7.3f}s wall  "
            f"{phase['events']:>9,d} events  "
            f"{phase['committed']:>6,d} committed")
    lines.append(
        f"   determinism: digest {report['determinism']['digest'][:16]}… "
        f"matches pre-optimization recording "
        f"({report['determinism']['spans']} spans)")
    return "\n".join(lines)
