"""Live wait-for graph with cycle detection at wait time.

Nodes are transaction ids; a transaction *waits for* the holder of the
lock it is queued on. The graph spans every :class:`LockTable` in the
cluster (each table is one *scope*, so ``("warehouse", (1,))`` on shard 0
and the same key on shard 1 are distinct locks).

Detection runs when a wait edge is about to be added: walk the
holder-of/waits-on chain from the contended lock; if it leads back to the
requester, the edge would close a cycle — the requester is reported as the
deadlock victim *before* it ever blocks, instead of stalling until the
lock timeout fires. The walk is O(cycle length) and touches only live
edges, so the sanitizer's cost is proportional to actual contention.
"""

from __future__ import annotations


class WaitForGraph:
    """Holders and waiters across every lock scope in one simulation."""

    def __init__(self) -> None:
        #: (scope, lock_key) -> holding txid
        self.holders: dict[tuple, int] = {}
        #: waiting txid -> (scope, lock_key) it is queued on (a sim
        #: transaction waits on at most one lock at a time)
        self.waits: dict[int, tuple] = {}

    def on_granted(self, scope: int, lock_key: tuple, txid: int) -> None:
        """``txid`` now holds the lock (fresh grant or FIFO handoff)."""
        self.holders[(scope, lock_key)] = txid
        self.waits.pop(txid, None)

    def on_released(self, scope: int, lock_key: tuple) -> None:
        """The lock is free (no holder, no eligible waiter)."""
        self.holders.pop((scope, lock_key), None)

    def on_wait_aborted(self, txid: int) -> None:
        """``txid``'s wait ended without a grant (timeout / deadlock)."""
        self.waits.pop(txid, None)

    def on_wait(self, scope: int, lock_key: tuple,
                txid: int) -> list[tuple[int, tuple]] | None:
        """Record that ``txid`` is about to wait on ``(scope, lock_key)``.

        Returns ``None`` (edge added) or, when the edge would close a
        cycle, the cycle as ``[(txid, waited_key), ...]`` ending at the
        member whose held lock the first entry waits on — without adding
        the edge, so the caller can abort the victim immediately.
        """
        node = (scope, lock_key)
        cycle: list[tuple[int, tuple]] = [(txid, node)]
        seen = {txid}
        current = self.holders.get(node)
        while current is not None:
            if current == txid:
                return cycle
            if current in seen:  # a cycle not involving txid: not ours
                break
            seen.add(current)
            waited = self.waits.get(current)
            if waited is None:
                break
            cycle.append((current, waited))
            current = self.holders.get(waited)
        self.waits[txid] = node
        return None
