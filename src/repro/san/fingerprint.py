"""Structural payload fingerprints for mutation-after-send detection.

A fingerprint is a SHA-1 over a *canonical string* of the payload's
structure and values. Canonicalization is hash-seed independent (dicts are
serialized sorted by ``repr(key)``, sets by canonical element string), so
the same payload fingerprints identically under every ``PYTHONHASHSEED`` —
a requirement for the sanitizer's findings to survive ``lint
--determinism``.

Deliberately opaque leaves:

- :class:`~repro.sim.events.Event` — RPC reply tuples carry the caller's
  pending event, whose ``triggered`` state legitimately changes while the
  message is in flight; hashing it would flag the kernel itself.
- :class:`~repro.sim.network.Request` — fingerprinted as (src, dst, body)
  only; ``replied`` flips when the handler answers, by design.
- Any other unrecognized object — class name only. Mutations inside
  objects the canonicalizer cannot see are out of scope (the static
  SIM108 rule covers aliasing of plain containers, which is what the
  redo/commit paths actually ship).

Cost model: one canonicalization walk per send and one per delivery —
O(payload size) each, zero when the sanitizer is not installed. Depth is
capped (:data:`MAX_DEPTH`); beyond it a node contributes the marker
``<deep>`` (both walks cap identically, so capping never causes a false
positive).
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

MAX_DEPTH = 12


def fingerprint(value: typing.Any) -> str:
    """Hex SHA-1 of the value's canonical structure string."""
    return hashlib.sha1(canonical(value).encode("utf-8",
                                                "backslashreplace")).hexdigest()


def canonical(value: typing.Any, depth: int = MAX_DEPTH) -> str:
    """Hash-seed-stable structural serialization of ``value``."""
    if depth <= 0:
        return "<deep>"
    if value is None or value is True or value is False:
        return repr(value)
    kind = type(value)
    if kind in (int, float, str, bytes):
        return f"{kind.__name__}:{value!r}"
    if kind in (tuple, list):
        inner = ",".join(canonical(item, depth - 1) for item in value)
        return f"{kind.__name__}[{inner}]"
    if kind in (dict,):
        items = sorted(((repr(key), canonical(item, depth - 1))
                        for key, item in value.items()))
        inner = ",".join(f"{key}={item}" for key, item in items)
        return f"dict{{{inner}}}"
    if kind in (set, frozenset):
        inner = ",".join(sorted(canonical(item, depth - 1) for item in value))
        return f"{kind.__name__}{{{inner}}}"
    # Sim-kernel objects whose in-flight state changes by design.
    from repro.sim.events import Event
    from repro.sim.network import Request
    if isinstance(value, Request):
        return (f"Request(src={value.src!r},dst={value.dst!r},"
                f"body={canonical(value.body, depth - 1)})")
    if isinstance(value, Event):
        return "<Event>"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{f.name}={canonical(getattr(value, f.name), depth - 1)}"
            for f in dataclasses.fields(value))
        return f"{kind.__name__}({inner})"
    return f"<{kind.__name__}>"
