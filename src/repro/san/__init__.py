"""simsan's runtime half: a deterministic hazard sanitizer.

The sanitizer is an opt-in observer attached to an
:class:`~repro.sim.core.Environment` as ``env.san``. Two hazard classes:

**Deadlocks** — :class:`~repro.storage.locks.LockTable` calls in on every
grant/wait/release, maintaining a cluster-wide wait-for graph
(:mod:`repro.san.waitfor`). A wait that would close a cycle aborts the
requester *immediately* with a :class:`WriteConflict` naming every cycle
member (txids and lock keys), instead of leaving the cycle to stall until
a lock timeout breaks it blindly.

**Mutation after send** — :mod:`repro.sim.network` calls in at send and
delivery; payloads are structurally fingerprinted
(:mod:`repro.san.fingerprint`) at send time and re-verified just before
the handler runs. A mismatch means some component mutated an object it
had already shipped — exactly the hazard that silently corrupts what a
geo-replica replays.

Determinism contract: the sanitizer never schedules events and never
reads wall-clock or ``id()`` into a finding, so a sanitized run is as
bit-reproducible as an unsanitized one (findings are emitted into the
``repro.obs`` trace and checked by ``lint --determinism``). The only
execution change is intentional: deadlock victims abort at wait time
rather than at timeout.

Enable with ``REPRO_SAN=1`` (any workload driven through
``repro.workloads.driver.run_workload``) or programmatically::

    from repro.san import Sanitizer
    san = Sanitizer(db.env).install()
    ...
    print(san.report.render())
"""

from __future__ import annotations

import os
import typing

from repro.san.fingerprint import fingerprint
from repro.san.report import DEADLOCK, MUTATION, SanFinding, SanReport, describe_cycle
from repro.san.waitfor import WaitForGraph

if typing.TYPE_CHECKING:
    from repro.sim.core import Environment
    from repro.sim.network import Message

__all__ = ["Sanitizer", "maybe_install", "SanReport", "SanFinding",
           "WaitForGraph", "fingerprint", "DEADLOCK", "MUTATION"]

ENV_VAR = "REPRO_SAN"


class Sanitizer:
    """Per-environment hazard detector; see the module docstring."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.report = SanReport()
        self.waitfor = WaitForGraph()
        # LockTable -> small deterministic scope id, assigned in first-use
        # order (construction/first-acquire order is itself deterministic).
        self._scope_ids: dict[int, int] = {}
        self._scope_names: dict[int, str] = {}
        self._scope_refs: list = []  # keeps ids alive (no id() recycling)
        # id(message) -> send-time fingerprint. Keying by id() is safe
        # (and never reported): the kernel queue holds the message object
        # until delivery, so the id cannot be recycled while in flight.
        self._inflight: dict[int, str] = {}
        self.messages_checked = 0

    def install(self) -> "Sanitizer":
        self.env.san = self
        self.env.rebind_hooks()
        return self

    # ------------------------------------------------------------------
    # Lock hooks (called by LockTable)
    # ------------------------------------------------------------------
    def _scope(self, table) -> int:
        scope = self._scope_ids.get(id(table))
        if scope is None:
            scope = len(self._scope_ids)
            self._scope_ids[id(table)] = scope
            self._scope_names[scope] = f"locks#{scope}"
            self._scope_refs.append(table)
        return scope

    def name_scope(self, table, name: str) -> None:
        """Give a LockTable a stable display name (e.g. its DN's name)."""
        self._scope_names[self._scope(table)] = name

    def on_lock_granted(self, table, txid: int, lock_key: tuple) -> None:
        self.waitfor.on_granted(self._scope(table), lock_key, txid)

    def on_lock_wait(self, table, txid: int,
                     lock_key: tuple) -> str | None:
        """Returns a deadlock description if waiting would close a cycle
        (the edge is then *not* recorded — the caller aborts the victim);
        records the wait edge and returns ``None`` otherwise."""
        cycle = self.waitfor.on_wait(self._scope(table), lock_key, txid)
        if cycle is None:
            return None
        message = describe_cycle(cycle, self._scope_names)
        self.report.add(
            self.env, DEADLOCK, message,
            victim=str(txid),
            members=",".join(str(member) for member, _key in cycle),
            size=str(len(cycle)))
        return message

    def on_lock_wait_aborted(self, table, txid: int) -> None:
        self.waitfor.on_wait_aborted(txid)

    def on_lock_released(self, table, lock_key: tuple) -> None:
        self.waitfor.on_released(self._scope(table), lock_key)

    # ------------------------------------------------------------------
    # Network hooks (called by Network.send / Network._deliver)
    # ------------------------------------------------------------------
    def on_message_send(self, message: "Message") -> None:
        self._inflight[id(message)] = fingerprint(message.payload)

    def on_message_deliver(self, message: "Message") -> None:
        sent = self._inflight.pop(id(message), None)
        if sent is None:  # sent before the sanitizer was installed
            return
        self.messages_checked += 1
        delivered = fingerprint(message.payload)
        if delivered == sent:
            return
        from repro.sim.network import _payload_kind
        kind = _payload_kind(message.payload)
        self.report.add(
            self.env, MUTATION,
            f"payload '{kind}' from {message.src} to {message.dst} mutated "
            f"in flight (sent t={message.send_time}ns, delivered "
            f"t={message.deliver_time}ns): the receiver sees state the "
            f"sender changed after send()",
            src=message.src, dst=message.dst, payload=kind,
            sent_fp=sent[:12], delivered_fp=delivered[:12])


def maybe_install(env: "Environment") -> Sanitizer | None:
    """Install a sanitizer iff ``REPRO_SAN`` is set to a truthy value.

    Idempotent: an already-installed sanitizer (programmatic or from an
    earlier call) is returned as-is. With the variable unset this is one
    ``os.environ`` lookup — the hot paths stay untouched because
    ``env.san`` remains ``None``.
    """
    if env.san is not None:
        return env.san
    if os.environ.get(ENV_VAR, "") in ("", "0"):
        return None
    return Sanitizer(env).install()
