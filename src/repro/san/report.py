"""Sanitizer findings: collection, formatting, and trace emission.

Every finding is recorded twice: in the in-memory report (what the CLI
prints and serializes) and — when tracing is enabled — as an ``instant``
span in the ``repro.obs`` trace on the ``san`` track. The trace copy is
what makes report stability *provable*: ``lint --determinism`` re-runs the
sanitized smoke under perturbed hash seeds and compares trace digests, so
a finding whose content depended on set order or ``id()`` would break the
digest instead of silently flapping.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

DEADLOCK = "deadlock-cycle"
MUTATION = "mutation-after-send"


@dataclass(frozen=True)
class SanFinding:
    """One runtime hazard, located in simulated time."""

    kind: str               #: :data:`DEADLOCK` or :data:`MUTATION`
    time_ns: int            #: sim time the hazard was detected
    message: str            #: deterministic human-readable description
    details: tuple = ()     #: sorted (key, value) pairs, all strings

    def to_dict(self) -> dict:
        return {"kind": self.kind, "time_ns": self.time_ns,
                "message": self.message, "details": dict(self.details)}


@dataclass
class SanReport:
    """Ordered findings from one sanitized run."""

    findings: list[SanFinding] = field(default_factory=list)

    def add(self, env, kind: str, message: str,
            **details: str) -> SanFinding:
        finding = SanFinding(kind=kind, time_ns=env.now, message=message,
                             details=tuple(sorted(details.items())))
        self.findings.append(finding)
        if env.trace_on:
            env.tracer.instant("san", kind, track="san",
                               message=message, **details)
        if env.series_on:
            env.series.counter(f"san.{kind}", 1)
        return finding

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.findings)
        return sum(1 for finding in self.findings if finding.kind == kind)

    def to_dicts(self) -> list[dict]:
        return [finding.to_dict() for finding in self.findings]

    def render(self) -> str:
        if not self.findings:
            return "san: clean (0 runtime findings)"
        lines = [f"san: {len(self.findings)} runtime finding(s)"]
        for finding in self.findings:
            lines.append(f"  [{finding.kind}] t={finding.time_ns}ns "
                         f"{finding.message}")
        return "\n".join(lines)


def describe_cycle(cycle: typing.Sequence[tuple[int, tuple]],
                   scope_names: dict[int, str]) -> str:
    """Render a wait-for cycle as ``txn A waits k1 held by txn B; ...``."""
    parts = []
    for index, (txid, (scope, lock_key)) in enumerate(cycle):
        holder = cycle[(index + 1) % len(cycle)][0]
        scope_name = scope_names.get(scope, f"locks#{scope}")
        parts.append(f"txn {txid} waits {scope_name}:{lock_key[0]}"
                     f"{lock_key[1]} held by txn {holder}")
    return "; ".join(parts)
