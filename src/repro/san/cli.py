"""``python -m repro.lint san`` — the combined simsan gate.

Two phases, both on by default:

1. **Static scan**: every registered simlint rule (including the
   interprocedural SIM107–SIM110) over the given paths (default ``src``),
   honouring pragmas.
2. **Sanitized smoke**: the standard traced smoke simulation with the
   :mod:`repro.san` runtime sanitizer installed — live wait-for-graph
   deadlock detection plus payload fingerprint verification on every
   delivered message.

Exit 1 if either phase produces a finding; ``--json`` writes a combined
machine-readable artifact (what CI uploads). ``--seeds N`` additionally
re-runs the sanitized smoke under N distinct ``PYTHONHASHSEED`` values and
requires one trace digest — proving the sanitizer's report is itself
deterministic.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint san",
        description="simsan: interprocedural hazard scan + sanitized "
                    "smoke simulation.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: src)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write combined findings JSON to PATH")
    parser.add_argument("--no-smoke", action="store_true",
                        help="skip the sanitized smoke simulation (static "
                             "scan only)")
    parser.add_argument("--no-static", action="store_true",
                        help="skip the static scan (sanitized smoke only)")
    parser.add_argument("--duration", type=float, default=None,
                        help="smoke sim-seconds (default: the determinism "
                             "harness default)")
    parser.add_argument("--seeds", type=int, default=0,
                        help="also prove report stability under N distinct "
                             "hash seeds (0 = skip)")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
    from repro.lint.determinism import DEFAULT_DURATION_S

    args = build_parser().parse_args(argv)
    duration = args.duration if args.duration is not None \
        else DEFAULT_DURATION_S
    artifact: dict = {"static": [], "runtime": [], "ok": True}
    failed = False

    if not args.no_static:
        from repro.lint.rules import default_rules, lint_paths

        paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
        missing = [path for path in paths if not os.path.exists(path)]
        if missing:
            print(f"error: no such path(s): {', '.join(missing)}",
                  file=sys.stderr)
            return EXIT_ERROR
        findings = lint_paths(paths, rules=default_rules())
        artifact["static"] = [finding.to_dict() for finding in findings]
        if findings:
            failed = True
            for finding in findings:
                print(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                      f"{finding.rule} {finding.message}")
            print(f"san/static: {len(findings)} finding(s)")
        else:
            print(f"san/static: clean ({', '.join(paths)})")

    if not args.no_smoke:
        from repro.lint.determinism import smoke_run

        summary = smoke_run(duration_s=duration, sanitize=True)
        runtime_findings = summary["san_findings"]
        artifact["runtime"] = runtime_findings
        artifact["smoke"] = {
            "digest": summary["digest"],
            "committed": summary["committed"],
            "aborted": summary["aborted"],
            "messages_checked": summary["san_messages_checked"],
        }
        if runtime_findings:
            failed = True
            for finding in runtime_findings:
                print(f"san/runtime: [{finding['kind']}] "
                      f"t={finding['time_ns']}ns {finding['message']}")
            print(f"san/runtime: {len(runtime_findings)} finding(s)")
        else:
            print(f"san/runtime: clean "
                  f"({summary['san_messages_checked']} messages verified, "
                  f"{summary['committed']} txns committed, "
                  f"digest {summary['digest'][:16]}…)")

    if args.seeds:
        from repro.lint.determinism import run_perturbation

        if args.seeds < 2:
            print("error: --seeds must be >= 2 (one run proves nothing)",
                  file=sys.stderr)
            return EXIT_ERROR
        print(f"san/determinism: {args.seeds} sanitized runs under "
              f"distinct hash seeds")
        result = run_perturbation(seeds=args.seeds, duration_s=duration,
                                  echo=print, telemetry=False,
                                  sanitize=True)
        print(result.render())
        artifact["determinism_ok"] = result.ok
        if not result.ok:
            failed = True

    artifact["ok"] = not failed
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"san: wrote findings artifact to {args.json_path}")
    return EXIT_FINDINGS if failed else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
