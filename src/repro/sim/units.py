"""Time-unit helpers.

Simulation time is an ``int`` count of nanoseconds of *true* time since the
start of the simulation. Integer time keeps event ordering exact (no
floating-point ties) and lets GTM counters and GClock epoch timestamps share
one comparable integer space, which the DUAL-mode migration protocol relies
on.
"""

from __future__ import annotations

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000
MINUTE = 60 * SECOND


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SECOND)


def ns_to_seconds(value: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return value / SECOND


def ns_to_ms(value: int) -> float:
    """Convert integer nanoseconds to float milliseconds (for reporting only)."""
    return value / MILLISECOND
