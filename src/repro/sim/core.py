"""The discrete-event simulation kernel.

:class:`Environment` owns the event queue and the simulated clock (integer
nanoseconds of *true* time). :class:`Process` drives a Python generator:
each ``yield``-ed :class:`~repro.sim.events.Event` suspends the process until
the event fires, at which point the event's value is sent back into the
generator (or its exception thrown).

The kernel is deterministic: ties at equal timestamps are broken by a
monotonically increasing sequence number, so two runs with the same seeds
produce identical histories.

Scheduler design (the perf harness in ``repro.bench.perf`` measures this):

The queue is a three-level calendar structure instead of a single binary
heap. The invariant it preserves is the heap kernel's total order —
``(when, priority, seq)`` ascending — without materializing the tuples:

- **Level 0 — current-tick lanes.** Anything scheduled at ``now`` (the
  overwhelmingly common case: ``succeed``/``fail``, message handlers,
  process spawns) is a bare append to one of two FIFO lists, one per
  priority. Appends cost no tuple, no comparison, no sift. FIFO order
  *is* sequence order because ``_seq`` increases monotonically, and the
  urgent lane is always drained before the normal lane resumes, which is
  exactly what the priority field used to buy.
- **Level 1 — per-timestamp buckets.** Future work goes into
  ``dict[when -> list]`` buckets (a rare second dict for future urgent
  entries). Insertion is a dict probe + append; order within a bucket is
  again sequence order.
- **Level 2 — timestamp heap.** A plain int min-heap of *distinct* future
  timestamps. Each timestamp enters it exactly once (pushes are guarded
  by bucket creation), so it is a fraction of the size of the old event
  heap and its comparisons are int-vs-int, not tuple-vs-tuple.

Advancing the clock pops the smallest timestamp and swaps its buckets in
as the new lanes. Because time only moves forward and same-time work goes
straight to the lanes, a timestamp can never be scheduled again after its
tick ran — no stale-entry pruning is needed.

Other hot-path notes:

- ``now`` is a plain attribute, not a property — it is read on nearly every
  instruction of simulation code. Only the kernel writes it.
- ``_seq`` is a plain int; every push increments it exactly once, so the
  inlined pushes in ``repro.sim.events`` keep the same total order the
  un-inlined kernel produced (``events_scheduled`` still reports it).
- :meth:`Environment.defer` schedules a bare ``fn(arg)`` call without
  allocating an :class:`Event`, a callbacks list, or a closure — the
  network's delivery path uses it for every message. Fired ``_Call``
  entries are recycled through a free list.
- The ``run`` loops inline the dispatch (no per-event ``step()`` call).
- ``metrics_on`` / ``trace_on`` cache the observability toggles;
  ``hooks_net`` / ``hooks_txn`` fold them (plus ``san``/``history``) into
  single pre-resolved guards re-bound by :meth:`Environment.rebind_hooks`
  whenever an observer is installed, so disabled instrumentation costs one
  attribute test per site instead of one per subsystem.
"""

from __future__ import annotations

import typing
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.monitor import NULL_MONITOR
from repro.obs.timeseries import NULL_TIMESERIES
from repro.obs.trace import NULL_TRACER
from repro.sim.events import Event, Interrupt, Timeout, PRIORITY_NORMAL, PRIORITY_URGENT


class _Call:
    """A queue entry that invokes ``fn(arg)`` when it fires — the
    allocation-free alternative to a triggered :class:`Event` with one
    callback. Only the kernel touches these; they are invisible to
    processes (nothing can wait on one)."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn, arg):
        self.fn = fn
        self.arg = arg


class _StartSignal:
    """Shared do-nothing "event" delivered to a process's first resume.

    ``Process._resume`` only reads ``_ok``/``_value`` on the success path,
    so one immutable instance serves every process kickoff."""

    __slots__ = ()
    _ok = True
    _value = None


_START = _StartSignal()


class Process(Event):
    """Wraps a generator as a simulation process.

    The process is itself an event that fires when the generator returns
    (success, with the return value) or raises (failure). Other processes
    can therefore ``yield proc`` to join on it.
    """

    __slots__ = ("_generator", "name", "_target", "_sleep")

    def __init__(self, env: "Environment", generator: typing.Generator,
                 name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        self._sleep: Timeout | None = None
        # Kick off the generator at the current time, urgently so a process
        # spawned "now" starts before pending normal-priority events. The
        # shared start signal replaces a per-process init Event; it consumes
        # one sequence number exactly like the Event used to.
        env._seq += 1
        pool = env._call_pool
        if pool:
            call = pool.pop()
            call.fn = self._resume
            call.arg = _START
        else:
            call = _Call(self._resume, _START)
        env._lane_urgent.append(call)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must currently be suspended on an event; the interrupt
        detaches it from that event and resumes it with the exception.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is None:
            raise SimulationError(f"cannot interrupt process {self.name!r} before it starts")
        carrier = Event(self.env)
        carrier._ok = False
        carrier._exception = Interrupt(cause)
        carrier.defused = True
        # Detach from the event the process was waiting on. The original
        # event may still fire later; its value is simply not delivered.
        target_callbacks = self._target.callbacks
        if target_callbacks is not None and self._resume in target_callbacks:
            target_callbacks.remove(self._resume)
        self._target = None
        carrier.callbacks.append(self._resume)
        self.env.schedule(carrier, priority=PRIORITY_URGENT)

    def _resume(self, event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    yielded = generator.send(event._value)
                else:
                    event.defused = True
                    yielded = generator.throw(event._exception)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self._ok = False
                self._exception = exc
                env.schedule(self, priority=PRIORITY_URGENT)
                return

            if not isinstance(yielded, Event):
                env._active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {yielded!r}")
            callbacks = yielded.callbacks
            if callbacks is None:
                # Already fired and delivered: consume its value immediately.
                event = yielded
                continue
            callbacks.append(self._resume)
            self._target = yielded
            env._active_process = None
            return


class Environment:
    """The simulation event loop and clock.

    ``now`` is the current *true* time in integer nanoseconds. Events are
    processed in (time, priority, sequence) order; the sequence number makes
    execution fully deterministic.
    """

    def __init__(self, initial_time: int = 0):
        #: Current simulated true time in nanoseconds. Read-only for
        #: everyone but the kernel.
        self.now = initial_time
        # Calendar queue (see module docstring): current-tick lanes with
        # read cursors, per-timestamp future buckets, and a min-heap of
        # distinct future timestamps.
        self._lane_urgent: list = []
        self._lane_normal: list = []
        self._cursor_urgent = 0
        self._cursor_normal = 0
        self._buckets: dict[int, list] = {}
        self._buckets_urgent: dict[int, list] = {}
        self._times: list[int] = []
        self._seq = 0
        #: Free list of fired ``_Call`` entries for :meth:`defer` to reuse.
        self._call_pool: list[_Call] = []
        self._active_process: Process | None = None
        # Observability handles (see repro.obs). The defaults are shared
        # no-op singletons, so instrumentation costs one attribute check
        # when disabled; repro.obs.enable_observability swaps in live ones.
        # Neither may ever schedule events — that is the determinism
        # contract tests/test_determinism.py enforces.
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER
        self.series = NULL_TIMESERIES
        self.monitor = NULL_MONITOR
        #: Cached ``metrics.enabled`` / ``tracer.enabled`` /
        #: ``series.enabled`` — single-load guards for per-event
        #: instrumentation.
        self.metrics_on = False
        self.trace_on = False
        self.series_on = False
        #: Runtime hazard sanitizer (see repro.san). ``None`` unless
        #: installed (``REPRO_SAN=1`` or ``Sanitizer(env).install()``);
        #: hook sites pay one attribute load + None check when off.
        self.san = None
        #: Jepsen-style operation recorder (see repro.check). ``None``
        #: unless installed (``REPRO_HISTORY=1`` or programmatically);
        #: same contract as ``san``: passive, never schedules events.
        self.history = None
        #: Pre-resolved hook guards (see :meth:`rebind_hooks`): one test
        #: on the hot path replaces a per-subsystem check cascade.
        self.hooks_net = False
        self.hooks_txn = False

    def rebind_hooks(self) -> None:
        """Re-fold the per-subsystem observer toggles into the single
        pre-resolved hot-path guards.

        Every installer (``repro.obs.enable_observability``,
        ``repro.san.Sanitizer.install``, ``repro.check`` history capture)
        must call this after flipping its toggle. A disabled hook site then
        costs one attribute test instead of one per subsystem — and a
        *bound no-op callable* would cost more than either (a Python call
        is pricier than an int test), which is why the "pre-resolved
        no-op" is a folded flag rather than a null method.
        """
        self.hooks_net = (self.metrics_on or self.trace_on
                          or self.san is not None)
        self.hooks_txn = (self.metrics_on or self.series_on
                          or self.history is not None)

    @property
    def events_scheduled(self) -> int:
        """Total queue pushes so far (the perf harness's events metric)."""
        return self._seq

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: typing.Any = None) -> Timeout:
        """An event that fires after ``delay`` nanoseconds."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str | None = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def sleep(self, delay: int, value: typing.Any = None) -> Timeout:
        """Like :meth:`timeout`, but recycles the calling process's
        previous sleep timer once it has fully fired.

        Contract: the returned event must be yielded immediately by the
        calling process and never handed to anyone else — the same object
        comes back from the process's next ``sleep`` call. Yielding it
        inside an ``any_of`` is fine: a timer that loses the race keeps
        its pending callbacks list, which blocks reuse until it fires.
        """
        proc = self._active_process
        if proc is None:
            return Timeout(self, delay, value)
        timer = proc._sleep
        if timer is None or timer.callbacks is not None:
            timer = Timeout(self, delay, value)
            proc._sleep = timer
            return timer
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timer.callbacks = []
        timer._value = value
        timer._exception = None
        timer._ok = True
        timer.defused = False
        timer.delay = delay
        self._seq += 1
        if delay == 0:
            self._lane_normal.append(timer)
        else:
            when = self.now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [timer]
                if when not in self._buckets_urgent:
                    heappush(self._times, when)
            else:
                bucket.append(timer)
        return timer

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        if delay == 0:
            if priority == PRIORITY_NORMAL:
                self._lane_normal.append(event)
            else:
                self._lane_urgent.append(event)
            return
        when = self.now + delay
        if priority == PRIORITY_NORMAL:
            buckets = self._buckets
            other = self._buckets_urgent
        else:
            buckets = self._buckets_urgent
            other = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [event]
            if when not in other:
                heappush(self._times, when)
        else:
            bucket.append(event)

    def defer(self, delay: int, fn, arg) -> _Call:
        """Schedule ``fn(arg)`` to run ``delay`` ns from now at normal
        priority, without allocating an Event. Consumes one sequence
        number, exactly like scheduling an event would. Fired entries are
        recycled, so holders of a returned ``_Call`` may only mutate it
        while it is provably unfired (see the network's coalescing guard).
        """
        pool = self._call_pool
        if pool:
            call = pool.pop()
            call.fn = fn
            call.arg = arg
        else:
            call = _Call(fn, arg)
        self._seq += 1
        if delay <= 0:
            self._lane_normal.append(call)
            return call
        when = self.now + delay
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [call]
            if when not in self._buckets_urgent:
                heappush(self._times, when)
        else:
            bucket.append(call)
        return call

    def _advance(self, when: int) -> None:
        """Move the clock to ``when`` and swap that tick's buckets in as
        the new lanes. Only called with lanes fully consumed."""
        self.now = when
        bucket = self._buckets_urgent.pop(when, None) if self._buckets_urgent else None
        if bucket is not None:
            self._lane_urgent = bucket
        else:
            lane = self._lane_urgent
            if lane:
                del lane[:]
        bucket = self._buckets.pop(when, None)
        if bucket is not None:
            self._lane_normal = bucket
        else:
            lane = self._lane_normal
            if lane:
                del lane[:]
        self._cursor_urgent = 0
        self._cursor_normal = 0

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the queue is empty."""
        if (self._cursor_urgent < len(self._lane_urgent)
                or self._cursor_normal < len(self._lane_normal)):
            return self.now
        return self._times[0] if self._times else None

    def step(self) -> None:
        """Process exactly one event."""
        while True:
            lane = self._lane_urgent
            index = self._cursor_urgent
            if index < len(lane):
                self._cursor_urgent = index + 1
                entry = lane[index]
                break
            lane = self._lane_normal
            index = self._cursor_normal
            if index < len(lane):
                self._cursor_normal = index + 1
                entry = lane[index]
                break
            times = self._times
            if not times:
                raise SimulationError("cannot step an empty event queue")
            self._advance(heappop(times))
        if entry.__class__ is _Call:
            entry.fn(entry.arg)
            entry.fn = entry.arg = None
            self._call_pool.append(entry)
            return
        callbacks = entry.callbacks
        entry.callbacks = None
        for callback in callbacks:
            callback(entry)
        if entry._ok is False and not entry.defused:
            # A failed event nobody was waiting on: surface it rather than
            # silently dropping the error.
            raise entry._exception  # type: ignore[misc]

    def run(self, until: int | Event | None = None) -> typing.Any:
        """Run the simulation.

        - ``until`` is an ``int``: run until simulated time reaches it.
        - ``until`` is an :class:`Event`: run until that event is processed,
          then return its value (raising its exception if it failed).
        - ``until`` is None: run until the event queue drains.

        The dispatch loops are inlined copies of :meth:`step` — the per-event
        function call is measurable at the scales the bench harness runs.
        """
        call_pool = self._call_pool
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                lane = self._lane_urgent
                index = self._cursor_urgent
                if index < len(lane):
                    self._cursor_urgent = index + 1
                    entry = lane[index]
                else:
                    lane = self._lane_normal
                    index = self._cursor_normal
                    if index < len(lane):
                        self._cursor_normal = index + 1
                        entry = lane[index]
                    else:
                        times = self._times
                        if not times:
                            raise SimulationError(
                                "event queue drained before the awaited event fired")
                        self._advance(heappop(times))
                        continue
                if entry.__class__ is _Call:
                    entry.fn(entry.arg)
                    entry.fn = entry.arg = None
                    call_pool.append(entry)
                    continue
                callbacks = entry.callbacks
                entry.callbacks = None
                for callback in callbacks:
                    callback(entry)
                if entry._ok is False and not entry.defused:
                    raise entry._exception  # type: ignore[misc]
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._exception  # type: ignore[misc]

        if until is not None:
            if until < self.now:
                raise SimulationError(
                    f"cannot run backwards: now={self.now}, until={until}")
            while True:
                lane = self._lane_urgent
                index = self._cursor_urgent
                if index < len(lane):
                    self._cursor_urgent = index + 1
                    entry = lane[index]
                else:
                    lane = self._lane_normal
                    index = self._cursor_normal
                    if index < len(lane):
                        self._cursor_normal = index + 1
                        entry = lane[index]
                    else:
                        times = self._times
                        if not times or times[0] > until:
                            self.now = until
                            return None
                        self._advance(heappop(times))
                        continue
                if entry.__class__ is _Call:
                    entry.fn(entry.arg)
                    entry.fn = entry.arg = None
                    call_pool.append(entry)
                    continue
                callbacks = entry.callbacks
                entry.callbacks = None
                for callback in callbacks:
                    callback(entry)
                if entry._ok is False and not entry.defused:
                    raise entry._exception  # type: ignore[misc]

        while True:
            lane = self._lane_urgent
            index = self._cursor_urgent
            if index < len(lane):
                self._cursor_urgent = index + 1
                entry = lane[index]
            else:
                lane = self._lane_normal
                index = self._cursor_normal
                if index < len(lane):
                    self._cursor_normal = index + 1
                    entry = lane[index]
                else:
                    times = self._times
                    if not times:
                        return None
                    self._advance(heappop(times))
                    continue
            if entry.__class__ is _Call:
                entry.fn(entry.arg)
                entry.fn = entry.arg = None
                call_pool.append(entry)
                continue
            callbacks = entry.callbacks
            entry.callbacks = None
            for callback in callbacks:
                callback(entry)
            if entry._ok is False and not entry.defused:
                raise entry._exception  # type: ignore[misc]

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` nanoseconds of simulated time."""
        self.run(until=self.now + duration)

    def any_of(self, events: list[Event]) -> Event:
        """Composite event that fires when any child fires."""
        from repro.sim.events import AnyOf

        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> Event:
        """Composite event that fires when all children have fired."""
        from repro.sim.events import AllOf

        return AllOf(self, events)
