"""The discrete-event simulation kernel.

:class:`Environment` owns the event queue and the simulated clock (integer
nanoseconds of *true* time). :class:`Process` drives a Python generator:
each ``yield``-ed :class:`~repro.sim.events.Event` suspends the process until
the event fires, at which point the event's value is sent back into the
generator (or its exception thrown).

The kernel is deterministic: ties at equal timestamps are broken by a
monotonically increasing sequence number, so two runs with the same seeds
produce identical histories.

Hot-path design (the perf harness in ``repro.bench.perf`` measures this):

- ``now`` is a plain attribute, not a property — it is read on nearly every
  instruction of simulation code. Only the kernel writes it.
- ``_seq`` is a plain int; every queue push increments it exactly once, so
  the inlined pushes in ``repro.sim.events`` and :class:`_Call` entries keep
  the same total order the un-inlined kernel produced.
- :meth:`Environment.defer` schedules a bare ``fn(arg)`` call without
  allocating an :class:`Event`, a callbacks list, or a closure — the
  network's delivery path uses it for every message.
- ``metrics_on`` / ``trace_on`` cache the observability toggles as single
  attribute loads for per-event instrumentation guards
  (:func:`repro.obs.enable_observability` keeps them in sync).
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.monitor import NULL_MONITOR
from repro.obs.timeseries import NULL_TIMESERIES
from repro.obs.trace import NULL_TRACER
from repro.sim.events import Event, Interrupt, Timeout, PRIORITY_NORMAL, PRIORITY_URGENT


class _Call:
    """A queue entry that invokes ``fn(arg)`` when it fires — the
    allocation-free alternative to a triggered :class:`Event` with one
    callback. Only the kernel touches these; they are invisible to
    processes (nothing can wait on one)."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn, arg):
        self.fn = fn
        self.arg = arg


class _StartSignal:
    """Shared do-nothing "event" delivered to a process's first resume.

    ``Process._resume`` only reads ``_ok``/``_value`` on the success path,
    so one immutable instance serves every process kickoff."""

    __slots__ = ()
    _ok = True
    _value = None


_START = _StartSignal()


class Process(Event):
    """Wraps a generator as a simulation process.

    The process is itself an event that fires when the generator returns
    (success, with the return value) or raises (failure). Other processes
    can therefore ``yield proc`` to join on it.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: typing.Generator,
                 name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Kick off the generator at the current time, urgently so a process
        # spawned "now" starts before pending normal-priority events. The
        # shared start signal replaces a per-process init Event; it consumes
        # one sequence number exactly like the Event used to.
        env._seq = seq = env._seq + 1
        heapq.heappush(env._queue,
                       (env.now, PRIORITY_URGENT, seq, _Call(self._resume, _START)))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must currently be suspended on an event; the interrupt
        detaches it from that event and resumes it with the exception.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is None:
            raise SimulationError(f"cannot interrupt process {self.name!r} before it starts")
        carrier = Event(self.env)
        carrier._ok = False
        carrier._exception = Interrupt(cause)
        carrier.defused = True
        # Detach from the event the process was waiting on. The original
        # event may still fire later; its value is simply not delivered.
        target_callbacks = self._target.callbacks
        if target_callbacks is not None and self._resume in target_callbacks:
            target_callbacks.remove(self._resume)
        self._target = None
        carrier.callbacks.append(self._resume)
        self.env.schedule(carrier, priority=PRIORITY_URGENT)

    def _resume(self, event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    yielded = generator.send(event._value)
                else:
                    event.defused = True
                    yielded = generator.throw(event._exception)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self._ok = False
                self._exception = exc
                env.schedule(self, priority=PRIORITY_URGENT)
                return

            if not isinstance(yielded, Event):
                env._active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {yielded!r}")
            callbacks = yielded.callbacks
            if callbacks is None:
                # Already fired and delivered: consume its value immediately.
                event = yielded
                continue
            callbacks.append(self._resume)
            self._target = yielded
            env._active_process = None
            return


class Environment:
    """The simulation event loop and clock.

    ``now`` is the current *true* time in integer nanoseconds. Events are
    processed in (time, priority, sequence) order; the sequence number makes
    execution fully deterministic.
    """

    def __init__(self, initial_time: int = 0):
        #: Current simulated true time in nanoseconds. Read-only for
        #: everyone but the kernel.
        self.now = initial_time
        self._queue: list[tuple[int, int, int, typing.Any]] = []
        self._seq = 0
        self._active_process: Process | None = None
        # Observability handles (see repro.obs). The defaults are shared
        # no-op singletons, so instrumentation costs one attribute check
        # when disabled; repro.obs.enable_observability swaps in live ones.
        # Neither may ever schedule events — that is the determinism
        # contract tests/test_determinism.py enforces.
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER
        self.series = NULL_TIMESERIES
        self.monitor = NULL_MONITOR
        #: Cached ``metrics.enabled`` / ``tracer.enabled`` /
        #: ``series.enabled`` — single-load guards for per-event
        #: instrumentation.
        self.metrics_on = False
        self.trace_on = False
        self.series_on = False
        #: Runtime hazard sanitizer (see repro.san). ``None`` unless
        #: installed (``REPRO_SAN=1`` or ``Sanitizer(env).install()``);
        #: hook sites pay one attribute load + None check when off.
        self.san = None
        #: Jepsen-style operation recorder (see repro.check). ``None``
        #: unless installed (``REPRO_HISTORY=1`` or programmatically);
        #: same contract as ``san``: passive, never schedules events.
        self.history = None

    @property
    def events_scheduled(self) -> int:
        """Total queue pushes so far (the perf harness's events metric)."""
        return self._seq

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: typing.Any = None) -> Timeout:
        """An event that fires after ``delay`` nanoseconds."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str | None = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, priority, seq, event))

    def defer(self, delay: int, fn, arg) -> _Call:
        """Schedule ``fn(arg)`` to run ``delay`` ns from now at normal
        priority, without allocating an Event. Consumes one sequence
        number, exactly like scheduling an event would."""
        call = _Call(fn, arg)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, PRIORITY_NORMAL, seq, call))
        return call

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        queue = self._queue
        if not queue:
            raise SimulationError("cannot step an empty event queue")
        when, _priority, _seq, event = heapq.heappop(queue)
        self.now = when
        if event.__class__ is _Call:
            event.fn(event.arg)
            return
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            # A failed event nobody was waiting on: surface it rather than
            # silently dropping the error.
            raise event._exception  # type: ignore[misc]

    def run(self, until: int | Event | None = None) -> typing.Any:
        """Run the simulation.

        - ``until`` is an ``int``: run until simulated time reaches it.
        - ``until`` is an :class:`Event`: run until that event is processed,
          then return its value (raising its exception if it failed).
        - ``until`` is None: run until the event queue drains.
        """
        step = self.step
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired")
                step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._exception  # type: ignore[misc]

        if until is not None:
            if until < self.now:
                raise SimulationError(
                    f"cannot run backwards: now={self.now}, until={until}")
            queue = self._queue
            while queue and queue[0][0] <= until:
                step()
            self.now = until
            return None

        queue = self._queue
        while queue:
            step()
        return None

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` nanoseconds of simulated time."""
        self.run(until=self.now + duration)

    def any_of(self, events: list[Event]) -> Event:
        """Composite event that fires when any child fires."""
        from repro.sim.events import AnyOf

        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> Event:
        """Composite event that fires when all children have fired."""
        from repro.sim.events import AllOf

        return AllOf(self, events)
