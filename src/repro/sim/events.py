"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on by
``yield``-ing it. Events carry either a success value or a failure exception.
Composite events (:class:`AnyOf`, :class:`AllOf`) fire when any/all of their
children have fired.

Hot-path notes: every class here is ``__slots__``-ed and the trigger paths
(:meth:`Event.succeed`, :meth:`Event.fail`, :class:`Timeout`) push onto the
environment's calendar queue directly instead of going through
:meth:`~repro.sim.core.Environment.schedule`. ``succeed``/``fail`` always
trigger *at the current tick*, so they reduce to a bare list append on the
normal lane; only a delayed :class:`Timeout` touches the future buckets.
Each push consumes exactly one sequence number, same as the generic path,
so event ordering — and therefore every simulated history — is identical
to the un-inlined kernel.
"""

from __future__ import annotations

import typing
from heapq import heappush

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

# Scheduling priorities: lower value runs first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* -> *triggered* (scheduled on the event queue with a
    value or an exception) -> *processed* (callbacks have run). Processes
    ``yield`` pending or triggered events; yielding a processed event is an
    error because its callbacks have already fired.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[typing.Callable[[Event], None]] | None = []
        self._value: typing.Any = None
        self._exception: BaseException | None = None
        self._ok: bool | None = None
        # Set True once a failure's exception was delivered somewhere, so the
        # environment does not re-raise it as an unhandled failure.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception scheduled."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The success value (or the exception object, for failed events)."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._exception if self._exception is not None else self._value

    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event with a success ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        env._lane_normal.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure ``exception``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._exception = exception
        env = self.env
        env._seq += 1
        env._lane_normal.append(self)
        return self

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: typing.Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._exception = None
        self._ok = True
        self.defused = False
        self.delay = delay
        env._seq += 1
        if delay == 0:
            env._lane_normal.append(self)
        else:
            when = env.now + delay
            buckets = env._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [self]
                if when not in env._buckets_urgent:
                    heappush(env._times, when)
            else:
                bucket.append(self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}ns>"


class Interrupt(Exception):
    """Thrown into a process when :meth:`~repro.sim.core.Process.interrupt` is
    called on it. ``cause`` describes why (e.g. a node-failure injection)."""

    def __init__(self, cause: typing.Any = None):
        super().__init__(cause)
        self.cause = cause


class ConditionValue:
    """Ordered mapping of child events to values for fired conditions."""

    __slots__ = ("events",)

    def __init__(self, events: list[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> typing.Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def todict(self) -> dict[Event, typing.Any]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Base for composite events over a list of child events.

    Fires with a :class:`ConditionValue` of the children that had fired by
    the time the condition was satisfied. If any child fails before the
    condition is satisfied, the condition fails with that child's exception.
    """

    __slots__ = ("events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: list[Event],
                 evaluate: typing.Callable[[int, int], bool]):
        super().__init__(env)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self.events or self._evaluate(len(self.events), 0):
            self.succeed(ConditionValue([]))
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # The condition already fired; don't let the late failure
                # escape as an unhandled event failure.
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(len(self.events), self._count):
            fired = [child for child in self.events if child.processed and child.ok]
            self.succeed(ConditionValue(fired))


def settle(env: "Environment", events: list[Event]) -> Event:
    """An event that fires once every child has fired, success *or* failure.

    Unlike :class:`AllOf`, child failures do not propagate — they are
    defused and the caller inspects each child's ``ok``/``value`` after the
    settle event fires. Used for fan-out RPCs where stragglers or timeouts
    must not abort the round.
    """
    outcome = Event(env)
    remaining = len(events)
    if remaining == 0:
        outcome.succeed([])
        return outcome

    def on_child(child: Event) -> None:
        nonlocal remaining
        child.defused = True
        remaining -= 1
        if remaining == 0:
            outcome.succeed(events)

    for child in events:
        if child.processed:
            on_child(child)
        else:
            child.add_callback(on_child)
    return outcome


class AnyOf(Condition):
    """Fires as soon as one child event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list[Event]):
        super().__init__(env, events, lambda total, done: done > 0)


class AllOf(Condition):
    """Fires once every child event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list[Event]):
        super().__init__(env, events, lambda total, done: done == total)
