"""Shared-capacity resources for the simulation.

:class:`Semaphore` models a bounded worker pool (e.g. a data node's
executor threads): up to ``capacity`` holders at once, FIFO queueing beyond
that. Used to give nodes a realistic saturation point so closed-loop
workloads exhibit proper throughput ceilings.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.events import Event


class Semaphore:
    """A counting semaphore with FIFO fairness."""

    __slots__ = ("env", "capacity", "in_use", "_waiters", "peak_queue")

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()
        self.peak_queue = 0

    def acquire(self) -> Event:
        """Event that fires when a slot is held. Immediate if free."""
        event = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(True)
        else:
            self._waiters.append(event)
            self.peak_queue = max(self.peak_queue, len(self._waiters))
        return event

    def release(self) -> None:
        """Release a slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            event = self._waiters.popleft()
            event.succeed(True)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def load(self) -> float:
        """Utilization plus queueing pressure (for load metrics)."""
        return (self.in_use + len(self._waiters)) / self.capacity
