"""Transport-level modelling: compression, Nagle, and congestion control.

The paper closes the Three-City gap with three log-shipping optimisations
(§V-A): LZ4 compression of redo, TCP BBR congestion control, and disabling
Nagle's algorithm. We model their *consequences* at the byte/latency level:

- **Compression** shrinks the bytes a batch occupies on the wire at a small
  CPU cost per input byte.
- **Congestion control** determines what fraction of the bottleneck
  bandwidth a long-fat-network flow actually achieves. Loss-based control
  (CUBIC-style) collapses as ``RTT * sqrt(loss)`` grows; BBR holds close to
  the bottleneck rate.
- **Nagle** delays small segments until the previous segment is ACKed, which
  on a WAN adds up to one RTT of latency to small, frequent sends (redo tail
  records, ACK-carrying heartbeats).

These models are consumed by :mod:`repro.replication.shipper`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.units import SECOND


@dataclass(frozen=True)
class CompressionModel:
    """A compression codec's observable behaviour.

    ``ratio`` is input_bytes / output_bytes; ``cpu_ns_per_kb`` the CPU cost
    of compressing one kilobyte (LZ4 compresses redo at several GB/s, so the
    cost is small but not free).
    """

    name: str
    ratio: float
    cpu_ns_per_kb: int

    def compress(self, size_bytes: int) -> tuple[int, int]:
        """Return (wire_bytes, cpu_ns) for a payload of ``size_bytes``."""
        if size_bytes <= 0:
            return 0, 0
        wire = max(1, round(size_bytes / self.ratio))
        cpu = round(size_bytes / 1024 * self.cpu_ns_per_kb)
        return wire, cpu


#: No compression: bytes pass through untouched.
NO_COMPRESSION = CompressionModel(name="none", ratio=1.0, cpu_ns_per_kb=0)

#: LZ4 on redo streams: ~2.8x ratio at ~0.4 GB/s-per-core => ~2.4 us/KB.
LZ4 = CompressionModel(name="lz4", ratio=2.8, cpu_ns_per_kb=2_400)


@dataclass(frozen=True)
class CongestionModel:
    """Throughput a bulk flow achieves on a lossy, high-latency path."""

    name: str
    bbr_like: bool
    loss_rate: float = 1e-4  # WAN background loss assumed by the model
    mss_bytes: int = 1460

    def effective_bandwidth(self, link_bandwidth_bps: float, rtt_ns: int) -> float:
        """Achievable throughput in bits/s for one bulk flow on this path."""
        if rtt_ns <= 0:
            return link_bandwidth_bps
        if self.bbr_like:
            # BBR probes the bottleneck rate directly and is largely
            # insensitive to random loss; it sustains ~95% of the link.
            return 0.95 * link_bandwidth_bps
        # Mathis model for loss-based control: rate ~ MSS / (RTT * sqrt(p)).
        rtt_s = rtt_ns / SECOND
        if self.loss_rate <= 0:
            return link_bandwidth_bps
        mathis_bps = (self.mss_bytes * 8) / (rtt_s * math.sqrt(self.loss_rate)) * 1.22
        return min(link_bandwidth_bps, mathis_bps)


#: BBR: model-based, loss-insensitive.
BBR = CongestionModel(name="bbr", bbr_like=True)

#: CUBIC-style loss-based control.
CUBIC = CongestionModel(name="cubic", bbr_like=False)


@dataclass(frozen=True)
class NagleModel:
    """Nagle's algorithm interaction with small writes.

    With Nagle enabled, a small segment (< MSS) sent while another segment is
    unacknowledged waits for that ACK — up to one RTT on a WAN. Disabling
    Nagle (TCP_NODELAY) removes the stall.
    """

    enabled: bool
    mss_bytes: int = 1460

    def send_penalty_ns(self, size_bytes: int, rtt_ns: int,
                        ns_since_last_send: int) -> int:
        """Extra latency added to this send."""
        if not self.enabled:
            return 0
        if size_bytes >= self.mss_bytes:
            return 0
        if ns_since_last_send >= rtt_ns:
            return 0  # previous segment already ACKed
        return rtt_ns - ns_since_last_send


NAGLE_ON = NagleModel(enabled=True)
NAGLE_OFF = NagleModel(enabled=False)


@dataclass(frozen=True)
class TransportConfig:
    """Bundle of transport choices for one shipping channel.

    ``baseline()`` mirrors stock GaussDB (no compression, loss-based CC,
    Nagle on); ``optimized()`` mirrors GlobalDB's tuned stack (§V-A).
    """

    compression: CompressionModel = NO_COMPRESSION
    congestion: CongestionModel = CUBIC
    nagle: NagleModel = NAGLE_ON

    @classmethod
    def baseline(cls) -> "TransportConfig":
        return cls(compression=NO_COMPRESSION, congestion=CUBIC, nagle=NAGLE_ON)

    @classmethod
    def optimized(cls) -> "TransportConfig":
        return cls(compression=LZ4, congestion=BBR, nagle=NAGLE_OFF)

    def describe(self) -> str:
        nagle = "nagle-on" if self.nagle.enabled else "nagle-off"
        return f"{self.compression.name}+{self.congestion.name}+{nagle}"
