"""Seeded, named random streams.

Every stochastic component (clock drift, network jitter, workload key
generation, ...) draws from its own named stream derived deterministically
from a single root seed. Components therefore never perturb each other's
randomness: adding a new consumer does not change the numbers an existing
consumer sees, which keeps experiments comparable across code revisions.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of (root seed, name).
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    # ------------------------------------------------------------------
    # Enumeration — always sorted by name, never dict order. Stream
    # *seeding* is order-independent (each seed hashes the name), but the
    # dict's insertion order tracks first-use order, which code revisions
    # reshuffle; anything that walks the streams (state dumps, digests)
    # must not inherit it.
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Names of every stream created so far, sorted."""
        return sorted(self._streams)

    def snapshot(self) -> dict[str, tuple]:
        """Name -> ``Random.getstate()`` for every stream, in sorted name
        order, so two equivalent runs serialize identical dumps."""
        return {name: self._streams[name].getstate()
                for name in sorted(self._streams)}
