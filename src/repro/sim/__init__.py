"""Deterministic discrete-event simulation substrate.

The whole database cluster runs inside this simulator: nodes are generator
processes, network latency is simulated time, and clocks drift relative to
simulated *true* time. The public surface is:

- :class:`~repro.sim.core.Environment` — the event loop.
- :class:`~repro.sim.events.Event`, :func:`~repro.sim.core.Environment.timeout`
  and friends — what processes ``yield``.
- :mod:`repro.sim.units` — nanosecond time-unit helpers.
- :mod:`repro.sim.network` / :mod:`repro.sim.transport` — message-passing
  links with latency, bandwidth, compression and congestion modelling.
- :mod:`repro.sim.rand` — seeded per-purpose random streams.
"""

from repro.sim.core import Environment, Process
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.units import MICROSECOND, MILLISECOND, SECOND, ms, ns_to_seconds, seconds, us

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "ms",
    "us",
    "seconds",
    "ns_to_seconds",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
]
