"""Simulated network: endpoints, links, messages, and RPC.

The model is a full mesh of point-to-point :class:`Link` objects. Each link
has a one-way propagation latency (plus optional jitter), a bandwidth, and a
serialization queue: back-to-back messages on the same link queue behind each
other, so redo-log bursts experience realistic transmission delay. Extra
delay can be injected per link to mimic the paper's ``tc``-based experiments
(Figs. 6b-6d).

Endpoints are named message sinks. A node registers a handler; messages are
delivered as :class:`Message` objects after the link delay. :meth:`Network.request`
layers a simple RPC on top: the callee receives a message whose payload is a
:class:`Request` and fires the caller's reply event via :meth:`Request.reply`.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.errors import NetworkError, SimulationError
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.units import SECOND


@dataclass(slots=True)
class Message:
    """A delivered network message."""

    src: str
    dst: str
    payload: typing.Any
    size_bytes: int
    send_time: int
    deliver_time: int


def _payload_kind(payload: typing.Any) -> str:
    """A low-cardinality name for a message payload (for traces/metrics)."""
    if isinstance(payload, Request):
        body = payload.body
        if isinstance(body, tuple) and body and isinstance(body[0], str):
            return body[0]
        return type(body).__name__
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0].strip("_")
    return type(payload).__name__


class Request:
    """RPC request payload wrapper.

    The handler on the destination endpoint calls :meth:`reply` (immediately
    or later, from a process) to complete the caller's pending event.
    """

    __slots__ = ("_network", "src", "dst", "body", "_reply_event", "replied")

    def __init__(self, network: "Network", src: str, dst: str, body: typing.Any,
                 reply_event: Event):
        self._network = network
        self.src = src
        self.dst = dst
        self.body = body
        self._reply_event = reply_event
        self.replied = False

    def reply(self, value: typing.Any = None, size_bytes: int = 128) -> None:
        """Send the reply back to the caller over the network."""
        if self.replied:
            raise SimulationError("RPC request already replied to")
        self.replied = True
        self._network.send(
            self.dst, self.src,
            payload=("__rpc_reply__", self._reply_event, value),
            size_bytes=size_bytes)

    def fail(self, exception: Exception) -> None:
        """Propagate ``exception`` to the caller instead of a value."""
        if self.replied:
            raise SimulationError("RPC request already replied to")
        self.replied = True
        self._network.send(
            self.dst, self.src,
            payload=("__rpc_fail__", self._reply_event, exception),
            size_bytes=64)


class Endpoint:
    """A named, addressable participant on the network."""

    __slots__ = ("name", "region", "handler", "up", "messages_received",
                 "bytes_received")

    def __init__(self, name: str, region: str,
                 handler: typing.Callable[[Message], None] | None = None):
        self.name = name
        self.region = region
        self.handler = handler
        self.up = True
        self.messages_received = 0
        self.bytes_received = 0


class Link:
    """A unidirectional link with latency, jitter, bandwidth and a FIFO
    serialization queue."""

    __slots__ = ("latency_ns", "bandwidth_bps", "jitter_ns", "extra_delay_ns",
                 "blocked", "busy_until", "bytes_sent", "messages_sent",
                 "_sched_at", "_sched_seq", "_sched_call")

    def __init__(self, latency_ns: int, bandwidth_bps: float, jitter_ns: int = 0):
        self.latency_ns = latency_ns
        self.bandwidth_bps = bandwidth_bps
        self.jitter_ns = jitter_ns
        self.extra_delay_ns = 0  # tc-style injected delay
        self.blocked = False  # network partition: messages are dropped
        self.busy_until = 0  # serialization queue tail
        self.bytes_sent = 0
        self.messages_sent = 0
        # Last scheduled delivery on this link, for same-instant coalescing:
        # deliver time, env._seq at push time, and the kernel _Call entry.
        self._sched_at = -1
        self._sched_seq = -1
        self._sched_call = None

    def transmission_ns(self, size_bytes: int) -> int:
        """Time to clock ``size_bytes`` onto the wire."""
        if self.bandwidth_bps <= 0:
            return 0
        return round(size_bytes * 8 / self.bandwidth_bps * SECOND)

    def one_way_ns(self, jitter: int = 0) -> int:
        """Propagation delay including injected delay and sampled jitter."""
        return self.latency_ns + self.extra_delay_ns + jitter


class Network:
    """The cluster's message fabric."""

    def __init__(self, env: Environment, jitter_stream=None,
                 default_bandwidth_bps: float = 10e9 / 8 * 8):
        self.env = env
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._jitter_stream = jitter_stream
        self.default_bandwidth_bps = default_bandwidth_bps
        self.default_latency_ns = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Free list of Message shells. Only messages that provably cannot
        # have escaped _deliver (RPC replies, drops to dead endpoints) are
        # recycled, and never while the sanitizer is installed — repro.san
        # keys in-flight fingerprints by id(message), which recycling
        # would alias.
        self._msg_pool: list[Message] = []

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_endpoint(self, name: str, region: str,
                     handler: typing.Callable[[Message], None] | None = None) -> Endpoint:
        if name in self._endpoints:
            raise SimulationError(f"duplicate endpoint name: {name}")
        endpoint = Endpoint(name, region, handler)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint: {name}") from None

    def set_handler(self, name: str, handler: typing.Callable[[Message], None]) -> None:
        self.endpoint(name).handler = handler

    def set_link(self, src: str, dst: str, latency_ns: int,
                 bandwidth_bps: float | None = None, jitter_ns: int = 0,
                 bidirectional: bool = True) -> None:
        """Configure the link(s) between two endpoints."""
        bandwidth = bandwidth_bps if bandwidth_bps is not None else self.default_bandwidth_bps
        self._links[(src, dst)] = Link(latency_ns, bandwidth, jitter_ns)
        if bidirectional:
            self._links[(dst, src)] = Link(latency_ns, bandwidth, jitter_ns)

    def link(self, src: str, dst: str) -> Link:
        """Return (creating lazily) the link from ``src`` to ``dst``."""
        key = (src, dst)
        existing = self._links.get(key)
        if existing is None:
            existing = Link(self.default_latency_ns, self.default_bandwidth_bps)
            self._links[key] = existing
        return existing

    def inject_delay(self, src: str, dst: str, extra_ns: int,
                     bidirectional: bool = True) -> None:
        """tc-style extra one-way delay injection (Figs. 6b-6d)."""
        self.link(src, dst).extra_delay_ns = extra_ns
        if bidirectional:
            self.link(dst, src).extra_delay_ns = extra_ns

    def inject_delay_all(self, extra_ns: int) -> None:
        """Inject delay on every link between distinct endpoints."""
        names = list(self._endpoints)
        for src in names:
            for dst in names:
                if src != dst:
                    self.link(src, dst).extra_delay_ns = extra_ns

    def inject_delay_between_regions(self, extra_ns: int) -> None:
        """tc-style delay between machines only: links whose endpoints are
        in different regions (= different servers). Same-server traffic is
        unaffected, as in the paper's Fig. 6b-6d setup."""
        names = list(self._endpoints)
        for src in names:
            for dst in names:
                if (src != dst and self._endpoints[src].region
                        != self._endpoints[dst].region):
                    self.link(src, dst).extra_delay_ns = extra_ns

    def set_endpoint_up(self, name: str, up: bool) -> None:
        """Bring an endpoint up or down (failure injection)."""
        self.endpoint(name).up = up

    def set_partition(self, region_a: str, region_b: str,
                      blocked: bool = True) -> None:
        """Partition (or heal) the network between two regions: every
        message crossing the cut is silently dropped, in both directions."""
        for src, src_endpoint in self._endpoints.items():
            for dst, dst_endpoint in self._endpoints.items():
                if src == dst:
                    continue
                regions = {src_endpoint.region, dst_endpoint.region}
                if regions == {region_a, region_b}:
                    self.link(src, dst).blocked = blocked

    def latency_ns(self, src: str, dst: str) -> int:
        """The current base one-way latency src -> dst (no jitter)."""
        if src == dst:
            return 0
        return self.link(src, dst).one_way_ns()

    def rtt_ns(self, src: str, dst: str) -> int:
        """Round-trip latency between two endpoints (no jitter)."""
        return self.latency_ns(src, dst) + self.latency_ns(dst, src)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: typing.Any,
             size_bytes: int = 128, extra_delay_ns: int = 0) -> None:
        """Send a one-way message. Delivery is silent about failures:
        messages to a down endpoint are dropped (counted)."""
        env = self.env
        endpoints = self._endpoints
        if src not in endpoints:
            raise NetworkError(f"unknown source endpoint: {src}")
        if dst not in endpoints:
            raise NetworkError(f"unknown destination endpoint: {dst}")
        now = env.now
        link = None
        if src == dst:
            deliver_at = now
        else:
            link = self.link(src, dst)
            if link.blocked:
                self.messages_dropped += 1
                if env.metrics_on:
                    env.metrics.counter("net.dropped", src=src, dst=dst).inc()
                return
            jitter = 0
            if link.jitter_ns and self._jitter_stream is not None:
                jitter = self._jitter_stream.randint(0, link.jitter_ns)
            start_tx = now if now >= link.busy_until else link.busy_until
            tx = link.transmission_ns(size_bytes)
            link.busy_until = start_tx + tx
            link.bytes_sent += size_bytes
            link.messages_sent += 1
            deliver_at = start_tx + tx + link.one_way_ns(jitter)
        deliver_at += extra_delay_ns
        san = None
        if env.hooks_net:
            if env.metrics_on:
                metrics = env.metrics
                metrics.counter("net.messages", src=src, dst=dst).inc()
                metrics.counter("net.bytes", src=src, dst=dst).inc(size_bytes)
                metrics.histogram("net.delivery_ns").record(deliver_at - now)
            if env.trace_on and src != dst:
                # The delivery time is fully determined at send time, so the
                # whole in-flight interval can be recorded as one span.
                env.tracer.complete("net", _payload_kind(payload), now, deliver_at,
                                    track=f"net:{src}->{dst}", size=size_bytes)
            san = env.san
        pool = self._msg_pool
        if pool:
            message = pool.pop()
            message.src = src
            message.dst = dst
            message.payload = payload
            message.size_bytes = size_bytes
            message.send_time = now
            message.deliver_time = deliver_at
        else:
            message = Message(src, dst, payload, size_bytes, now, deliver_at)
        if san is not None:
            # Fingerprint the payload as it leaves the sender; _deliver
            # re-verifies it just before the handler runs.
            san.on_message_send(message)
        if link is not None:
            # Same-link same-instant coalescing: if the link's previous
            # delivery entry lands at the same instant AND nothing has been
            # scheduled since it was pushed (env._seq unchanged), this
            # message would have received the very next sequence number —
            # so appending it to that entry delivers it in exactly the slot
            # it would have occupied anyway. Bit-identical history, one
            # fewer queue entry (redo-log bursts hit this constantly).
            # The strictly-future condition is load-bearing twice over: a
            # same-tick (deliver_at == now) entry may have already fired —
            # appending would silently drop the message — and a fired entry
            # may have been recycled through the kernel's _Call pool. A
            # future entry can have done neither without the clock moving
            # or env._seq changing, both of which fail this guard.
            if (link._sched_at == deliver_at and deliver_at > now
                    and link._sched_seq == env._seq):
                call = link._sched_call
                if call.fn is self._deliver:
                    call.fn = self._deliver_batch
                    call.arg = [call.arg, message]
                else:
                    call.arg.append(message)
                return
            link._sched_call = env.defer(deliver_at - now, self._deliver, message)
            link._sched_at = deliver_at
            link._sched_seq = env._seq
            return
        env.defer(deliver_at - now, self._deliver, message)

    def _deliver_batch(self, messages: list[Message]) -> None:
        deliver = self._deliver
        for message in messages:
            deliver(message)

    def _deliver(self, message: Message) -> None:
        san = self.env.san
        if san is not None:
            san.on_message_deliver(message)
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None or not endpoint.up:
            self.messages_dropped += 1
            if self.env.metrics_on:
                self.env.metrics.counter("net.dropped", src=message.src,
                                         dst=message.dst).inc()
            if san is None:
                message.payload = None
                self._msg_pool.append(message)
            return
        self.messages_delivered += 1
        endpoint.messages_received += 1
        endpoint.bytes_received += message.size_bytes
        payload = message.payload
        if isinstance(payload, tuple) and payload and payload[0] in (
                "__rpc_reply__", "__rpc_fail__"):
            kind, reply_event, value = payload
            # The reply is fully consumed right here — the Message shell
            # cannot have escaped, so it is safe to recycle.
            if san is None:
                message.payload = None
                self._msg_pool.append(message)
            if reply_event.triggered:
                return  # caller timed out / gave up
            if kind == "__rpc_reply__":
                reply_event.succeed(value)
            else:
                reply_event.fail(value)
            return
        if endpoint.handler is None:
            raise SimulationError(f"endpoint {message.dst!r} has no handler")
        endpoint.handler(message)

    def request(self, src: str, dst: str, body: typing.Any,
                size_bytes: int = 128, timeout_ns: int | None = None) -> Event:
        """RPC: returns an event that fires with the callee's reply.

        If the destination is down at send time, or ``timeout_ns`` elapses
        first, the event fails with :class:`NetworkError`.
        """
        reply_event = Event(self.env)
        destination = self.endpoint(dst)
        if not destination.up:
            reply_event.fail(NetworkError(f"endpoint {dst} is down"))
            reply_event.defused = True
            return reply_event
        request = Request(self, src, dst, body, reply_event)
        self.send(src, dst, payload=request, size_bytes=size_bytes)
        if timeout_ns is not None:
            self._arm_timeout(reply_event, timeout_ns, dst)
        return reply_event

    def _arm_timeout(self, reply_event: Event, timeout_ns: int, dst: str) -> None:
        timer = self.env.timeout(timeout_ns)

        def on_timer(_ev: Event) -> None:
            if not reply_event.triggered:
                reply_event.fail(NetworkError(f"RPC to {dst} timed out"))

        timer.add_callback(on_timer)


@dataclass
class NetworkStats:
    """Aggregate counters useful in tests and benchmark reports."""

    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_by_link: dict = field(default_factory=dict)

    @classmethod
    def capture(cls, network: Network) -> "NetworkStats":
        stats = cls(network.messages_delivered, network.messages_dropped)
        stats.bytes_by_link = {
            pair: link.bytes_sent for pair, link in network._links.items() if link.bytes_sent
        }
        return stats
