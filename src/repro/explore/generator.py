"""Seeded trial generation and AFL-style mutation.

The generator samples from the whole fault surface :mod:`repro.chaos`
exposes — partitions, splits, asymmetric cuts, link degradation, node
crashes (including *shard-targeted* crash storms that exploit the
deterministic ``dn{shard}``/``dn{shard}r{i}`` naming), clock anomalies,
sync/GTM outages and mode migration under fire — plus workload mixes,
starting TM modes and t=0 timing perturbations. Mutation operators make
small moves around a corpus entry: add/drop/retime/retarget one fault,
flip the mode, grow or shrink the mix.

Every random draw comes from the ``random.Random`` the engine hands in
(derived from the engine seed and trial index through the same hashed
scheme as :class:`repro.sim.rand.RandomStreams`), so generation is fully
deterministic and independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace

from repro.chaos.injectors import (
    AsymmetricPartition,
    BandwidthCollapse,
    ClockDriftBurst,
    ClockStep,
    GtmOutage,
    JitterStorm,
    LatencySpike,
    MigrationUnderFire,
    NodeCrash,
    RegionPartition,
    RegionSplit,
    SyncOutage,
)
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.explore.spec import FRAGMENT_NAMES, MODE_NAMES, TrialSpec

#: Region lists per topology preset (mirrors repro.cluster.topology — the
#: generator must know names without building a cluster).
TOPOLOGY_REGIONS: dict[str, tuple[str, ...]] = {
    "three_city": ("xian", "langzhong", "dongguan"),
    "two_region": ("primary", "standby"),
}

#: Cluster layout constants the trial runner builds with (ClusterConfig
#: defaults): shard primaries ``dn{s}``, replicas ``dn{s}r{i}``.
SHARDS = 6
REPLICAS_PER_SHARD = 2

#: Quantum for every generated time: keeps mutated schedules on a small
#: grid so the shrinker's "same schedule" dedup actually hits.
TIME_GRID_S = 0.05


def _quantize(value: float) -> float:
    return round(round(value / TIME_GRID_S) * TIME_GRID_S, 4)


@dataclass(frozen=True)
class GenParams:
    """Bounds the generator works within (one trial budget)."""

    topology: str = "three_city"
    duration_s: float = 0.6
    warmup_s: float = 0.05
    min_faults: int = 1
    max_faults: int = 5
    terminals: int = 4
    accounts: int = 12


class TrialGenerator:
    """Samples fresh :class:`TrialSpec` values and mutates corpus picks."""

    def __init__(self, params: GenParams | None = None):
        self.params = params or GenParams()

    # ------------------------------------------------------------------
    # Fault sampling
    # ------------------------------------------------------------------
    def _regions(self) -> tuple[str, ...]:
        return TOPOLOGY_REGIONS[self.params.topology]

    def _region_pair(self, rng: random.Random) -> tuple[str, str]:
        return tuple(rng.sample(list(self._regions()), 2))

    def _sample_injector(self, rng: random.Random):
        regions = self._regions()
        choice = rng.randrange(12)
        if choice == 0:
            return RegionPartition(*self._region_pair(rng))
        if choice == 1:
            return RegionSplit(rng.choice(regions))
        if choice == 2:
            return AsymmetricPartition(*self._region_pair(rng))
        if choice == 3:
            return LatencySpike(extra_ms=rng.choice((10.0, 20.0, 40.0)))
        if choice == 4:
            return JitterStorm(jitter_ms=rng.choice((2.0, 5.0, 10.0)))
        if choice == 5:
            return BandwidthCollapse(factor=rng.choice((50.0, 100.0, 200.0)))
        if choice == 6:
            return NodeCrash(rng.choice(("replica", "replica", "primary",
                                         "cn")))
        if choice == 7:
            return ClockDriftBurst(rng.choice(regions),
                                   factor=rng.choice((4.0, 8.0, 12.0)))
        if choice == 8:
            return ClockStep(step_us=rng.choice((10.0, 20.0, 30.0)))
        if choice == 9:
            return SyncOutage(rng.choice(regions))
        if choice == 10:
            return GtmOutage()
        return MigrationUnderFire()

    def _sample_fault(self, rng: random.Random) -> FaultSpec:
        injector = self._sample_injector(rng)
        run_s = self.params.duration_s + self.params.warmup_s
        at_s = _quantize(rng.uniform(0.05, max(0.1, run_s - 0.15)))
        if injector.name in ("clock-step", "migration-under-fire"):
            return FaultSpec(injector, at_s=at_s)   # one-shot by nature
        duration_s = _quantize(rng.choice((0.1, 0.15, 0.2, 0.25)))
        if rng.random() < 0.15:
            every_s = _quantize(duration_s + rng.choice((0.15, 0.2)))
            return FaultSpec(injector, at_s=at_s, duration_s=duration_s,
                             every_s=every_s, repeat=2)
        return FaultSpec(injector, at_s=at_s, duration_s=duration_s)

    def stale_failover_pattern(self, rng: random.Random) -> list[FaultSpec]:
        """Shard-targeted crash storm: stall one replica's redo frontier
        while the RCP advances, then kill the caught-up replica and the
        primary so the stale one is the only promotion candidate. This is
        the pattern family that rediscovers the pre-PR-8 RCP-gap bug when
        :mod:`repro.explore.bugs` re-introduces it."""
        shard = rng.randrange(SHARDS)
        laggard = rng.randrange(REPLICAS_PER_SHARD)
        stall_at = _quantize(rng.choice((0.1, 0.15, 0.2)))
        stall_for = _quantize(rng.choice((0.3, 0.35, 0.4)))
        kill_at = _quantize(stall_at + stall_for + TIME_GRID_S)
        specs = [
            FaultSpec(NodeCrash("replica", node=f"dn{shard}r{laggard}"),
                      at_s=stall_at, duration_s=stall_for),
        ]
        for index in range(REPLICAS_PER_SHARD):
            if index != laggard:
                specs.append(FaultSpec(
                    NodeCrash("replica", node=f"dn{shard}r{index}"),
                    at_s=kill_at))
        specs.append(FaultSpec(NodeCrash("primary", node=f"dn{shard}"),
                               at_s=kill_at))
        return specs

    # ------------------------------------------------------------------
    # Fresh specs
    # ------------------------------------------------------------------
    def fresh(self, rng: random.Random, index: int) -> TrialSpec:
        params = self.params
        count = rng.randint(params.min_faults, params.max_faults)
        specs = [self._sample_fault(rng) for _ in range(count)]
        # Occasional t=0 environment perturbation: the kernel-timing
        # dimension (jitter, inflated WAN latency) held for the whole run.
        if rng.random() < 0.3:
            ambient = rng.choice((JitterStorm(jitter_ms=2.0),
                                  LatencySpike(extra_ms=10.0)))
            specs.insert(0, FaultSpec(
                ambient, at_s=0.0,
                duration_s=params.duration_s + params.warmup_s))
        # Occasional shard-targeted failover storm instead of noise.
        if rng.random() < 0.15:
            specs = self.stale_failover_pattern(rng) + specs[:2]
        fragments: tuple[str, ...] = ("bank",)
        if rng.random() < 0.35:
            extras = [name for name in FRAGMENT_NAMES if name != "bank"]
            fragments = ("bank", rng.choice(extras))
        return TrialSpec(
            seed=rng.randrange(1 << 30),
            schedule=FaultSchedule(f"explore-{index}", tuple(specs)),
            topology=params.topology,
            mode=rng.choice(MODE_NAMES) if rng.random() < 0.3 else "gclock",
            duration_s=params.duration_s,
            warmup_s=params.warmup_s,
            terminals=params.terminals,
            accounts=params.accounts,
            fragments=fragments,
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mutate(self, rng: random.Random, spec: TrialSpec,
               index: int) -> TrialSpec:
        """One small move around ``spec`` (always returns a valid spec)."""
        specs = list(spec.schedule.specs)
        op = rng.randrange(8)
        if op == 0 or not specs:                       # add a fault
            specs.insert(rng.randint(0, len(specs)), self._sample_fault(rng))
        elif op == 1 and len(specs) > 1:               # drop a fault
            specs.pop(rng.randrange(len(specs)))
        elif op == 2:                                  # retime a fault
            victim = rng.randrange(len(specs))
            shifted = _quantize(max(
                0.0, specs[victim].at_s + rng.choice((-0.15, -0.05, 0.05,
                                                      0.15))))
            specs[victim] = replace(specs[victim], at_s=shifted)
        elif op == 3:                                  # swap an injector
            victim = rng.randrange(len(specs))
            specs[victim] = replace(specs[victim],
                                    injector=self._sample_injector(rng))
        elif op == 4:                                  # stretch a window
            victim = rng.randrange(len(specs))
            fault = specs[victim]
            if fault.duration_s > 0 and fault.every_s is None:
                specs[victim] = replace(fault, duration_s=_quantize(
                    max(TIME_GRID_S, fault.duration_s
                        + rng.choice((-0.05, 0.05, 0.1)))))
        elif op == 5:                                  # reseed the cluster
            return replace(spec, seed=rng.randrange(1 << 30),
                           schedule=FaultSchedule(f"explore-{index}",
                                                  tuple(specs)))
        elif op == 6:                                  # flip the TM mode
            other = [mode for mode in MODE_NAMES if mode != spec.mode]
            return replace(spec, mode=rng.choice(other),
                           schedule=FaultSchedule(f"explore-{index}",
                                                  tuple(specs)))
        else:                                          # vary the mix
            if len(spec.fragments) == 1:
                extras = [name for name in FRAGMENT_NAMES if name != "bank"]
                fragments: tuple[str, ...] = ("bank", rng.choice(extras))
            else:
                fragments = ("bank",)
            return replace(spec, fragments=fragments,
                           schedule=FaultSchedule(f"explore-{index}",
                                                  tuple(specs)))
        return replace(spec, schedule=FaultSchedule(f"explore-{index}",
                                                    tuple(specs)))


def derive_rng(seed: int, label: str) -> random.Random:
    """A ``Random`` whose seed is a stable hash of ``(seed, label)`` —
    the :class:`~repro.sim.rand.RandomStreams` scheme, usable without an
    environment (hash-seed independent, unlike ``hash()``)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
