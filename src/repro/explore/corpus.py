"""The explorer's corpus: specs that earned their keep by covering more.

AFL economics, adapted: a trial's coverage signature (a set of coarse
structural elements — see :mod:`repro.explore.coverage`) is compared
against the union of everything the corpus has already covered. A trial
contributing at least one new element is kept and becomes mutation fodder;
one covering only known ground is discarded. Entries are deduped by spec
digest, iteration is insertion-ordered, and the whole corpus serializes to
sorted-key JSON, so two explorer processes with the same seed write
byte-identical corpus files regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.explore.coverage import coverage_digest
from repro.explore.spec import TrialSpec


@dataclass
class CorpusEntry:
    spec: TrialSpec
    signature: tuple[str, ...]
    new_elements: tuple[str, ...]  # what this entry added when admitted

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "signature": list(self.signature),
                "new_elements": list(self.new_elements)}


class Corpus:
    """Coverage-keyed spec store with deterministic admission."""

    def __init__(self):
        self.entries: list[CorpusEntry] = []
        self.coverage: set[str] = set()
        self._digests: set[str] = set()

    def __len__(self) -> int:
        return len(self.entries)

    def consider(self, spec: TrialSpec,
                 signature: tuple[str, ...]) -> tuple[str, ...]:
        """Admit ``spec`` iff its signature covers new ground; returns
        the newly covered elements (empty tuple = rejected)."""
        new = tuple(sorted(set(signature) - self.coverage))
        self.coverage.update(signature)
        if not new:
            return ()
        digest = spec.digest()
        if digest in self._digests:
            return ()
        self._digests.add(digest)
        self.entries.append(CorpusEntry(spec, signature, new))
        return new

    def pick(self, rng: random.Random) -> TrialSpec:
        """Mutation fodder, biased toward recent (deeper) entries."""
        if not self.entries:
            raise IndexError("empty corpus")
        index = max(rng.randrange(len(self.entries)),
                    rng.randrange(len(self.entries)))
        return self.entries[index].spec

    # ------------------------------------------------------------------
    def coverage_digest(self) -> str:
        return coverage_digest(self.coverage)

    def to_dict(self) -> dict:
        return {
            "entries": [entry.to_dict() for entry in self.entries],
            "coverage": sorted(self.coverage),
            "coverage_digest": self.coverage_digest(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)
