"""Delta-debugging shrinker: smallest failing fault schedule, then proof.

Given a failing trial, :func:`shrink` runs ddmin (Zeller & Hildebrandt)
over the fault list: try removing chunks of faults, keep any subset that
still reproduces the failure fingerprint, refine the chunk size, repeat
until 1-minimal — removing any single remaining fault makes the failure
disappear. A final pass simplifies the orthogonal dimensions (drop extra
workload fragments, reset the TM mode) when doing so keeps the failure.

"Reproduces" is by *fingerprint*: the sorted set of violation kinds of
the original failure must all still be present. Kinds, not messages —
messages carry timestamps/node names that legitimately move when earlier
faults are removed (chaos randomness is seeded per (schedule name, fault
index), so dropping fault 0 reshapes fault 1's draws; ddmin is safe under
that non-monotonicity because it re-runs every candidate).

The result is emitted as a *reproducer artifact* — a self-contained JSON
document with the minimized spec, the expected violations and the
canonical violation digest. ``python -m repro.explore replay <artifact>``
re-runs the spec and verifies the digest matches bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.explore.runner import TrialResult, run_trial
from repro.explore.spec import TrialSpec

ARTIFACT_FORMAT = "repro.explore/reproducer-v1"


def fingerprint(result: TrialResult) -> tuple[str, ...]:
    """The failure identity shrinking preserves: sorted violation kinds
    (checker names for checker violations, oracle kinds otherwise)."""
    kinds = {violation.get("kind") or violation.get("checker", "?")
             for violation in result.violations}
    return tuple(sorted(kinds))


@dataclass
class ShrinkResult:
    """The minimized reproducer plus the work it took."""

    spec: TrialSpec
    result: TrialResult
    original_faults: int
    trials_run: int = 0
    steps: list[str] = field(default_factory=list)

    @property
    def final_faults(self) -> int:
        return self.spec.fault_count


def shrink(spec: TrialSpec, failing: TrialResult,
           inject_bug: str | None = None,
           max_trials: int = 64) -> ShrinkResult:
    """ddmin the fault list of ``spec``; returns the 1-minimal spec."""
    target = fingerprint(failing)
    state = ShrinkResult(spec=spec, result=failing,
                         original_faults=spec.fault_count)

    def reproduces(candidate: TrialSpec) -> TrialResult | None:
        if state.trials_run >= max_trials:
            return None
        state.trials_run += 1
        result = run_trial(candidate, inject_bug=inject_bug)
        if not result.ok and set(target) <= set(fingerprint(result)):
            return result
        return None

    # --- ddmin over the fault list -----------------------------------
    faults = list(spec.schedule.specs)
    chunks = 2
    while len(faults) >= 2 and state.trials_run < max_trials:
        size = max(1, len(faults) // chunks)
        reduced = False
        for start in range(0, len(faults), size):
            candidate_faults = faults[:start] + faults[start + size:]
            if not candidate_faults:
                continue
            candidate = state.spec.with_schedule(candidate_faults)
            result = reproduces(candidate)
            if result is not None:
                faults = candidate_faults
                state.spec, state.result = candidate, result
                state.steps.append(
                    f"dropped faults [{start}:{start + size}) -> "
                    f"{len(faults)} left")
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if size <= 1:
                break  # 1-minimal
            chunks = min(len(faults), chunks * 2)

    # --- simplify orthogonal dimensions ------------------------------
    if len(state.spec.fragments) > 1:
        candidate = replace(state.spec, fragments=("bank",))
        result = reproduces(candidate)
        if result is not None:
            state.spec, state.result = candidate, result
            state.steps.append("dropped extra workload fragments")
    if state.spec.mode != "gclock":
        candidate = replace(state.spec, mode="gclock")
        result = reproduces(candidate)
        if result is not None:
            state.spec, state.result = candidate, result
            state.steps.append("reset TM mode to gclock")
    return state


# ----------------------------------------------------------------------
# Reproducer artifacts
# ----------------------------------------------------------------------
def make_artifact(shrunk: ShrinkResult,
                  inject_bug: str | None = None) -> dict:
    """Self-contained replay document (canonically serializable)."""
    return {
        "format": ARTIFACT_FORMAT,
        "spec": shrunk.spec.to_dict(),
        "inject_bug": inject_bug,
        "fingerprint": list(fingerprint(shrunk.result)),
        "violations": shrunk.result.violations,
        "violation_digest": shrunk.result.violation_digest,
        "history_digest": shrunk.result.history_digest,
        "shrink": {
            "original_faults": shrunk.original_faults,
            "final_faults": shrunk.final_faults,
            "trials_run": shrunk.trials_run,
            "steps": shrunk.steps,
        },
    }


def artifact_json(artifact: dict) -> str:
    return json.dumps(artifact, sort_keys=True, indent=2)


def replay_artifact(artifact: dict) -> tuple[bool, TrialResult]:
    """Re-run an artifact's spec; True iff the violation digest matches."""
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"not a reproducer artifact: "
                         f"{artifact.get('format')!r}")
    spec = TrialSpec.from_dict(artifact["spec"])
    result = run_trial(spec, inject_bug=artifact.get("inject_bug"))
    return result.violation_digest == artifact["violation_digest"], result
