"""The oracle layer: what makes a fuzzed trial a *failure*.

Beyond the offline history checkers (:mod:`repro.check.checkers`), every
trial is judged by structural oracles that need no workload semantics:

- **unexpected-exception** — the run raised anything other than the
  transaction-level outcomes the driver absorbs. A fuzzer that only
  checks invariants would misfile crashes as "no data".
- **stuck-simulation** — the cluster made zero progress over the whole
  measured window despite live terminals: a wedged commit path, a
  scheduler deadlock, or an unkillable in-doubt transaction.
- **sanitizer findings** — runtime deadlock cycles / mutation-after-send
  from :mod:`repro.san` (always installed for trials).
- **rcp-monotonicity** — a probe process samples every CN's RCP during
  the run; the RCP must never move backward from any client's view.
- **ror-promotion-gap** — no promotion may complete with the new
  primary's redo frontier below the RCP its CNs advertised (the failover
  manager measures the gap at every promotion; an unhealed gap is the
  pre-PR-8 bug re-observed).
- **ror-frontier-coverage** — after quiesce + settle, every *live*
  replica (and promoted primary) of every *live* shard must have applied
  commits up to the RCP its CNs advertised: clients were promised replica
  reads at that point are strongly consistent. The pre-PR-8 promotion
  bug is exactly a violation of this oracle.
- **wal-pool-aliasing** — no recycled redo-record shell may still be
  reachable from the live WAL window (the PR-9 pooling safety argument,
  checked by object identity).

Oracles only inspect state; none of them schedules events before the run
ends, so an oracle-checked trial has the same event history as a bare one
(the RCP probe runs *during* the sim but is a pure timer + reader, which
perturbs event ordering deterministically and identically per spec).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.sim.units import ms

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB


@dataclass(frozen=True)
class TrialViolation:
    """One oracle (or checker) failure, with deterministic evidence."""

    kind: str
    message: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message}


class RcpProbe:
    """Samples every CN's RCP on a fixed cadence; records regressions."""

    def __init__(self, db: "GlobalDB", interval_ns: int = ms(20)):
        self.db = db
        self.interval_ns = interval_ns
        self.regressions: list[str] = []
        self._last: dict[str, int] = {}
        self._process = None

    def start(self, until_ns: int) -> "RcpProbe":
        self._process = self.db.env.process(self._run(until_ns),
                                            name="explore-rcp-probe")
        return self

    def _run(self, until_ns: int):
        env = self.db.env
        while env.now < until_ns:
            yield env.timeout(self.interval_ns)
            for cn in self.db.cns:
                rcp = cn.rcp_state.rcp
                last = self._last.get(cn.name, 0)
                if rcp < last:
                    self.regressions.append(
                        f"{cn.name}: RCP moved backward {last} -> {rcp} "
                        f"at t={env.now}ns")
                self._last[cn.name] = rcp

    def violations(self) -> list[TrialViolation]:
        return [TrialViolation("rcp-monotonicity", message)
                for message in self.regressions]


def check_frontier_coverage(db: "GlobalDB") -> list[TrialViolation]:
    """Post-settle: live shard members must cover the advertised RCP.

    Skips shards whose primary is down (nothing was promised for them
    anymore — CN routing excludes them) and replicas that are down (the
    skyline excludes them from ROR routing). With faults healed and the
    settle window elapsed, every remaining member has had time to catch
    up, so a frontier below the advertised RCP is a broken promise, not a
    transient.
    """
    advertised = max((cn.rcp_state.rcp for cn in db.cns), default=0)
    if advertised <= 0:
        return []
    violations = []
    for shard, primary in enumerate(db.primaries):
        if primary.failed:
            continue
        frontier = primary.engine.last_commit_ts
        if frontier < advertised:
            violations.append(TrialViolation(
                "ror-frontier-coverage",
                f"shard {shard} primary {primary.name} frontier {frontier} "
                f"is below the advertised RCP {advertised} after settle "
                f"(stale promotion or lost redo heartbeat)"))
        for replica in db.replicas.get(shard, ()):
            if replica.failed:
                continue
            applied = replica.store.max_commit_ts
            if applied < advertised:
                violations.append(TrialViolation(
                    "ror-frontier-coverage",
                    f"shard {shard} replica {replica.name} applied frontier "
                    f"{applied} is below the advertised RCP {advertised} "
                    f"after settle"))
    return violations


def check_promotion_coverage(db: "GlobalDB") -> list[TrialViolation]:
    """No promotion may leave the shard's frontier below the advertised
    RCP. The failover manager measures the gap at every promotion (it is
    the pre-heal measurement, taken whether or not the guard then heals
    it); an unhealed gap means clients were promised strongly-consistent
    replica reads the shard can no longer serve — the pre-PR-8 bug.
    """
    if db.failover is None:
        return []
    violations = []
    for event in db.failover.events:
        if event.rcp_gap_unhealed > 0:
            violations.append(TrialViolation(
                "ror-promotion-gap",
                f"shard {event.shard}: promoted {event.new_primary} with a "
                f"redo frontier {event.rcp_gap_unhealed}ns below the "
                f"advertised RCP at t={event.at_ns}ns — strongly-consistent "
                f"replica reads at the RCP were not serviceable"))
    return violations


def check_wal_pool_aliasing(db: "GlobalDB") -> list[TrialViolation]:
    """No pooled (recycled) redo shell may alias the live WAL window."""
    violations = []
    for primary in db.primaries:
        wal = primary.engine.wal
        pooled_ids = {id(record) for pool in wal._pools.values()
                      for record in pool}
        if not pooled_ids:
            continue
        for record in wal._records:
            if id(record) in pooled_ids:
                violations.append(TrialViolation(
                    "wal-pool-aliasing",
                    f"{primary.name}: recycled redo shell lsn={record.lsn} "
                    f"is still reachable from the live WAL window"))
    return violations


def check_progress(committed: int, aborted: int,
                   terminals: int) -> list[TrialViolation]:
    if terminals > 0 and committed + aborted == 0:
        return [TrialViolation(
            "stuck-simulation",
            f"{terminals} terminals completed zero transactions (commit "
            f"or abort) over the whole run — the cluster is wedged")]
    return []


def san_violations(db: "GlobalDB") -> list[TrialViolation]:
    if db.env.san is None:
        return []
    return [TrialViolation(f"san:{finding.kind}", finding.message)
            for finding in db.env.san.report.findings]
