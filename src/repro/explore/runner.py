"""Run one :class:`~repro.explore.spec.TrialSpec` in-process, fully judged.

This is the fuzzer's measurement instrument: build the cluster the spec
pins, arm every detector (history recorder, sanitizer, RCP probe), drive
the workload mix under the fault schedule, quiesce, settle, audit, then
pass the run through the offline checkers and the oracle layer. The
result carries the coverage signature (feedback for the engine) and a
canonical ``violation_digest`` — two runs of the same spec, in different
processes with different ``PYTHONHASHSEED`` values, produce identical
digests. That identity is what makes a replay artifact *proof*.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.chaos.schedule import Nemesis
from repro.check.checkers import run_all_checks
from repro.check.history import HistoryRecorder
from repro.check.runner import SETTLE_S, final_audit
from repro.explore.bugs import apply_bug
from repro.explore.coverage import trial_signature
from repro.explore.oracles import (
    RcpProbe,
    TrialViolation,
    check_frontier_coverage,
    check_progress,
    check_promotion_coverage,
    check_wal_pool_aliasing,
    san_violations,
)
from repro.explore.spec import TrialSpec
from repro.san import Sanitizer
from repro.sim.units import seconds


@dataclass
class TrialResult:
    """Everything the engine (and a human triaging a finding) needs."""

    spec: TrialSpec
    ok: bool
    violations: list[dict] = field(default_factory=list)
    signature: tuple[str, ...] = ()
    committed: int = 0
    aborted: int = 0
    failovers: int = 0
    chaos_events: int = 0
    audit_status: str = "unknown"
    history_digest: str = ""
    violation_digest: str = ""

    def summary(self) -> dict:
        return {
            "spec_digest": self.spec.digest(),
            "ok": self.ok,
            "violations": self.violations,
            "violation_digest": self.violation_digest,
            "signature_size": len(self.signature),
            "committed": self.committed,
            "aborted": self.aborted,
            "failovers": self.failovers,
            "chaos_events": self.chaos_events,
            "audit_status": self.audit_status,
        }


def violation_digest(violations: list[dict]) -> str:
    """Canonical hash of a violation list (sorted-key JSON, order-free)."""
    canonical = json.dumps(sorted(violations,
                                  key=lambda v: json.dumps(v, sort_keys=True)),
                           sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _build_workload(spec: TrialSpec):
    from repro.workloads import (BankConfig, BankWorkload, MixedWorkload,
                                 SysbenchConfig, SysbenchWorkload, TpccConfig,
                                 TpccWorkload)
    bank_config = BankConfig(accounts=spec.accounts,
                             seed=spec.seed * 1_000_003 + 17)
    bank = BankWorkload(bank_config)
    if spec.fragments == ("bank",):
        return bank, bank_config
    fragments: list[tuple[object, float]] = [(bank, 0.7)]
    extra_weight = 0.3 / (len(spec.fragments) - 1)
    for name in spec.fragments:
        if name == "bank":
            continue
        if name == "sysbench":
            fragments.append((SysbenchWorkload(SysbenchConfig(
                tables=2, rows_per_table=40, seed=spec.seed + 5)),
                extra_weight))
        else:  # tpcc — tiny scale: trials are 0.65 sim-seconds long
            fragments.append((TpccWorkload(TpccConfig(
                warehouses=2, districts_per_warehouse=2,
                customers_per_district=5, items=20,
                initial_orders_per_district=2, delivery_districts=2,
                seed=spec.seed + 9)), extra_weight))
    return MixedWorkload(fragments, seed=spec.seed), bank_config


def run_trial(spec: TrialSpec, inject_bug: str | None = None) -> TrialResult:
    """One fully-armed experiment; never raises for in-sim failures."""
    from repro import (ClusterConfig, TxnMode, build_cluster, three_city,
                      two_region)
    from repro.workloads import run_workload

    topology = three_city() if spec.topology == "three_city" else two_region()
    mode = TxnMode.GTM if spec.mode == "gtm" else TxnMode.GCLOCK
    config = ClusterConfig.globaldb(topology, seed=spec.seed,
                                    auto_failover=True, trace_enabled=True,
                                    txn_mode=mode)
    db = build_cluster(config)
    apply_bug(db, inject_bug)

    recorder = HistoryRecorder(db.env).install()
    Sanitizer(db.env).install()
    run_ns = seconds(spec.warmup_s + spec.duration_s)
    probe = RcpProbe(db).start(run_ns)
    nemesis = Nemesis(db, spec.schedule).start()

    workload, bank_config = _build_workload(spec)
    oracle_violations: list[TrialViolation] = []
    committed = aborted = 0
    try:
        result = run_workload(db, workload, terminals=spec.terminals,
                              duration_s=spec.duration_s,
                              warmup_s=spec.warmup_s)
        committed, aborted = result.stats.committed, result.stats.aborted
    except Exception as exc:  # the unexpected-exception oracle
        oracle_violations.append(TrialViolation(
            "unexpected-exception", f"{type(exc).__name__}: {exc}"))
    healed = nemesis.quiesce()
    # The settle and audit phases run the sim further and can surface the
    # same class of unhandled in-sim exceptions; the harness must record
    # them as findings, never die on them.
    try:
        db.env.run_for(seconds(SETTLE_S))
        audit_status = final_audit(db, recorder, spec.accounts)
    except Exception as exc:
        oracle_violations.append(TrialViolation(
            "unexpected-exception",
            f"post-run: {type(exc).__name__}: {exc}"))
        audit_status = "crashed"

    history = recorder.history()
    report = run_all_checks(history, accounts=spec.accounts,
                            initial_balance=bank_config.initial_balance)

    oracle_violations.extend(check_progress(committed, aborted,
                                            spec.terminals))
    oracle_violations.extend(probe.violations())
    oracle_violations.extend(check_promotion_coverage(db))
    oracle_violations.extend(check_frontier_coverage(db))
    oracle_violations.extend(check_wal_pool_aliasing(db))
    oracle_violations.extend(san_violations(db))

    violations = ([violation.to_dict() for violation in report.violations]
                  + [violation.to_dict() for violation in oracle_violations])
    signature = trial_signature(db, nemesis, run_ns, history,
                                committed, audit_status, healed)
    return TrialResult(
        spec=spec,
        ok=not violations,
        violations=violations,
        signature=signature,
        committed=committed,
        aborted=aborted,
        failovers=len(db.failover.events) if db.failover else 0,
        chaos_events=len(nemesis.events),
        audit_status=audit_status,
        history_digest=history.digest(),
        violation_digest=violation_digest(violations),
    )
