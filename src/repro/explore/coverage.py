"""Structural coverage signatures over one trial's observable behavior.

A signature is a sorted tuple of string *elements* extracted from the obs
trace, the chaos event log, failover/migration records and the operation
history. The elements are deliberately coarse — which fault×subsystem
pairs co-occurred, which run phase each fault landed in, log₂ buckets of
outcome counts — because the engine's feedback loop only needs to tell
"this trial exercised something no previous trial did", not to diff runs.
AFL's edge-coverage bitmap plays the same role.

Element families:

``fault:<kind>@<phase>``     a fault injected in the early/mid/late third
``<kind>x<cat>``             span category ``cat`` active during the fault
                             window (categories from repro.obs.trace)
``failovers:<bucket>``       log₂ bucket of completed promotions
``op:<type>:<status>``       an operation type/status pair seen in history
``mode-end:<mode>``          the TM mode the cluster finished in
``migration:...``            migration attempted / leg failed
``commits:<bucket>``         log₂ bucket of committed transactions
``audit:<status>``           the final guarded audit's outcome
``quiesced``                 the nemesis had to heal something at the end
``san:<kind>``               a sanitizer finding kind occurred

Everything is computed from sorted iterations and hashed with hashlib, so
signatures are stable across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import typing

from repro.obs.trace import window_categories

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.schedule import Nemesis
    from repro.cluster.builder import GlobalDB


def log2_bucket(count: int) -> str:
    """0, 1, 2, 4, 8, ... — the canonical coarse count bucket."""
    if count <= 0:
        return "0"
    return str(1 << (count.bit_length() - 1))


def _phase(at_ns: int, run_ns: int) -> str:
    if run_ns <= 0:
        return "early"
    third = at_ns * 3 // max(run_ns, 1)
    return ("early", "mid", "late")[min(2, third)]


def trial_signature(db: "GlobalDB", nemesis: "Nemesis", run_ns: int,
                    history_ops: typing.Iterable,
                    committed: int, audit_status: str,
                    quiesced: int) -> tuple[str, ...]:
    """Extract the coverage signature after a trial has fully settled."""
    elements: set[str] = set()

    # Fault windows x active subsystems. Inject/heal pairs are matched by
    # fault name in log order; an unhealed one-shot's window is a point.
    spans = db.env.tracer.spans
    open_injects: dict[str, list] = {}
    windows: list[tuple[str, int, int]] = []
    for event in nemesis.events:
        if event.action == "inject":
            open_injects.setdefault(event.fault, []).append(event.at_ns)
        elif event.action in ("heal", "quiesce"):
            pending = open_injects.get(event.fault)
            start = pending.pop(0) if pending else event.at_ns
            windows.append((event.fault, start, event.at_ns))
    for fault, starts in sorted(open_injects.items()):
        windows.extend((fault, start, start) for start in starts)
    for fault, start, end in windows:
        elements.add(f"fault:{fault}@{_phase(start, run_ns)}")
        for cat in window_categories(spans, start, end):
            elements.add(f"{fault}x{cat}")

    # Outcome structure.
    statuses: dict[tuple[str, str], int] = {}
    for op in history_ops:
        statuses[(op.op, op.status)] = statuses.get((op.op, op.status), 0) + 1
    for op_type, status in sorted(statuses):
        elements.add(f"op:{op_type}:{status}")

    if db.failover is not None:
        elements.add(f"failovers:{log2_bucket(len(db.failover.events))}")
    elements.add(f"mode-end:{db.gtm.mode.value}")
    for fault_spec in nemesis.schedule.specs:
        injector = fault_spec.injector
        if injector.name == "migration-under-fire":
            reports = getattr(injector, "reports", ())
            errors = getattr(injector, "errors", ())
            if reports:
                elements.add(f"migration:legs:{log2_bucket(len(reports))}")
            if errors:
                elements.add("migration:leg-failed")
    elements.add(f"commits:{log2_bucket(committed)}")
    elements.add(f"audit:{audit_status}")
    if quiesced:
        elements.add("quiesced")
    if db.env.san is not None:
        for finding in db.env.san.report.findings:
            elements.add(f"san:{finding.kind}")

    return tuple(sorted(elements))


def coverage_digest(elements: typing.Iterable[str]) -> str:
    """Stable hash of a coverage element set (for run summaries)."""
    hasher = hashlib.sha256()
    for element in sorted(set(elements)):
        hasher.update(element.encode())
        hasher.update(b"\n")
    return hasher.hexdigest()
