"""Known-bug injections: the fuzzer's own acceptance tests.

A coverage-guided fuzzer that has never found a real bug is unfalsifiable.
This registry re-introduces *historical* bugs this repo has already fixed
(by flipping the guard that fixed them, never by patching code), so the
test suite can assert the whole loop end to end: the explorer *finds* the
violation, the shrinker reduces it to a minimal fault schedule, and the
replay artifact reproduces it bit for bit.

``rcp-gap``
    Disables :attr:`repro.cluster.failover.FailoverManager.rcp_guard`,
    restoring the pre-fix promotion path: a replica whose redo frontier
    stalled behind the advertised RCP can be promoted without healing the
    gap, so strongly-consistent replica reads on that shard silently
    return stale rows. Surfaces as ``ror-frontier-coverage`` oracle
    violations and/or balance-conservation checker failures.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB


def _rcp_gap(db: "GlobalDB") -> None:
    if db.failover is None:
        raise ValueError("rcp-gap needs auto_failover=True (it lives in "
                         "the promotion path)")
    db.failover.rcp_guard = False


KNOWN_BUGS: dict[str, typing.Callable[["GlobalDB"], None]] = {
    "rcp-gap": _rcp_gap,
}


def apply_bug(db: "GlobalDB", name: str | None) -> None:
    """Re-introduce ``name`` on a freshly built cluster (no-op if None)."""
    if name is None:
        return
    try:
        KNOWN_BUGS[name](db)
    except KeyError:
        raise ValueError(f"unknown bug {name!r}; known: "
                         f"{sorted(KNOWN_BUGS)}") from None
