"""Trial specifications: the explorer's serializable unit of work.

A :class:`TrialSpec` pins *everything* that can vary between two cluster
runs — the cluster seed, topology preset, starting transaction-management
mode, workload mix, scale knobs, and the full fault schedule (which also
carries the timing perturbations: t=0 jitter/latency faults are how the
generator perturbs kernel timing without a second mechanism). Because the
simulation kernel is deterministic, one spec IS one run: serializing a
spec to JSON and replaying it later reproduces the identical event
history, bit for bit. That is the entire basis of the shrinker's replay
artifacts.

Specs are frozen and canonically serializable (sorted-key JSON), so the
corpus can dedup by digest and two explorer processes with the same seed
produce byte-identical corpora.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.chaos.schedule import FaultSchedule

#: Topology preset names a spec may reference (resolved in the runner —
#: keeping this module import-light).
TOPOLOGY_NAMES = ("three_city", "two_region")

#: Transaction-management modes a trial can *start* in. DUAL is entered
#: mid-run by scheduling a ``migration-under-fire`` fault, not statically.
MODE_NAMES = ("gclock", "gtm")

#: Workload fragments the generator may mix in. ``bank`` is mandatory —
#: it is the only fragment whose operations are recorded into the history,
#: and without it the consistency checkers would have nothing to judge.
FRAGMENT_NAMES = ("bank", "sysbench", "tpcc")


@dataclass(frozen=True)
class TrialSpec:
    """One fully-pinned cluster run."""

    seed: int
    schedule: FaultSchedule
    topology: str = "three_city"
    mode: str = "gclock"
    duration_s: float = 0.6
    warmup_s: float = 0.05
    terminals: int = 4
    accounts: int = 12
    fragments: tuple[str, ...] = ("bank",)

    def __post_init__(self):
        object.__setattr__(self, "fragments", tuple(self.fragments))
        if self.topology not in TOPOLOGY_NAMES:
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.mode not in MODE_NAMES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if "bank" not in self.fragments:
            raise ValueError("the bank fragment is mandatory (checkers "
                             "need recorded operations)")
        for fragment in self.fragments:
            if fragment not in FRAGMENT_NAMES:
                raise ValueError(f"unknown fragment {fragment!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedule": self.schedule.to_dict(),
            "topology": self.topology,
            "mode": self.mode,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "terminals": self.terminals,
            "accounts": self.accounts,
            "fragments": list(self.fragments),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSpec":
        return cls(seed=data["seed"],
                   schedule=FaultSchedule.from_dict(data["schedule"]),
                   topology=data.get("topology", "three_city"),
                   mode=data.get("mode", "gclock"),
                   duration_s=data.get("duration_s", 0.6),
                   warmup_s=data.get("warmup_s", 0.05),
                   terminals=data.get("terminals", 4),
                   accounts=data.get("accounts", 12),
                   fragments=tuple(data.get("fragments", ("bank",))))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "TrialSpec":
        return cls.from_dict(json.loads(payload))

    def digest(self) -> str:
        """Canonical content hash — the corpus dedup key."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # ------------------------------------------------------------------
    def with_schedule(self, specs, name: str | None = None) -> "TrialSpec":
        """A copy with a different fault list (shrinker/mutator helper)."""
        schedule = FaultSchedule(name or self.schedule.name, tuple(specs))
        return replace(self, schedule=schedule)

    @property
    def fault_count(self) -> int:
        return len(self.schedule.specs)
