"""The exploration loop: generate → run → learn → (on failure) shrink.

Classic coverage-guided fuzzing over whole cluster runs. Each iteration
derives its own hashed RNG from ``(seed, trial index)``, picks either a
fresh spec or a mutation of a corpus entry (biased toward mutation once
the corpus is non-empty), runs it fully armed, and feeds the coverage
signature back into the corpus. The first failing trial is handed to the
ddmin shrinker and emitted as a replay artifact; exploration then stops
(one minimized, replayable finding is worth more than a pile of raw
ones — and CI wants the artifact, not the pile).

Everything downstream of the seed is deterministic: same seed + same
budget → byte-identical summary, corpus and artifact, across processes
and ``PYTHONHASHSEED`` values. That is asserted by the test suite, not
just claimed.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.explore.corpus import Corpus
from repro.explore.generator import GenParams, TrialGenerator, derive_rng
from repro.explore.runner import TrialResult, run_trial
from repro.explore.shrink import ShrinkResult, make_artifact, shrink
from repro.explore.spec import TrialSpec


@dataclass
class ExploreConfig:
    """One exploration campaign's knobs."""

    seed: int = 0
    budget_trials: int = 25
    #: Probability of mutating a corpus entry (vs generating fresh) once
    #: the corpus is non-empty.
    mutate_bias: float = 0.6
    shrink_max_trials: int = 64
    #: Known-bug injection for self-tests (see repro.explore.bugs).
    inject_bug: str | None = None
    stop_on_failure: bool = True
    params: GenParams = field(default_factory=GenParams)


class ExploreEngine:
    """Drives one campaign; see the module docstring."""

    def __init__(self, config: ExploreConfig | None = None,
                 initial_specs: typing.Sequence[TrialSpec] = (),
                 echo: typing.Callable[[str], None] | None = None):
        self.config = config or ExploreConfig()
        self.initial_specs = list(initial_specs)
        self.echo = echo or (lambda line: None)
        self.generator = TrialGenerator(self.config.params)
        self.corpus = Corpus()
        self.failures: list[TrialResult] = []
        self.shrunk: ShrinkResult | None = None
        self.artifact: dict | None = None
        self.trials_run = 0

    # ------------------------------------------------------------------
    def _next_spec(self, index: int) -> TrialSpec:
        if index < len(self.initial_specs):
            return self.initial_specs[index]
        rng = derive_rng(self.config.seed, f"trial:{index}")
        if len(self.corpus) and rng.random() < self.config.mutate_bias:
            return self.generator.mutate(rng, self.corpus.pick(rng), index)
        return self.generator.fresh(rng, index)

    def run(self) -> dict:
        config = self.config
        for index in range(config.budget_trials):
            spec = self._next_spec(index)
            result = run_trial(spec, inject_bug=config.inject_bug)
            self.trials_run += 1
            new = self.corpus.consider(spec, result.signature)
            status = "FAIL" if not result.ok else \
                ("new-coverage" if new else "known")
            self.echo(f"trial {index}: {status} "
                      f"({spec.fault_count} faults, {result.committed} "
                      f"committed, {len(new)} new elements, corpus "
                      f"{len(self.corpus)}, coverage "
                      f"{len(self.corpus.coverage)})")
            if not result.ok:
                self.failures.append(result)
                if config.stop_on_failure:
                    self.echo(f"shrinking {spec.fault_count}-fault "
                              f"reproducer...")
                    self.shrunk = shrink(
                        spec, result, inject_bug=config.inject_bug,
                        max_trials=config.shrink_max_trials)
                    self.trials_run += self.shrunk.trials_run
                    self.artifact = make_artifact(self.shrunk,
                                                  inject_bug=config.inject_bug)
                    self.echo(f"minimized to {self.shrunk.final_faults} "
                              f"fault(s) in {self.shrunk.trials_run} "
                              f"shrink trials")
                    break
        return self.summary()

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        summary = {
            "seed": self.config.seed,
            "budget_trials": self.config.budget_trials,
            "trials_run": self.trials_run,
            "ok": not self.failures,
            "failures": len(self.failures),
            "corpus_size": len(self.corpus),
            "coverage_elements": len(self.corpus.coverage),
            "coverage_digest": self.corpus.coverage_digest(),
        }
        if self.config.inject_bug:
            summary["inject_bug"] = self.config.inject_bug
        if self.failures:
            summary["violation_kinds"] = sorted(
                {violation.get("kind") or violation.get("checker", "?")
                 for result in self.failures
                 for violation in result.violations})
        if self.shrunk is not None:
            summary["shrunk_faults"] = self.shrunk.final_faults
            summary["violation_digest"] = \
                self.shrunk.result.violation_digest
        return summary
