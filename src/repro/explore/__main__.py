"""``python -m repro.explore`` — coverage-guided simulation fuzzing.

Subcommands:

- ``run`` — explore for a trial budget from a seed: sample fault
  schedules, workload mixes, topologies and TM modes; keep trials that
  cover new ground; on the first failing trial, ddmin-shrink it and
  write a self-contained replay artifact. Exits nonzero with
  ``--fail-on-violation`` if anything failed.
- ``replay`` — re-run a reproducer artifact and verify it reproduces
  the identical violation digest (exit 0: reproduced; exit 2: the
  failure did not reproduce — the artifact is stale or the bug is
  fixed).

Examples::

    python -m repro.explore run --budget-trials 25 --seed 0 \\
        --out explore-out --fail-on-violation
    python -m repro.explore replay explore-out/reproducer-ab12cd34.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.explore.engine import ExploreConfig, ExploreEngine
from repro.explore.generator import GenParams
from repro.explore.shrink import artifact_json, replay_artifact


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExploreConfig(
        seed=args.seed,
        budget_trials=args.budget_trials,
        inject_bug=args.inject_bug,
        params=GenParams(topology=args.topology,
                         duration_s=args.duration,
                         max_faults=args.max_faults),
    )
    engine = ExploreEngine(config, echo=print)
    summary = engine.run()
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        corpus_path = os.path.join(args.out, "corpus.json")
        with open(corpus_path, "w", encoding="utf-8") as handle:
            handle.write(engine.corpus.to_json())
        if engine.artifact is not None:
            digest = engine.artifact["violation_digest"][:8]
            artifact_path = os.path.join(args.out,
                                         f"reproducer-{digest}.json")
            with open(artifact_path, "w", encoding="utf-8") as handle:
                handle.write(artifact_json(engine.artifact))
            summary["artifact"] = artifact_path
            print(f"reproducer written to {artifact_path} — replay with: "
                  f"python -m repro.explore replay {artifact_path}")
        summary_path = os.path.join(args.out, "summary.json")
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {summary_path}")
    print(json.dumps(summary, indent=2, sort_keys=True))
    if summary["ok"]:
        return 0
    return 1 if args.fail_on_violation else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    with open(args.artifact, encoding="utf-8") as handle:
        artifact = json.load(handle)
    reproduced, result = replay_artifact(artifact)
    for violation in result.violations:
        kind = violation.get("kind") or violation.get("checker", "?")
        print(f"  [{kind}] {violation['message']}")
    if reproduced:
        print(f"REPRODUCED: violation digest "
              f"{result.violation_digest[:16]}... matches the artifact")
        return 0
    print(f"NOT REPRODUCED: artifact expects "
          f"{artifact['violation_digest'][:16]}..., replay produced "
          f"{result.violation_digest[:16]}... "
          f"(stale artifact, or the bug is fixed)")
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="coverage-guided simulation fuzzing")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="explore from a seed")
    run_parser.add_argument("--budget-trials", type=int, default=25)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--topology", default="three_city",
                            choices=("three_city", "two_region"))
    run_parser.add_argument("--duration", type=float, default=0.6,
                            help="per-trial workload seconds (sim time)")
    run_parser.add_argument("--max-faults", type=int, default=5)
    run_parser.add_argument("--out", default=None,
                            help="directory for corpus/summary/reproducers")
    run_parser.add_argument("--fail-on-violation", action="store_true")
    run_parser.add_argument("--inject-bug", default=None,
                            help="re-introduce a known bug (self-test)")
    run_parser.set_defaults(func=_cmd_run)

    replay_parser = sub.add_parser("replay",
                                   help="verify a reproducer artifact")
    replay_parser.add_argument("artifact")
    replay_parser.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
