"""Coverage-guided simulation fuzzing (``python -m repro.explore``).

The deterministic simulation kernel makes every cluster run a pure
function of its :class:`~repro.explore.spec.TrialSpec` — so the classic
coverage-guided fuzzing loop applies to *whole distributed-systems
experiments*: sample a fault schedule + workload mix + topology + TM
mode, run it fully armed (history recorder, sanitizer, RCP probe),
extract a structural coverage signature from the obs trace, keep specs
that cover new ground as mutation fodder, and when a trial violates a
checker or an oracle, ddmin-shrink it to a minimal fault schedule and
emit a replay artifact that reproduces the violation bit for bit.

Module map:

- :mod:`~repro.explore.spec` — the serializable trial spec
- :mod:`~repro.explore.generator` — seeded generation + mutation
- :mod:`~repro.explore.coverage` — trace → coverage signature
- :mod:`~repro.explore.oracles` — structural failure oracles
- :mod:`~repro.explore.runner` — run one spec, fully judged
- :mod:`~repro.explore.corpus` — AFL-style coverage-keyed corpus
- :mod:`~repro.explore.shrink` — ddmin + replay artifacts
- :mod:`~repro.explore.engine` — the campaign loop
- :mod:`~repro.explore.bugs` — known-bug injections (self-tests)
"""

from repro.explore.bugs import KNOWN_BUGS, apply_bug
from repro.explore.corpus import Corpus, CorpusEntry
from repro.explore.coverage import coverage_digest, trial_signature
from repro.explore.engine import ExploreConfig, ExploreEngine
from repro.explore.generator import GenParams, TrialGenerator, derive_rng
from repro.explore.oracles import TrialViolation
from repro.explore.runner import TrialResult, run_trial, violation_digest
from repro.explore.shrink import (
    ShrinkResult,
    fingerprint,
    make_artifact,
    replay_artifact,
    shrink,
)
from repro.explore.spec import TrialSpec

__all__ = [
    "TrialSpec",
    "TrialResult",
    "TrialViolation",
    "TrialGenerator",
    "GenParams",
    "Corpus",
    "CorpusEntry",
    "ExploreConfig",
    "ExploreEngine",
    "ShrinkResult",
    "KNOWN_BUGS",
    "apply_bug",
    "coverage_digest",
    "trial_signature",
    "derive_rng",
    "run_trial",
    "violation_digest",
    "fingerprint",
    "make_artifact",
    "replay_artifact",
    "shrink",
]
