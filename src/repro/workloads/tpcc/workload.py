"""The five TPC-C transactions against the cluster's CN API.

Standard mix (New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%,
Stock-Level 4%), NURand key skew, 60/40 by-name/by-id customer selection,
1% intentional New-Order rollbacks. The paper's workload-affinity knob is
``remote_txn_pct``: the probability that a transaction targets a warehouse
homed in a *different region* than its terminal's CN (§V-A).

Read-only transactions (Order-Status, Stock-Level) go through the ROR path
when the cluster has it enabled, pinned to one RCP snapshot per query;
otherwise they take a provider snapshot and read primaries — exactly the
baseline/GlobalDB contrast Figs. 6c-6d measure.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass

from repro.errors import TransactionAborted
from repro.workloads.tpcc.generator import (
    customer_id,
    generate_rows,
    item_id,
    last_name_number,
)
from repro.workloads.tpcc.schema import TPCC_INDEXES, last_name, tpcc_schemas

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB
    from repro.cluster.cn import ComputingNode


@dataclass
class TpccConfig:
    """Scale and behaviour knobs (defaults sized for fast simulation)."""

    warehouses: int = 6
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 100
    initial_orders_per_district: int = 10
    remote_txn_pct: float = 0.0
    new_order_abort_pct: float = 0.01
    by_name_pct: float = 0.60
    payment_remote_customer_pct: float = 0.15
    stock_level_orders: int = 8
    stock_level_threshold: int = 60
    delivery_districts: int = 10
    #: When False (default), the spec's "remote warehouse" choices (1% of
    #: order lines, 15% of payments) stay within the terminal's region, so
    #: a run with remote_txn_pct=0 is 100% region-local as in §V-A.
    cross_region_spec_remotes: bool = False
    #: Standard mix weights: (new_order, payment, order_status, delivery,
    #: stock_level).
    mix: tuple[float, float, float, float, float] = (0.45, 0.43, 0.04, 0.04, 0.04)
    seed: int = 42


class TpccWorkload:
    """Full-mix TPC-C."""

    name = "tpcc"

    def __init__(self, config: TpccConfig | None = None):
        self.config = config or TpccConfig()
        self._rngs: dict[int, random.Random] = {}
        self._warehouse_region: dict[int, str] = {}
        self._warehouses_by_region: dict[str, list[int]] = {}
        self._regions: list[str] = []
        self.loaded_rows = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self, db: "GlobalDB") -> None:
        for schema in tpcc_schemas():
            db.create_table_offline(schema,
                                    indexes=TPCC_INDEXES.get(schema.name, ()))
        rng = random.Random(self.config.seed)
        by_table: dict[str, list[dict]] = {}
        for table, row in generate_rows(self.config, rng):
            by_table.setdefault(table, []).append(row)
        self.loaded_rows = 0
        for table, rows in by_table.items():
            self.loaded_rows += db.bulk_load(table, rows)
        # Warehouse -> home region mapping (for the remote-txn knob).
        self._warehouse_region = {}
        self._warehouses_by_region = {}
        for w_id in range(1, self.config.warehouses + 1):
            shard = db.shard_map.shard_for_value("warehouse", w_id)
            region = db.primaries[shard].region
            self._warehouse_region[w_id] = region
            self._warehouses_by_region.setdefault(region, []).append(w_id)
        self._regions = list(db.config.topology.regions)

    def _rng(self, terminal_id: int) -> random.Random:
        rng = self._rngs.get(terminal_id)
        if rng is None:
            rng = random.Random(self.config.seed * 1_000_003 + terminal_id)
            self._rngs[terminal_id] = rng
        return rng

    def home_warehouse(self, cn: "ComputingNode", terminal_id: int,
                       rng: random.Random) -> int:
        """The terminal's warehouse, honouring ``remote_txn_pct``."""
        local = self._warehouses_by_region.get(cn.region, [])
        remote = [w for w in self._warehouse_region
                  if self._warehouse_region[w] != cn.region]
        if local and remote and rng.random() < self.config.remote_txn_pct:
            return rng.choice(remote)
        if local:
            return local[terminal_id % len(local)]
        return rng.randint(1, self.config.warehouses)

    def _other_warehouse(self, rng: random.Random, home: int) -> int:
        """A different warehouse, same-region unless the config allows
        cross-region spec remotes."""
        if self.config.cross_region_spec_remotes:
            candidates = [w for w in self._warehouse_region if w != home]
        else:
            region = self._warehouse_region.get(home)
            candidates = [w for w in self._warehouses_by_region.get(region, [])
                          if w != home]
        return rng.choice(candidates) if candidates else home

    def _supply_warehouse(self, rng: random.Random, home: int) -> int:
        """1% of order lines come from a different warehouse (spec)."""
        if self.config.warehouses > 1 and rng.random() < 0.01:
            return self._other_warehouse(rng, home)
        return home

    # ------------------------------------------------------------------
    # Driver entry point
    # ------------------------------------------------------------------
    def transaction(self, cn: "ComputingNode", terminal_id: int):
        rng = self._rng(terminal_id)
        w_id = self.home_warehouse(cn, terminal_id, rng)
        draw = rng.random()
        no, pay, status, deliver, _stock = self.config.mix
        if draw < no:
            yield from self.new_order(cn, rng, w_id)
            return "new_order"
        if draw < no + pay:
            yield from self.payment(cn, rng, w_id)
            return "payment"
        if draw < no + pay + status:
            yield from self.order_status(cn, rng, w_id)
            return "order_status"
        if draw < no + pay + status + deliver:
            yield from self.delivery(cn, rng, w_id)
            return "delivery"
        yield from self.stock_level(cn, rng, w_id)
        return "stock_level"

    # ------------------------------------------------------------------
    # New-Order
    # ------------------------------------------------------------------
    def new_order(self, cn: "ComputingNode", rng: random.Random, w_id: int):
        config = self.config
        d_id = rng.randint(1, config.districts_per_warehouse)
        c_id = customer_id(rng, config.customers_per_district)
        ol_cnt = rng.randint(5, 15)
        rollback = rng.random() < config.new_order_abort_pct
        lines = []
        seen_items: set[tuple[int, int]] = set()
        for number in range(1, ol_cnt + 1):
            i_id = item_id(rng, config.items)
            if rollback and number == ol_cnt:
                i_id = 0  # unused item id: forces the spec's 1% rollback
            supply_w = self._supply_warehouse(rng, w_id)
            if (supply_w, i_id) in seen_items:
                continue  # duplicate stock row within one order
            seen_items.add((supply_w, i_id))
            lines.append((number, i_id, supply_w, rng.randint(1, 10)))
        # Lock stock rows in a global order to avoid deadlocks between
        # concurrent New-Orders touching the same hot (NURand-skewed) items.
        lines.sort(key=lambda line: (line[2], line[1]))

        ctx = yield from cn.g_begin()
        warehouse = yield from cn.g_read(ctx, "warehouse", (w_id,))
        district = yield from cn.g_read_for_update(ctx, "district", (w_id, d_id))
        o_id = district["d_next_o_id"]
        yield from cn.g_update(ctx, "district", (w_id, d_id),
                               {"d_next_o_id": o_id + 1})
        customer = yield from cn.g_read(ctx, "customer", (w_id, d_id, c_id))
        yield from cn.g_insert(ctx, "orders", {
            "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id, "o_c_id": c_id,
            "o_ckey": f"{w_id}:{d_id}:{c_id}", "o_entry_d": cn.env.now,
            "o_carrier_id": 0, "o_ol_cnt": ol_cnt,
        })
        yield from cn.g_insert(ctx, "neworder", {
            "no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id,
            "no_dkey": f"{w_id}:{d_id}",
        })
        total = 0.0
        for number, i_id, supply_w, quantity in lines:
            item = yield from cn.g_read(ctx, "item", (i_id,))
            if item is None:
                yield from cn.g_abort(ctx)
                raise TransactionAborted("new-order: unused item id (1% rule)")
            stock = yield from cn.g_update(ctx, "stock", (supply_w, i_id), {
                "s_quantity": lambda q, want=quantity: (
                    q - want if q is not None and q - want >= 10
                    else (q or 0) - want + 91),
                "s_ytd": lambda ytd, want=quantity: (ytd or 0) + want,
                "s_order_cnt": lambda count: (count or 0) + 1,
                "s_remote_cnt": lambda count, remote=(supply_w != w_id): (
                    (count or 0) + (1 if remote else 0)),
            })
            amount = quantity * item["i_price"]
            total += amount
            yield from cn.g_insert(ctx, "orderline", {
                "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                "ol_number": number, "ol_okey": f"{w_id}:{d_id}:{o_id}",
                "ol_i_id": i_id, "ol_supply_w_id": supply_w,
                "ol_quantity": quantity, "ol_amount": amount,
                "ol_delivery_d": 0,
            })
        del warehouse, customer, stock, total
        yield from cn.g_commit(ctx)

    # ------------------------------------------------------------------
    # Payment
    # ------------------------------------------------------------------
    def payment(self, cn: "ComputingNode", rng: random.Random, w_id: int):
        config = self.config
        d_id = rng.randint(1, config.districts_per_warehouse)
        amount = rng.uniform(1, 5000)
        if (config.warehouses > 1
                and rng.random() < config.payment_remote_customer_pct):
            c_w = self._other_warehouse(rng, w_id)
            c_d = rng.randint(1, config.districts_per_warehouse)
        else:
            c_w, c_d = w_id, d_id

        ctx = yield from cn.g_begin()
        yield from cn.g_update(ctx, "warehouse", (w_id,), {
            "w_ytd": lambda ytd, add=amount: (ytd or 0) + add})
        yield from cn.g_update(ctx, "district", (w_id, d_id), {
            "d_ytd": lambda ytd, add=amount: (ytd or 0) + add})
        if rng.random() < config.by_name_pct:
            name = last_name(last_name_number(rng, config.customers_per_district))
            rows = yield from cn.g_lookup(ctx, "customer", "c_namekey",
                                          f"{c_w}:{c_d}:{name}", c_w)
            if not rows:
                yield from cn.g_abort(ctx)
                raise TransactionAborted("payment: no customer with last name")
            rows.sort(key=lambda row: row["c_first"])
            customer = rows[(len(rows) - 1) // 2]  # spec: middle by c_first
            c_id = customer["c_id"]
        else:
            c_id = customer_id(rng, config.customers_per_district)
        yield from cn.g_update(ctx, "customer", (c_w, c_d, c_id), {
            "c_balance": lambda balance, sub=amount: (balance or 0) - sub,
            "c_ytd_payment": lambda ytd, add=amount: (ytd or 0) + add,
            "c_payment_cnt": lambda count: (count or 0) + 1,
        })
        yield from cn.g_insert(ctx, "history", {
            "h_id": ctx.txid, "h_c_w_id": c_w, "h_c_d_id": c_d, "h_c_id": c_id,
            "h_w_id": w_id, "h_d_id": d_id, "h_amount": amount,
            "h_date": cn.env.now,
        })
        yield from cn.g_commit(ctx)

    # ------------------------------------------------------------------
    # Order-Status (read-only)
    # ------------------------------------------------------------------
    def order_status(self, cn: "ComputingNode", rng: random.Random, w_id: int,
                     extra_warehouse: int | None = None):
        config = self.config
        d_id = rng.randint(1, config.districts_per_warehouse)
        read_ts, use_ror = yield from cn.ro_snapshot(
            ["customer", "orders", "orderline"])
        if rng.random() < config.by_name_pct:
            name = last_name(last_name_number(rng, config.customers_per_district))
            rows = yield from cn.g_ro_lookup(read_ts, use_ror, "customer",
                                             "c_namekey", f"{w_id}:{d_id}:{name}",
                                             w_id)
            if not rows:
                raise TransactionAborted("order-status: no such customer")
            rows.sort(key=lambda row: row["c_first"])
            customer = rows[(len(rows) - 1) // 2]
        else:
            c_id = customer_id(rng, config.customers_per_district)
            customer = yield from cn.g_ro_read(read_ts, use_ror, "customer",
                                               (w_id, d_id, c_id))
            if customer is None:
                raise TransactionAborted("order-status: no such customer")
        orders = yield from cn.g_ro_lookup(
            read_ts, use_ror, "orders", "o_ckey",
            f"{w_id}:{d_id}:{customer['c_id']}", w_id)
        if orders:
            latest = max(orders, key=lambda row: row["o_id"])
            yield from cn.g_ro_lookup(
                read_ts, use_ror, "orderline", "ol_okey",
                f"{w_id}:{d_id}:{latest['o_id']}", w_id)
        if extra_warehouse is not None:
            # Multi-shard variant (§V-B): also check the same customer
            # position in a warehouse homed on another shard.
            c_id = customer_id(rng, config.customers_per_district)
            yield from cn.g_ro_read(read_ts, use_ror, "customer",
                                    (extra_warehouse, d_id, c_id))

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def delivery(self, cn: "ComputingNode", rng: random.Random, w_id: int):
        config = self.config
        carrier = rng.randint(1, 10)
        districts = min(config.delivery_districts,
                        config.districts_per_warehouse)
        ctx = yield from cn.g_begin()
        for d_id in range(1, districts + 1):
            pending = yield from cn.g_lookup(ctx, "neworder", "no_dkey",
                                             f"{w_id}:{d_id}", w_id)
            if not pending:
                continue
            oldest = min(row["no_o_id"] for row in pending)
            yield from cn.g_delete(ctx, "neworder", (w_id, d_id, oldest))
            order = yield from cn.g_read(ctx, "orders", (w_id, d_id, oldest))
            if order is None:
                continue
            yield from cn.g_update(ctx, "orders", (w_id, d_id, oldest),
                                   {"o_carrier_id": carrier})
            lines = yield from cn.g_lookup(ctx, "orderline", "ol_okey",
                                           f"{w_id}:{d_id}:{oldest}", w_id)
            total = 0.0
            for line in lines:
                total += line["ol_amount"]
                yield from cn.g_update(
                    ctx, "orderline",
                    (w_id, d_id, oldest, line["ol_number"]),
                    {"ol_delivery_d": cn.env.now})
            yield from cn.g_update(ctx, "customer",
                                   (w_id, d_id, order["o_c_id"]), {
                "c_balance": lambda balance, add=total: (balance or 0) + add,
                "c_delivery_cnt": lambda count: (count or 0) + 1,
            })
        yield from cn.g_commit(ctx)

    # ------------------------------------------------------------------
    # Stock-Level (read-only)
    # ------------------------------------------------------------------
    def stock_level(self, cn: "ComputingNode", rng: random.Random, w_id: int,
                    extra_warehouse: int | None = None):
        config = self.config
        d_id = rng.randint(1, config.districts_per_warehouse)
        threshold = rng.randint(10, config.stock_level_threshold)
        read_ts, use_ror = yield from cn.ro_snapshot(
            ["district", "orderline", "stock"])
        district = yield from cn.g_ro_read(read_ts, use_ror, "district",
                                           (w_id, d_id))
        if district is None:
            raise TransactionAborted("stock-level: no such district")
        next_o_id = district["d_next_o_id"]
        okeys = [f"{w_id}:{d_id}:{o_id}"
                 for o_id in range(max(1, next_o_id - config.stock_level_orders),
                                   next_o_id)]
        # One ranged statement over the last N orders' lines (as the spec's
        # single SQL query would), not one RPC per order.
        lines = yield from cn.g_ro_lookup_batch(read_ts, use_ror, "orderline",
                                                "ol_okey", okeys, w_id)
        item_ids = sorted({line["ol_i_id"] for line in lines})
        low = 0
        warehouses = [w_id] if extra_warehouse is None else [w_id, extra_warehouse]
        for check_w in warehouses:
            stocks = yield from cn.g_ro_read_batch(
                read_ts, use_ror, "stock",
                [(check_w, i_id) for i_id in item_ids])
            low += sum(1 for stock in stocks
                       if stock is not None and stock["s_quantity"] < threshold)
        return low


class ReadOnlyTpccWorkload(TpccWorkload):
    """§V-B's read-only benchmark: only Order-Status and Stock-Level,
    with ``multi_shard_pct`` of transactions touching a second warehouse
    homed on a different shard (the paper uses 50%)."""

    name = "tpcc-readonly"

    def __init__(self, config: TpccConfig | None = None,
                 multi_shard_pct: float = 0.5):
        super().__init__(config)
        self.multi_shard_pct = multi_shard_pct

    def _other_shard_warehouse(self, db_regions_unused, rng: random.Random,
                               w_id: int) -> int | None:
        candidates = [w for w, region in self._warehouse_region.items()
                      if w != w_id and region != self._warehouse_region[w_id]]
        if not candidates:
            candidates = [w for w in self._warehouse_region if w != w_id]
        return rng.choice(candidates) if candidates else None

    def transaction(self, cn: "ComputingNode", terminal_id: int):
        rng = self._rng(terminal_id)
        w_id = self.home_warehouse(cn, terminal_id, rng)
        extra = None
        if rng.random() < self.multi_shard_pct:
            extra = self._other_shard_warehouse(None, rng, w_id)
        if rng.random() < 0.5:
            yield from self.order_status(cn, rng, w_id, extra_warehouse=extra)
            return "order_status"
        yield from self.stock_level(cn, rng, w_id, extra_warehouse=extra)
        return "stock_level"
