"""TPC-C for the simulated cluster.

Structurally faithful to the spec (9 tables, five transaction types with
the standard mix, NURand key skew, 1% intentional New-Order aborts), scaled
down by default so pure-Python simulation finishes quickly. Scale knobs
live on :class:`~repro.workloads.tpcc.workload.TpccConfig`.
"""

from repro.workloads.tpcc.schema import TPCC_SCHEMAS, tpcc_schemas
from repro.workloads.tpcc.workload import (
    ReadOnlyTpccWorkload,
    TpccConfig,
    TpccWorkload,
)

__all__ = [
    "TpccConfig",
    "TpccWorkload",
    "ReadOnlyTpccWorkload",
    "TPCC_SCHEMAS",
    "tpcc_schemas",
]
