"""TPC-C data generation and key-skew helpers."""

from __future__ import annotations

import random

from repro.workloads.tpcc.schema import last_name

#: NURand C constants (any value in-range is spec-conformant).
C_LAST = 123
C_CUST = 217
C_ITEM = 455


def nurand(rng: random.Random, a: int, c: int, x: int, y: int) -> int:
    """The spec's non-uniform random function NURand(A, x, y)."""
    return ((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1) + x


def customer_id(rng: random.Random, customers_per_district: int) -> int:
    return nurand(rng, 1023, C_CUST, 1, customers_per_district)


def item_id(rng: random.Random, items: int) -> int:
    return nurand(rng, 8191, C_ITEM, 1, items)


def last_name_number(rng: random.Random, customers_per_district: int) -> int:
    """A last-name index for by-name lookups, skewed per spec."""
    span = min(999, max(0, customers_per_district - 1))
    return nurand(rng, 255, C_LAST, 0, span)


def generate_rows(config, rng: random.Random):
    """Yield (table, row) pairs for the initial database population.

    ``config`` is a :class:`~repro.workloads.tpcc.workload.TpccConfig`.
    Initial orders seed ORDERS/ORDERLINE/NEWORDER so Order-Status,
    Stock-Level and Delivery work from the first transaction.
    """
    for i_id in range(1, config.items + 1):
        yield "item", {
            "i_id": i_id,
            "i_name": f"item-{i_id}",
            "i_price": 1 + (i_id % 100) / 10.0,
            "i_data": "x" * 26,
        }
    for w_id in range(1, config.warehouses + 1):
        yield "warehouse", {
            "w_id": w_id, "w_name": f"wh-{w_id}",
            "w_tax": (w_id % 20) / 100.0, "w_ytd": 300000.0,
        }
        for i_id in range(1, config.items + 1):
            yield "stock", {
                "s_w_id": w_id, "s_i_id": i_id,
                "s_quantity": rng.randint(10, 100),
                "s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0,
            }
        for d_id in range(1, config.districts_per_warehouse + 1):
            next_o_id = config.initial_orders_per_district + 1
            yield "district", {
                "d_w_id": w_id, "d_id": d_id, "d_name": f"d-{w_id}-{d_id}",
                "d_tax": (d_id % 20) / 100.0, "d_ytd": 30000.0,
                "d_next_o_id": next_o_id,
            }
            for c_id in range(1, config.customers_per_district + 1):
                name = last_name((c_id - 1) % 1000)
                yield "customer", {
                    "c_w_id": w_id, "c_d_id": d_id, "c_id": c_id,
                    "c_first": f"first-{c_id}", "c_last": name,
                    "c_namekey": f"{w_id}:{d_id}:{name}",
                    "c_balance": -10.0, "c_ytd_payment": 10.0,
                    "c_payment_cnt": 1, "c_delivery_cnt": 0,
                    "c_data": "x" * 50,
                }
            for o_id in range(1, config.initial_orders_per_district + 1):
                c_id = rng.randint(1, config.customers_per_district)
                ol_cnt = rng.randint(5, 15)
                delivered = o_id <= config.initial_orders_per_district * 7 // 10
                yield "orders", {
                    "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                    "o_c_id": c_id, "o_ckey": f"{w_id}:{d_id}:{c_id}",
                    "o_entry_d": 0,
                    "o_carrier_id": rng.randint(1, 10) if delivered else 0,
                    "o_ol_cnt": ol_cnt,
                }
                if not delivered:
                    yield "neworder", {
                        "no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id,
                        "no_dkey": f"{w_id}:{d_id}",
                    }
                for number in range(1, ol_cnt + 1):
                    yield "orderline", {
                        "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                        "ol_number": number,
                        "ol_okey": f"{w_id}:{d_id}:{o_id}",
                        "ol_i_id": rng.randint(1, config.items),
                        "ol_supply_w_id": w_id,
                        "ol_quantity": 5,
                        "ol_amount": 0.0 if not delivered else rng.uniform(1, 10000) / 100,
                        "ol_delivery_d": 0 if not delivered else 1,
                    }
