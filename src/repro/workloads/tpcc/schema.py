"""The nine TPC-C tables.

All tables are hash-distributed on their warehouse id, so one warehouse's
rows co-locate on one shard — the physical affinity real deployments rely
on (§V-A). ITEM is read-mostly and replicated to every shard, as is common
practice (and as GaussDB's replicated-table support intends).

Composite-key lookups that the spec expresses as secondary-key access
(customer by last name, latest order of a customer, order lines of an
order) are served by single-column indexes on synthesized key columns
(``c_namekey``, ``o_ckey``, ``ol_okey``).
"""

from __future__ import annotations

from repro.storage.catalog import ColumnDef, DistributionSpec, TableSchema


def tpcc_schemas() -> list[TableSchema]:
    """Fresh schema objects for all nine tables."""
    return [
        TableSchema(
            name="warehouse",
            columns=[ColumnDef("w_id", "int"), ColumnDef("w_name", "text"),
                     ColumnDef("w_tax", "float"), ColumnDef("w_ytd", "float")],
            primary_key=("w_id",),
        ),
        TableSchema(
            name="district",
            columns=[ColumnDef("d_w_id", "int"), ColumnDef("d_id", "int"),
                     ColumnDef("d_name", "text"), ColumnDef("d_tax", "float"),
                     ColumnDef("d_ytd", "float"),
                     ColumnDef("d_next_o_id", "int")],
            primary_key=("d_w_id", "d_id"),
        ),
        TableSchema(
            name="customer",
            columns=[ColumnDef("c_w_id", "int"), ColumnDef("c_d_id", "int"),
                     ColumnDef("c_id", "int"), ColumnDef("c_first", "text"),
                     ColumnDef("c_last", "text"),
                     ColumnDef("c_namekey", "text"),
                     ColumnDef("c_balance", "float"),
                     ColumnDef("c_ytd_payment", "float"),
                     ColumnDef("c_payment_cnt", "int"),
                     ColumnDef("c_delivery_cnt", "int"),
                     ColumnDef("c_data", "text")],
            primary_key=("c_w_id", "c_d_id", "c_id"),
        ),
        TableSchema(
            name="history",
            columns=[ColumnDef("h_id", "int"), ColumnDef("h_c_w_id", "int"),
                     ColumnDef("h_c_d_id", "int"), ColumnDef("h_c_id", "int"),
                     ColumnDef("h_w_id", "int"), ColumnDef("h_d_id", "int"),
                     ColumnDef("h_amount", "float"), ColumnDef("h_date", "int")],
            primary_key=("h_w_id", "h_id"),
            distribution=DistributionSpec("hash", "h_w_id"),
        ),
        TableSchema(
            name="neworder",
            columns=[ColumnDef("no_w_id", "int"), ColumnDef("no_d_id", "int"),
                     ColumnDef("no_o_id", "int"), ColumnDef("no_dkey", "text")],
            primary_key=("no_w_id", "no_d_id", "no_o_id"),
        ),
        TableSchema(
            name="orders",
            columns=[ColumnDef("o_w_id", "int"), ColumnDef("o_d_id", "int"),
                     ColumnDef("o_id", "int"), ColumnDef("o_c_id", "int"),
                     ColumnDef("o_ckey", "text"),
                     ColumnDef("o_entry_d", "int"),
                     ColumnDef("o_carrier_id", "int"),
                     ColumnDef("o_ol_cnt", "int")],
            primary_key=("o_w_id", "o_d_id", "o_id"),
        ),
        TableSchema(
            name="orderline",
            columns=[ColumnDef("ol_w_id", "int"), ColumnDef("ol_d_id", "int"),
                     ColumnDef("ol_o_id", "int"), ColumnDef("ol_number", "int"),
                     ColumnDef("ol_okey", "text"),
                     ColumnDef("ol_i_id", "int"),
                     ColumnDef("ol_supply_w_id", "int"),
                     ColumnDef("ol_quantity", "int"),
                     ColumnDef("ol_amount", "float"),
                     ColumnDef("ol_delivery_d", "int")],
            primary_key=("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"),
        ),
        TableSchema(
            name="item",
            columns=[ColumnDef("i_id", "int"), ColumnDef("i_name", "text"),
                     ColumnDef("i_price", "float"), ColumnDef("i_data", "text")],
            primary_key=("i_id",),
            distribution=DistributionSpec("replicated"),
        ),
        TableSchema(
            name="stock",
            columns=[ColumnDef("s_w_id", "int"), ColumnDef("s_i_id", "int"),
                     ColumnDef("s_quantity", "int"), ColumnDef("s_ytd", "int"),
                     ColumnDef("s_order_cnt", "int"),
                     ColumnDef("s_remote_cnt", "int")],
            primary_key=("s_w_id", "s_i_id"),
        ),
    ]


#: Indexes created at load time: table -> columns.
TPCC_INDEXES = {
    "customer": ("c_namekey",),
    "orders": ("o_ckey",),
    "orderline": ("ol_okey",),
    "neworder": ("no_dkey",),
}

TPCC_SCHEMAS = {schema.name: schema for schema in tpcc_schemas()}

#: The 16 last-name syllables of the spec (clause 4.3.2.3).
LAST_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI",
    "CALLY", "ATION", "EING",
)


def last_name(number: int) -> str:
    """Spec-conformant last-name generation from a number 0-999."""
    return (LAST_NAME_SYLLABLES[(number // 100) % 10]
            + LAST_NAME_SYLLABLES[(number // 10) % 10]
            + LAST_NAME_SYLLABLES[number % 10])
