"""The Jepsen ``bank`` workload: transfers that must conserve money.

A fixed set of accounts starts with the same balance; transfer
transactions move random amounts between two accounts (read-for-update on
both sides, keys locked in sorted order so the workload itself cannot
deadlock), and audit transactions read *every* account at one read-only
snapshot. Because transfers only move money, every consistent snapshot
must total ``accounts * initial_balance`` — the classic conservation
invariant — and the recorded ``before``/``after`` balances give
:mod:`repro.check` per-account version chains for lost-update and
write-cycle detection.

When a history recorder is installed (``env.history``, see
:mod:`repro.check.history`) every transfer and audit is recorded
Jepsen-style; a commit whose acknowledgement was lost
(:class:`~repro.errors.CommitOutcomeUnknown`) is recorded as ``info`` —
outcome unknown — so the checkers can exclude, not guess, its effects.
The workload keeps a per-terminal read-your-writes floor (the terminal's
last commit timestamp) and passes it as ``min_read_ts`` so audits also
exercise the session-consistency path.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass

from repro.errors import (
    ClockError,
    CommitOutcomeUnknown,
    NetworkError,
    ReplicaUnavailableError,
    StalenessBoundError,
    TransactionAborted,
)
from repro.sim.units import ms
from repro.storage.catalog import ColumnDef, TableSchema

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB
    from repro.cluster.cn import ComputingNode

#: Errors a fault-injected run can surface mid-transaction; the driver
#: protocol only understands TransactionAborted, so the workload converts.
_TRANSIENT = (NetworkError, StalenessBoundError, ReplicaUnavailableError,
              ClockError)


@dataclass
class BankConfig:
    """Scale and behavior knobs."""

    accounts: int = 16
    initial_balance: int = 1000
    max_transfer: int = 50
    read_fraction: float = 0.25       # fraction of txns that audit
    hot_fraction: float = 0.5         # fraction of picks from the hot set
    hot_accounts: int = 4             # size of the contended hot set
    staleness_bound_ms: float = 100.0
    seed: int = 11


class BankWorkload:
    """Transfers + full-table audits over the ``bank`` table."""

    name = "bank"
    table = "bank"

    def __init__(self, config: BankConfig | None = None):
        self.config = config or BankConfig()
        self._rngs: dict[int, random.Random] = {}
        self._floors: dict[int, int] = {}   # terminal -> last commit_ts
        self.transfers = 0
        self.audits = 0

    # ------------------------------------------------------------------
    def setup(self, db: "GlobalDB") -> None:
        schema = TableSchema(
            name=self.table,
            columns=[ColumnDef("id", "int"), ColumnDef("balance", "int")],
            primary_key=("id",),
        )
        db.create_table_offline(schema)
        db.bulk_load(self.table, [
            {"id": account, "balance": self.config.initial_balance}
            for account in range(self.config.accounts)
        ])

    def _rng(self, terminal_id: int) -> random.Random:
        rng = self._rngs.get(terminal_id)
        if rng is None:
            rng = random.Random(self.config.seed * 7_000_003 + terminal_id)
            self._rngs[terminal_id] = rng
        return rng

    def _pick_account(self, rng: random.Random) -> int:
        config = self.config
        if rng.random() < config.hot_fraction:
            return rng.randrange(min(config.hot_accounts, config.accounts))
        return rng.randrange(config.accounts)

    def _recorder(self, cn: "ComputingNode"):
        return cn.env.history

    # ------------------------------------------------------------------
    def transaction(self, cn: "ComputingNode", terminal_id: int):
        rng = self._rng(terminal_id)
        if rng.random() < self.config.read_fraction:
            yield from self._audit(cn, terminal_id, rng)
            return "read"
        yield from self._transfer(cn, terminal_id, rng)
        return "transfer"

    # ------------------------------------------------------------------
    def _transfer(self, cn: "ComputingNode", terminal_id: int,
                  rng: random.Random):
        src = self._pick_account(rng)
        dst = self._pick_account(rng)
        while dst == src:
            dst = self._pick_account(rng)
        amount = rng.randint(1, self.config.max_transfer)
        recorder = self._recorder(cn)
        op = recorder.invoke(
            f"bank-{terminal_id}", "transfer",
            {"src": src, "dst": dst, "amount": amount,
             "accounts": [str(src), str(dst)]}) if recorder else None
        try:
            ctx = yield from cn.g_begin()
        except _TRANSIENT as exc:
            if recorder:
                recorder.fail(op, f"begin: {exc}")
            raise TransactionAborted(f"bank begin failed: {exc}")
        try:
            rows = {}
            for account in sorted((src, dst)):   # lock order: sorted keys
                rows[account] = yield from cn.g_read_for_update(
                    ctx, self.table, (account,))
            before_src = rows[src]["balance"]
            before_dst = rows[dst]["balance"]
            after_src = before_src - amount
            after_dst = before_dst + amount
            for account in sorted((src, dst)):
                balance = after_src if account == src else after_dst
                yield from cn.g_update(ctx, self.table, (account,),
                                       {"balance": balance})
            commit_ts = yield from cn.g_commit(ctx)
        except CommitOutcomeUnknown as exc:
            if recorder:
                recorder.info(op, str(exc))
            raise
        except TransactionAborted as exc:
            if recorder:
                recorder.fail(op, str(exc))
            raise
        except _TRANSIENT as exc:
            if recorder:
                recorder.fail(op, str(exc))
            yield from cn.g_abort(ctx)
            raise TransactionAborted(f"bank transfer failed: {exc}")
        self.transfers += 1
        self._floors[terminal_id] = max(
            self._floors.get(terminal_id, 0), commit_ts)
        if recorder:
            recorder.ok(op, commit_ts=commit_ts, writes={
                str(src): [before_src, after_src],
                str(dst): [before_dst, after_dst],
            })

    # ------------------------------------------------------------------
    def _audit(self, cn: "ComputingNode", terminal_id: int,
               rng: random.Random):
        config = self.config
        bound_ns = round(ms(config.staleness_bound_ms))
        floor = self._floors.get(terminal_id, 0)
        recorder = self._recorder(cn)
        rcp_at_invoke = cn.rcp_state.rcp
        op = recorder.invoke(
            f"bank-{terminal_id}", "read",
            {"floor": floor, "rcp": rcp_at_invoke,
             "bound_ns": bound_ns}) if recorder else None
        try:
            read_ts, use_ror = yield from cn.ro_snapshot(
                [self.table], min_read_ts=floor)
            rows = yield from cn._ro_fanout([
                cn.g_ro_read(read_ts, use_ror, self.table, (account,),
                             staleness_bound_ns=bound_ns)
                for account in range(config.accounts)
            ])
        except _TRANSIENT as exc:
            if recorder:
                recorder.fail(op, str(exc))
            raise TransactionAborted(f"bank audit failed: {exc}")
        balances = {str(account): row["balance"]
                    for account, row in enumerate(rows) if row is not None}
        if len(balances) != config.accounts:
            if recorder:
                recorder.fail(op, "audit read missing rows")
            raise TransactionAborted("bank audit: missing rows")
        self.audits += 1
        if recorder:
            recorder.ok(op, read_ts=read_ts, use_ror=use_ror,
                        balances=balances)
