"""Sysbench workloads (§V-B).

The paper's read benchmark is Sysbench Point Select over 250 tables of
25,000 rows with 2/3 of tuples fetched from remote nodes. We keep the
structure (many ``sbtest`` tables, uniform point selects) with scaled-down
defaults and a ``remote_pct`` knob controlling the fraction of lookups that
target rows homed on a shard in another region.

An OLTP read-write variant is included for completeness (used by tests and
ablations; the paper's figures only use Point Select).
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass

from repro.errors import TransactionAborted
from repro.storage.catalog import ColumnDef, TableSchema

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB
    from repro.cluster.cn import ComputingNode


@dataclass
class SysbenchConfig:
    """Scale knobs (paper scale: tables=250, rows_per_table=25000)."""

    tables: int = 8
    rows_per_table: int = 500
    remote_pct: float = 2 / 3
    point_selects_per_txn: int = 1
    seed: int = 7


class SysbenchWorkload:
    """Point-select Sysbench."""

    name = "sysbench-point-select"

    def __init__(self, config: SysbenchConfig | None = None,
                 read_write: bool = False):
        self.config = config or SysbenchConfig()
        self.read_write = read_write
        self._rngs: dict[int, random.Random] = {}
        #: (table, id) keys homed locally/remotely per region.
        self._local_keys: dict[str, list[tuple[str, int]]] = {}
        self._remote_keys: dict[str, list[tuple[str, int]]] = {}

    # ------------------------------------------------------------------
    def _table(self, index: int) -> str:
        return f"sbtest{index}"

    def setup(self, db: "GlobalDB") -> None:
        config = self.config
        rng = random.Random(config.seed)
        for index in range(1, config.tables + 1):
            schema = TableSchema(
                name=self._table(index),
                columns=[ColumnDef("id", "int"), ColumnDef("k", "int"),
                         ColumnDef("c", "text"), ColumnDef("pad", "text")],
                primary_key=("id",),
            )
            db.create_table_offline(schema)
            rows = [{
                "id": row_id,
                "k": rng.randint(1, config.rows_per_table),
                "c": f"c-{row_id}", "pad": "p" * 20,
            } for row_id in range(1, config.rows_per_table + 1)]
            db.bulk_load(schema.name, rows)
        # Partition a sample of keys by home region for the remote knob.
        self._local_keys = {region: [] for region in db.config.topology.regions}
        self._remote_keys = {region: [] for region in db.config.topology.regions}
        sample_ids = range(1, config.rows_per_table + 1,
                           max(1, config.rows_per_table // 200))
        for index in range(1, config.tables + 1):
            table = self._table(index)
            for row_id in sample_ids:
                shard = db.shard_map.shard_for_value(table, row_id)
                home = db.primaries[shard].region
                for region in self._local_keys:
                    bucket = (self._local_keys if home == region
                              else self._remote_keys)
                    bucket[region].append((table, row_id))

    def _rng(self, terminal_id: int) -> random.Random:
        rng = self._rngs.get(terminal_id)
        if rng is None:
            rng = random.Random(self.config.seed * 7_000_003 + terminal_id)
            self._rngs[terminal_id] = rng
        return rng

    def _pick_key(self, cn: "ComputingNode", rng: random.Random) -> tuple[str, int]:
        remote = self._remote_keys.get(cn.region) or []
        local = self._local_keys.get(cn.region) or []
        if remote and rng.random() < self.config.remote_pct:
            return rng.choice(remote)
        if local:
            return rng.choice(local)
        table = self._table(rng.randint(1, self.config.tables))
        return table, rng.randint(1, self.config.rows_per_table)

    # ------------------------------------------------------------------
    def transaction(self, cn: "ComputingNode", terminal_id: int):
        rng = self._rng(terminal_id)
        if self.read_write:
            yield from self._oltp_rw(cn, rng)
            return "oltp_rw"
        for _ in range(self.config.point_selects_per_txn):
            table, row_id = self._pick_key(cn, rng)
            row = yield from cn.g_read_only(table, (row_id,))
            if row is None:
                raise TransactionAborted("sysbench: missing row")
        return "point_select"

    def _oltp_rw(self, cn: "ComputingNode", rng: random.Random):
        table, row_id = self._pick_key(cn, rng)
        ctx = yield from cn.g_begin()
        row = yield from cn.g_read(ctx, table, (row_id,))
        if row is None:
            yield from cn.g_abort(ctx)
            raise TransactionAborted("sysbench: missing row")
        yield from cn.g_update(ctx, table, (row_id,), {
            "k": lambda value: (value or 0) + 1})
        yield from cn.g_commit(ctx)
