"""Closed-loop workload drivers and statistics.

A *terminal* is a simulation process bound to a CN that repeatedly draws a
transaction from the workload, executes it, records latency, and
immediately issues the next one (think-times disabled, as in throughput
benchmarking). Throughput is transactions completed per simulated second —
the metric the paper's figures plot.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.errors import TransactionAborted
from repro.sim.units import SECOND, ns_to_ms

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.builder import GlobalDB


@dataclass
class WorkloadStats:
    """Latency/throughput accumulator for one run."""

    committed: int = 0
    aborted: int = 0
    latencies_ns: list[int] = field(default_factory=list)
    by_type: dict[str, int] = field(default_factory=dict)
    window_ns: int = 0
    window_start_ns: int = 0  # sim time the measurement window opened
    # Sorted view of latencies_ns, rebuilt lazily: percentile queries after
    # a run are common and must not re-sort per call.
    _sorted_cache: list[int] | None = field(
        default=None, repr=False, compare=False)

    def record(self, txn_type: str, latency_ns: int, ok: bool) -> None:
        if ok:
            self.committed += 1
            self.latencies_ns.append(latency_ns)
            self._sorted_cache = None
            self.by_type[txn_type] = self.by_type.get(txn_type, 0) + 1
        else:
            self.aborted += 1

    def _sorted_latencies(self) -> list[int]:
        if (self._sorted_cache is None
                or len(self._sorted_cache) != len(self.latencies_ns)):
            self._sorted_cache = sorted(self.latencies_ns)
        return self._sorted_cache

    # ------------------------------------------------------------------
    @property
    def throughput_per_s(self) -> float:
        if self.window_ns <= 0:
            return 0.0
        return self.committed / (self.window_ns / SECOND)

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @staticmethod
    def _pick(ordered: list[int], percentile: float) -> int:
        if not ordered:
            # Zero-commit run (e.g. duration shorter than one txn): every
            # percentile is an explicit zero, not an IndexError.
            return 0
        index = min(len(ordered) - 1,
                    max(0, round(percentile / 100 * (len(ordered) - 1))))
        return ordered[index]

    def latency_percentile_ms(self, percentile: float) -> float:
        if not self.latencies_ns:
            return 0.0
        return ns_to_ms(self._pick(self._sorted_latencies(), percentile))

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return ns_to_ms(sum(self.latencies_ns) / len(self.latencies_ns))

    def summary(self) -> dict:
        """All the headline numbers from one pass over the data."""
        ordered = self._sorted_latencies()
        pick = (lambda pct: ns_to_ms(self._pick(ordered, pct))) \
            if ordered else (lambda pct: 0.0)
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "throughput_per_s": self.throughput_per_s,
            "abort_rate": self.abort_rate,
            "mean_ms": self.mean_latency_ms,
            "p50_ms": pick(50),
            "p95_ms": pick(95),
            "p99_ms": pick(99),
        }


@dataclass
class WorkloadResult:
    """Final result of one workload run."""

    stats: WorkloadStats
    duration_s: float
    terminals: int

    @property
    def throughput_per_s(self) -> float:
        return self.stats.throughput_per_s

    @property
    def tpm(self) -> float:
        """Transactions per minute (tpmC-style when the mix is TPC-C)."""
        return self.throughput_per_s * 60

    def summary(self) -> str:
        return (f"{self.stats.committed} txns in {self.duration_s:.1f}s "
                f"({self.throughput_per_s:.1f}/s, "
                f"p50={self.stats.latency_percentile_ms(50):.2f}ms, "
                f"p99={self.stats.latency_percentile_ms(99):.2f}ms, "
                f"aborts={self.stats.abort_rate * 100:.2f}%)")


class Workload(typing.Protocol):
    """What a workload must provide to the driver."""

    def setup(self, db: "GlobalDB") -> None:
        """Create tables and load data (offline)."""

    def transaction(self, cn, terminal_id: int):
        """Generator: run one transaction on ``cn``; returns its type tag."""


class MixedWorkload:
    """Compose workload fragments into one driven mix.

    ``fragments`` is ``[(workload, weight), ...]``; each terminal draws the
    fragment for its next transaction from its own seeded stream, so one
    ``(seed, fragments)`` pair yields one deterministic interleaving no
    matter how many other terminals run. ``setup`` runs every fragment's
    setup once (fragments own disjoint tables). This is the composable
    surface :mod:`repro.explore` fuzzes workload mixes through.
    """

    name = "mixed"

    def __init__(self, fragments: typing.Sequence[tuple[Workload, float]],
                 seed: int = 0):
        if not fragments:
            raise ValueError("MixedWorkload needs at least one fragment")
        self.fragments = [workload for workload, _weight in fragments]
        self.weights = [float(weight) for _workload, weight in fragments]
        if min(self.weights) < 0 or sum(self.weights) <= 0:
            raise ValueError("fragment weights must be >= 0 and sum > 0")
        self.seed = seed
        self._rngs: dict[int, random.Random] = {}

    def _rng(self, terminal_id: int) -> random.Random:
        rng = self._rngs.get(terminal_id)
        if rng is None:
            rng = random.Random(self.seed * 9_000_011 + terminal_id)
            self._rngs[terminal_id] = rng
        return rng

    def setup(self, db: "GlobalDB") -> None:
        for fragment in self.fragments:
            fragment.setup(db)

    def transaction(self, cn, terminal_id: int):
        rng = self._rng(terminal_id)
        fragment = rng.choices(self.fragments, weights=self.weights, k=1)[0]
        tag = yield from fragment.transaction(cn, terminal_id)
        return f"{getattr(fragment, 'name', 'frag')}:{tag}"


def run_workload(db: "GlobalDB", workload: Workload, terminals: int,
                 duration_s: float, warmup_s: float = 0.0,
                 setup: bool = True,
                 cns: typing.Sequence | None = None) -> WorkloadResult:
    """Run ``terminals`` closed-loop clients for ``duration_s`` sim-seconds.

    Terminals are spread round-robin over ``cns`` (default: all of the
    cluster's CNs — pass a subset to measure a specific node, as Fig. 6b
    does for a CN not co-located with the GTM server). ``warmup_s`` of
    extra run time is excluded from the statistics.
    """
    # Honor REPRO_SAN=1 / REPRO_HISTORY=1 on every driven run (CLI, bench,
    # examples) — a single os.environ lookup when unset, idempotent when
    # already on.
    from repro.check.history import maybe_install as maybe_install_history
    from repro.san import maybe_install
    maybe_install(db.env)
    maybe_install_history(db.env)
    if setup:
        workload.setup(db)
    stats = WorkloadStats()
    env = db.env
    target_cns = list(cns) if cns else list(db.cns)
    start_counting_at = env.now + round(warmup_s * SECOND)
    stop_at = start_counting_at + round(duration_s * SECOND)

    tracer = env.tracer

    def terminal(terminal_id: int):
        cn = target_cns[terminal_id % len(target_cns)]
        while env.now < stop_at:
            started = env.now
            txn_type = "txn"
            try:
                txn_type = yield from workload.transaction(cn, terminal_id)
                ok = True
            except TransactionAborted:
                ok = False
            if tracer.enabled:
                tracer.complete("txn", txn_type or "txn", started, env.now,
                                track=f"terminal-{terminal_id}", ok=ok)
            if env.now >= start_counting_at and env.now < stop_at:
                stats.record(txn_type or "txn", env.now - started, ok)

    for terminal_id in range(terminals):
        env.process(terminal(terminal_id), name=f"terminal-{terminal_id}")
    env.run(until=stop_at)
    stats.window_ns = stop_at - start_counting_at
    stats.window_start_ns = start_counting_at
    return WorkloadResult(stats=stats, duration_s=duration_s, terminals=terminals)
