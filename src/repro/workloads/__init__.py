"""Evaluation workloads (§V): TPC-C and Sysbench.

- :mod:`repro.workloads.tpcc` — the full TPC-C mix (New-Order, Payment,
  Order-Status, Delivery, Stock-Level) over the 9-table schema, with
  spec-conformant NURand key skew, a controllable remote-transaction
  fraction (the paper modifies workload affinity, §V-A), and the read-only
  variant (Order-Status + Stock-Level with 50% multi-shard reads, §V-B).
- :mod:`repro.workloads.sysbench` — Sysbench point-select with a
  controllable remote-tuple fraction (§V-B runs 2/3 remote).
- :mod:`repro.workloads.bank` — the Jepsen ``bank`` conservation workload
  used by the chaos/consistency harness (:mod:`repro.chaos`,
  :mod:`repro.check`).
- :mod:`repro.workloads.driver` — closed-loop terminal drivers running
  inside the simulation, and latency/throughput statistics.
"""

from repro.workloads.bank import BankConfig, BankWorkload
from repro.workloads.driver import (MixedWorkload, WorkloadResult,
                                    WorkloadStats, run_workload)
from repro.workloads.sysbench import SysbenchConfig, SysbenchWorkload
from repro.workloads.tpcc import TpccConfig, TpccWorkload

__all__ = [
    "run_workload",
    "WorkloadStats",
    "WorkloadResult",
    "MixedWorkload",
    "TpccConfig",
    "TpccWorkload",
    "SysbenchConfig",
    "SysbenchWorkload",
    "BankConfig",
    "BankWorkload",
]
