"""SQL tokenizer."""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import SqlError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "DROP", "TABLE", "INDEX", "ON", "PRIMARY", "KEY",
    "DISTRIBUTE", "BY", "HASH", "REPLICATION", "AND", "OR", "NOT", "ORDER",
    "LIMIT", "ASC", "DESC", "BEGIN", "COMMIT", "ROLLBACK", "NULL", "TRUE",
    "FALSE", "COUNT", "SUM", "AVG", "MIN", "MAX", "AS", "INT", "BIGINT",
    "FLOAT", "DOUBLE", "TEXT", "VARCHAR", "FOR", "IN",
}

_PUNCT = {"(", ")", ",", "*", "=", "<", ">", "+", "-", "/", ";", "?", "."}
_TWO_CHAR = {"<=", ">=", "<>", "!="}


@dataclass(frozen=True)
class Token:
    kind: str  # 'kw' | 'ident' | 'number' | 'string' | 'punct' | 'end'
    value: typing.Any
    position: int


def tokenize(text: str) -> list[Token]:
    """Turn SQL text into tokens. Raises :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text[index:index + 2] in _TWO_CHAR:
            tokens.append(Token("punct", text[index:index + 2], index))
            index += 2
            continue
        if char == "'":
            end = text.find("'", index + 1)
            while end != -1 and text[end:end + 2] == "''":
                end = text.find("'", end + 2)
            if end == -1:
                raise SqlError(f"unterminated string literal at {index}")
            raw = text[index + 1:end].replace("''", "'")
            tokens.append(Token("string", raw, index))
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length
                              and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            literal = text[index:end]
            value: typing.Any = float(literal) if seen_dot else int(literal)
            tokens.append(Token("number", value, index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("kw", upper, index))
            else:
                tokens.append(Token("ident", word.lower(), index))
            index = end
            continue
        if char in _PUNCT:
            tokens.append(Token("punct", char, index))
            index += 1
            continue
        raise SqlError(f"unexpected character {char!r} at {index}")
    tokens.append(Token("end", None, length))
    return tokens
