"""SQL abstract syntax tree nodes."""

from __future__ import annotations

import typing
from dataclasses import dataclass


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: typing.Any


@dataclass(frozen=True)
class Param:
    """A ``?`` placeholder, numbered left to right from 0."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class BinaryOp:
    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', 'AND', 'OR'
    left: typing.Any
    right: typing.Any


@dataclass(frozen=True)
class UnaryOp:
    op: str  # 'NOT', '-'
    operand: typing.Any


@dataclass(frozen=True)
class Aggregate:
    func: str  # 'COUNT', 'SUM', 'AVG', 'MIN', 'MAX'
    argument: typing.Any  # ColumnRef or '*' (for COUNT)
    alias: str | None = None


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: typing.Any  # ColumnRef | Aggregate | '*'
    alias: str | None = None


@dataclass(frozen=True)
class Select:
    table: str
    items: tuple
    where: typing.Any | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple
    rows: tuple  # tuple of tuples of expressions


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple  # of (column, expression)
    where: typing.Any | None = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: typing.Any | None = None


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple  # of (name, type)
    primary_key: tuple
    distribution: str = "hash"  # 'hash' | 'replicated'
    distribution_column: str | None = None


@dataclass(frozen=True)
class DropTable:
    table: str


@dataclass(frozen=True)
class CreateIndex:
    table: str
    column: str


@dataclass(frozen=True)
class BeginTxn:
    pass


@dataclass(frozen=True)
class CommitTxn:
    pass


@dataclass(frozen=True)
class RollbackTxn:
    pass
