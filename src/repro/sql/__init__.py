"""A small SQL front-end for the computing node.

Supports the statement shapes the paper's workloads and examples need:

- ``CREATE TABLE t (col TYPE, ...) [PRIMARY KEY (a, b)] [DISTRIBUTE BY
  HASH(col) | REPLICATION]``, ``DROP TABLE``, ``CREATE INDEX ON t (col)``
- ``INSERT INTO t (cols...) VALUES (...), (...)``
- ``SELECT cols | * | aggregates FROM t [WHERE expr] [ORDER BY col [DESC]]
  [LIMIT n]``
- ``UPDATE t SET col = expr, ... [WHERE expr]``
- ``DELETE FROM t [WHERE expr]``
- ``BEGIN`` / ``COMMIT`` / ``ROLLBACK``

Point lookups on the full primary key become single-shard reads; equality
on the distribution column prunes to one shard; everything else is a
predicate scan across shards. Parameters use ``?`` placeholders.
"""

from repro.sql.executor import SqlExecutor
from repro.sql.parser import parse

__all__ = ["parse", "SqlExecutor"]
