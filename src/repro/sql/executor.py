"""SQL planning and execution against a computing node.

The executor turns parsed statements into the CN's native operations:

- SELECT with the full primary key bound -> a single point read (the
  single-shard fast path);
- other SELECTs -> predicate scans across shards (read-only queries use
  the ROR path automatically);
- UPDATE/DELETE -> point ops when the primary key is bound, otherwise a
  scan to collect matching keys followed by per-key ops;
- ``col = col + expr`` style assignments are pushed to the data node as
  atomic read-modify-writes.

Everything is exposed as generators (for in-simulation callers) and wired
into :class:`repro.cluster.client.Session` for synchronous use.
"""

from __future__ import annotations

import typing

from repro.errors import SqlError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Literal,
    Param,
    Select,
    UnaryOp,
    Update,
)
from repro.storage.catalog import ColumnDef, DistributionSpec, TableSchema

# Sentinel: a planned point SELECT whose bound columns turned out not to
# cover the live primary key (DDL changed it) — fall back to the scan path.
_NOT_A_POINT = object()


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
def evaluate(expr, row: typing.Mapping, params: typing.Sequence):
    """Evaluate an expression against a row (SQL-ish NULL semantics:
    comparisons involving NULL are false, arithmetic propagates None)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Param):
        try:
            return params[expr.index]
        except IndexError:
            raise SqlError(f"missing parameter {expr.index}") from None
    if isinstance(expr, ColumnRef):
        return row.get(expr.name)
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, row, params)
        if expr.op == "NOT":
            return not value
        if expr.op == "-":
            return None if value is None else -value
        raise SqlError(f"unknown unary operator {expr.op}")
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return bool(evaluate(expr.left, row, params)) and \
                bool(evaluate(expr.right, row, params))
        if expr.op == "OR":
            return bool(evaluate(expr.left, row, params)) or \
                bool(evaluate(expr.right, row, params))
        left = evaluate(expr.left, row, params)
        right = evaluate(expr.right, row, params)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            return {
                "=": left == right, "<>": left != right, "<": left < right,
                "<=": left <= right, ">": left > right, ">=": left >= right,
            }[expr.op]
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
    raise SqlError(f"cannot evaluate expression {expr!r}")


def columns_in(expr) -> set[str]:
    """Every column name referenced by an expression."""
    if isinstance(expr, ColumnRef):
        return {expr.name}
    if isinstance(expr, BinaryOp):
        return columns_in(expr.left) | columns_in(expr.right)
    if isinstance(expr, UnaryOp):
        return columns_in(expr.operand)
    return set()


def equality_bindings(where, params) -> dict[str, typing.Any]:
    """Extract ``col = constant`` conjuncts from a WHERE clause."""
    bindings: dict[str, typing.Any] = {}

    def walk(expr) -> None:
        if isinstance(expr, BinaryOp):
            if expr.op == "AND":
                walk(expr.left)
                walk(expr.right)
                return
            if expr.op == "=":
                left, right = expr.left, expr.right
                if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
                    left, right = right, left
                if (isinstance(left, ColumnRef)
                        and isinstance(right, (Literal, Param))
                        and left.name not in bindings):
                    bindings[left.name] = evaluate(right, {}, params)

    walk(where)
    return bindings


class _PointPlan:
    """Cached plan for a point SELECT: ``SELECT cols FROM t WHERE pk = ?``.

    ``eq`` holds every equality conjunct as ``(column, is_param, value)``
    (value is the param index when ``is_param``). ``star`` selects the
    whole-row projection; otherwise ``columns`` is ``(out_name, col_name)``
    pairs. Eligibility is structural only — whether the bound columns cover
    the primary key is re-checked against the live schema per execution, so
    a cached plan survives DDL."""

    __slots__ = ("eq", "star", "columns")

    def __init__(self, eq, star, columns):
        self.eq = eq
        self.star = star
        self.columns = columns


def _plan_point_select(statement: Select) -> _PointPlan | None:
    """Build a point plan, or None if the statement needs the general path:
    the WHERE must be a pure AND-tree of ``col = literal/param`` conjuncts
    (no duplicate columns) and the projection plain columns or ``*``."""
    if (statement.where is None or statement.order_by is not None
            or statement.limit is not None):
        return None
    star = False
    columns = []
    for item in statement.items:
        if item.expr == "*":
            star = True
        elif isinstance(item.expr, ColumnRef):
            columns.append((item.alias or item.expr.name, item.expr.name))
        else:
            return None
    eq: list[tuple] = []
    seen: set[str] = set()
    stack = [statement.where]
    while stack:
        expr = stack.pop()
        if not isinstance(expr, BinaryOp):
            return None
        if expr.op == "AND":
            stack.append(expr.left)
            stack.append(expr.right)
            continue
        if expr.op != "=":
            return None
        left, right = expr.left, expr.right
        if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
            left, right = right, left
        if not isinstance(left, ColumnRef) or left.name in seen:
            return None
        if isinstance(right, Param):
            eq.append((left.name, True, right.index))
        elif isinstance(right, Literal):
            eq.append((left.name, False, right.value))
        else:
            return None
        seen.add(left.name)
    return _PointPlan(tuple(eq), star, tuple(columns))


class SqlExecutor:
    """Plans and runs statements on one CN. Stateless; the caller supplies
    the transaction context for in-transaction execution."""

    def __init__(self, cn):
        self.cn = cn

    # ------------------------------------------------------------------
    def g_execute(self, statement, params: typing.Sequence = (), ctx=None,
                  min_read_ts: int = 0):
        """Generator: run one parsed statement.

        Returns a list of row dicts for SELECT, or a status dict for DML
        and DDL. ``ctx`` is a :class:`~repro.cluster.cn.TxnContext` for
        in-transaction execution; None means autocommit. ``min_read_ts``
        is the caller's read-your-writes floor for autocommit SELECTs.
        """
        if isinstance(statement, Select):
            # Prepared-statement fast path: plan once per AST instance,
            # cached on the (frozen, slot-less) node via object.__setattr__.
            plan = getattr(statement, "_point_plan", False)
            if plan is False:
                plan = _plan_point_select(statement)
                object.__setattr__(statement, "_point_plan", plan)
            if plan is not None:
                result = yield from self._select_point(statement, plan,
                                                       params, ctx,
                                                       min_read_ts)
                if result is not _NOT_A_POINT:
                    return result
            return (yield from self._select(statement, params, ctx,
                                            min_read_ts))
        if isinstance(statement, Insert):
            return (yield from self._insert(statement, params, ctx))
        if isinstance(statement, Update):
            return (yield from self._update(statement, params, ctx))
        if isinstance(statement, Delete):
            return (yield from self._delete(statement, params, ctx))
        if isinstance(statement, CreateTable):
            return (yield from self._create_table(statement))
        if isinstance(statement, DropTable):
            ddl_ts = yield from self.cn.g_drop_table(statement.table)
            return {"status": "dropped", "ddl_ts": ddl_ts}
        if isinstance(statement, CreateIndex):
            ddl_ts = yield from self.cn.g_create_index(statement.table,
                                                       statement.column)
            return {"status": "indexed", "ddl_ts": ddl_ts}
        raise SqlError(f"executor cannot run {type(statement).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _pk_key(self, table: str, bindings: dict) -> tuple | None:
        schema = self.cn.shard_map.schema(table)
        if all(column in bindings for column in schema.primary_key):
            return tuple(bindings[column] for column in schema.primary_key)
        return None

    def _select_point(self, statement: Select, plan: _PointPlan, params,
                      ctx, min_read_ts: int):
        """Run a planned point SELECT: resolve the bound values, single
        point read, re-check every equality against the returned row (NULL
        never matches, and an update may have rewritten a bound column),
        then the precomputed projection. Returns ``_NOT_A_POINT`` when the
        live primary key is not covered by the plan's bound columns."""
        values = {}
        for column, is_param, value in plan.eq:
            if is_param:
                try:
                    value = params[value]
                except IndexError:
                    raise SqlError(f"missing parameter {value}") from None
            values[column] = value
        schema = self.cn.shard_map.schema(statement.table)
        key = []
        for column in schema.primary_key:
            if column not in values:
                return _NOT_A_POINT
            key.append(values[column])
        if ctx is not None:
            row = yield from self.cn.g_read(ctx, statement.table, tuple(key))
        else:
            row = yield from self.cn.g_read_only(statement.table, tuple(key),
                                                 min_read_ts=min_read_ts)
        if row is None:
            return []
        for column, value in values.items():
            if value is None or row.get(column) != value:
                return []
        if plan.star:
            return [dict(row)]
        get = row.get
        return [{out: get(name) for out, name in plan.columns}]

    def _select(self, statement: Select, params, ctx, min_read_ts: int = 0):
        table = statement.table
        bindings = equality_bindings(statement.where, params) \
            if statement.where is not None else {}
        key = self._pk_key(table, bindings)
        where = statement.where

        def predicate(row):
            return where is None or bool(evaluate(where, row, params))

        if key is not None:
            if ctx is not None:
                row = yield from self.cn.g_read(ctx, table, key)
            else:
                row = yield from self.cn.g_read_only(table, key,
                                                     min_read_ts=min_read_ts)
            rows = [row] if row is not None and predicate(row) else []
        else:
            if ctx is not None:
                rows = yield from self.cn.g_scan(ctx, table, predicate)
            else:
                rows = yield from self.cn.g_scan_only(table, predicate,
                                                      min_read_ts=min_read_ts)
        return self._project(statement, rows, params)

    def _project(self, statement: Select, rows: list[dict], params):
        aggregates = [item.expr for item in statement.items
                      if isinstance(item.expr, Aggregate)]
        if aggregates:
            if len(aggregates) != len(statement.items):
                raise SqlError("cannot mix aggregates and plain columns")
            result = {}
            for aggregate in aggregates:
                name = aggregate.alias or \
                    f"{aggregate.func.lower()}" \
                    f"({'*' if aggregate.argument == '*' else aggregate.argument.name})"
                result[name] = self._aggregate(aggregate, rows, params)
            return [result]
        if statement.order_by is not None:
            rows = sorted(rows, key=lambda row: row.get(statement.order_by),
                          reverse=statement.descending)
        if statement.limit is not None:
            rows = rows[:statement.limit]
        if any(item.expr == "*" for item in statement.items):
            return [dict(row) for row in rows]
        projected = []
        for row in rows:
            out = {}
            for item in statement.items:
                if isinstance(item.expr, ColumnRef):
                    out[item.alias or item.expr.name] = row.get(item.expr.name)
                else:
                    out[item.alias or "expr"] = evaluate(item.expr, row, params)
            projected.append(out)
        return projected

    @staticmethod
    def _aggregate(aggregate: Aggregate, rows: list[dict], params):
        if aggregate.func == "COUNT":
            if aggregate.argument == "*":
                return len(rows)
            column = aggregate.argument.name
            return sum(1 for row in rows if row.get(column) is not None)
        column = aggregate.argument.name
        values = [row[column] for row in rows if row.get(column) is not None]
        if not values:
            return None
        if aggregate.func == "SUM":
            return sum(values)
        if aggregate.func == "AVG":
            return sum(values) / len(values)
        if aggregate.func == "MIN":
            return min(values)
        if aggregate.func == "MAX":
            return max(values)
        raise SqlError(f"unknown aggregate {aggregate.func}")

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _rows_from_insert(self, statement: Insert, params) -> list[dict]:
        return [
            {column: evaluate(value, {}, params)
             for column, value in zip(statement.columns, value_row)}
            for value_row in statement.rows
        ]

    def _insert(self, statement: Insert, params, ctx):
        rows = self._rows_from_insert(statement, params)
        count = 0
        if ctx is not None:
            for row in rows:
                yield from self.cn.g_insert(ctx, statement.table, row)
                count += 1
            return {"status": "inserted", "count": count}
        ctx = yield from self.cn.g_begin()
        for row in rows:
            yield from self.cn.g_insert(ctx, statement.table, row)
            count += 1
        commit_ts = yield from self.cn.g_commit(ctx)
        return {"status": "inserted", "count": count, "commit_ts": commit_ts}

    def _changes_from_assignments(self, statement: Update, params):
        """Turn SET clauses into the DN changes dict; self-referencing
        expressions become atomic read-modify-write callables."""
        changes: dict[str, typing.Any] = {}
        complex_columns: set[str] = set()
        for column, expr in statement.assignments:
            referenced = columns_in(expr)
            if not referenced:
                changes[column] = evaluate(expr, {}, params)
            elif referenced == {column}:
                def rmw(old, expr=expr, column=column):
                    return evaluate(expr, {column: old}, params)
                changes[column] = rmw
            else:
                complex_columns.add(column)
        return changes, complex_columns

    def _update(self, statement: Update, params, ctx):
        autocommit = ctx is None
        if autocommit:
            ctx = yield from self.cn.g_begin()
        bindings = equality_bindings(statement.where, params) \
            if statement.where is not None else {}
        key = self._pk_key(statement.table, bindings)
        where = statement.where
        schema = self.cn.shard_map.schema(statement.table)
        changes, complex_columns = self._changes_from_assignments(statement,
                                                                  params)
        if key is not None:
            keys = [key]
        else:
            rows = yield from self.cn.g_scan(
                ctx, statement.table,
                lambda row: where is None or bool(evaluate(where, row, params)))
            keys = [schema.key_of(row) for row in rows]
        count = 0
        for target in keys:
            if complex_columns:
                current = yield from self.cn.g_read_for_update(
                    ctx, statement.table, target)
                if current is None:
                    continue
                full = dict(changes)
                for column, expr in statement.assignments:
                    if column in complex_columns:
                        full[column] = evaluate(expr, current, params)
                result = yield from self.cn.g_update(ctx, statement.table,
                                                     target, full)
            else:
                result = yield from self.cn.g_update(ctx, statement.table,
                                                     target, changes)
            if result is not None:
                count += 1
        if autocommit:
            commit_ts = yield from self.cn.g_commit(ctx)
            return {"status": "updated", "count": count,
                    "commit_ts": commit_ts}
        return {"status": "updated", "count": count}

    def _delete(self, statement: Delete, params, ctx):
        autocommit = ctx is None
        if autocommit:
            ctx = yield from self.cn.g_begin()
        bindings = equality_bindings(statement.where, params) \
            if statement.where is not None else {}
        key = self._pk_key(statement.table, bindings)
        where = statement.where
        schema = self.cn.shard_map.schema(statement.table)
        if key is not None:
            keys = [key]
        else:
            rows = yield from self.cn.g_scan(
                ctx, statement.table,
                lambda row: where is None or bool(evaluate(where, row, params)))
            keys = [schema.key_of(row) for row in rows]
        count = 0
        for target in keys:
            deleted = yield from self.cn.g_delete(ctx, statement.table, target)
            if deleted:
                count += 1
        if autocommit:
            commit_ts = yield from self.cn.g_commit(ctx)
            return {"status": "deleted", "count": count,
                    "commit_ts": commit_ts}
        return {"status": "deleted", "count": count}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create_table(self, statement: CreateTable):
        schema = TableSchema(
            name=statement.table,
            columns=[ColumnDef(name, type_) for name, type_ in
                     statement.columns],
            primary_key=statement.primary_key,
            distribution=DistributionSpec(
                statement.distribution,
                statement.distribution_column),
        )
        ddl_ts = yield from self.cn.g_create_table(schema)
        return {"status": "created", "ddl_ts": ddl_ts}
