"""Recursive-descent SQL parser."""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql.ast_nodes import (
    Aggregate,
    BeginTxn,
    BinaryOp,
    ColumnRef,
    CommitTxn,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Literal,
    Param,
    RollbackTxn,
    Select,
    SelectItem,
    UnaryOp,
    Update,
)
from repro.sql.lexer import Token, tokenize

_TYPE_MAP = {"INT": "int", "BIGINT": "int", "FLOAT": "float",
             "DOUBLE": "float", "TEXT": "text", "VARCHAR": "text"}
_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def parse(text: str):
    """Parse one SQL statement into its AST node."""
    return _Parser(tokenize(text)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0
        self.param_count = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value=None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            want = value or kind
            raise SqlError(f"expected {want!r}, got {actual.value!r} "
                           f"at position {actual.position}")
        return token

    def expect_ident(self) -> str:
        return self.expect("ident").value

    # -- statements ------------------------------------------------------
    def parse_statement(self):
        token = self.peek()
        if token.kind != "kw":
            raise SqlError(f"statement must start with a keyword, got "
                           f"{token.value!r}")
        dispatch = {
            "SELECT": self._select,
            "INSERT": self._insert,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "CREATE": self._create,
            "DROP": self._drop,
            "BEGIN": lambda: (self.advance(), BeginTxn())[1],
            "COMMIT": lambda: (self.advance(), CommitTxn())[1],
            "ROLLBACK": lambda: (self.advance(), RollbackTxn())[1],
        }
        handler = dispatch.get(token.value)
        if handler is None:
            raise SqlError(f"unsupported statement {token.value}")
        statement = handler()
        self.accept("punct", ";")
        self.expect("end")
        return statement

    def _select(self) -> Select:
        self.expect("kw", "SELECT")
        items = [self._select_item()]
        while self.accept("punct", ","):
            items.append(self._select_item())
        self.expect("kw", "FROM")
        table = self.expect_ident()
        where = self._optional_where()
        order_by = None
        descending = False
        if self.accept("kw", "ORDER"):
            self.expect("kw", "BY")
            order_by = self.expect_ident()
            if self.accept("kw", "DESC"):
                descending = True
            else:
                self.accept("kw", "ASC")
        limit = None
        if self.accept("kw", "LIMIT"):
            limit = self.expect("number").value
        return Select(table=table, items=tuple(items), where=where,
                      order_by=order_by, descending=descending, limit=limit)

    def _select_item(self) -> SelectItem:
        if self.accept("punct", "*"):
            return SelectItem(expr="*")
        token = self.peek()
        if token.kind == "kw" and token.value in _AGGREGATES:
            func = self.advance().value
            self.expect("punct", "(")
            if self.accept("punct", "*"):
                argument = "*"
                if func != "COUNT":
                    raise SqlError(f"{func}(*) is not valid")
            else:
                argument = ColumnRef(self.expect_ident())
            self.expect("punct", ")")
            alias = self.expect_ident() if self.accept("kw", "AS") else None
            return SelectItem(expr=Aggregate(func, argument, alias))
        expr = self._expression()
        alias = self.expect_ident() if self.accept("kw", "AS") else None
        return SelectItem(expr=expr, alias=alias)

    def _insert(self) -> Insert:
        self.expect("kw", "INSERT")
        self.expect("kw", "INTO")
        table = self.expect_ident()
        self.expect("punct", "(")
        columns = [self.expect_ident()]
        while self.accept("punct", ","):
            columns.append(self.expect_ident())
        self.expect("punct", ")")
        self.expect("kw", "VALUES")
        rows = [self._value_row(len(columns))]
        while self.accept("punct", ","):
            rows.append(self._value_row(len(columns)))
        return Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def _value_row(self, expected_width: int) -> tuple:
        self.expect("punct", "(")
        values = [self._expression()]
        while self.accept("punct", ","):
            values.append(self._expression())
        self.expect("punct", ")")
        if len(values) != expected_width:
            raise SqlError(f"VALUES row has {len(values)} values, "
                           f"expected {expected_width}")
        return tuple(values)

    def _update(self) -> Update:
        self.expect("kw", "UPDATE")
        table = self.expect_ident()
        self.expect("kw", "SET")
        assignments = [self._assignment()]
        while self.accept("punct", ","):
            assignments.append(self._assignment())
        return Update(table=table, assignments=tuple(assignments),
                      where=self._optional_where())

    def _assignment(self) -> tuple:
        column = self.expect_ident()
        self.expect("punct", "=")
        return column, self._expression()

    def _delete(self) -> Delete:
        self.expect("kw", "DELETE")
        self.expect("kw", "FROM")
        table = self.expect_ident()
        return Delete(table=table, where=self._optional_where())

    def _create(self):
        self.expect("kw", "CREATE")
        if self.accept("kw", "INDEX"):
            self.expect("kw", "ON")
            table = self.expect_ident()
            self.expect("punct", "(")
            column = self.expect_ident()
            self.expect("punct", ")")
            return CreateIndex(table=table, column=column)
        self.expect("kw", "TABLE")
        table = self.expect_ident()
        self.expect("punct", "(")
        columns: list[tuple] = []
        primary_key: tuple = ()
        while True:
            if self.accept("kw", "PRIMARY"):
                self.expect("kw", "KEY")
                self.expect("punct", "(")
                keys = [self.expect_ident()]
                while self.accept("punct", ","):
                    keys.append(self.expect_ident())
                self.expect("punct", ")")
                primary_key = tuple(keys)
            else:
                name = self.expect_ident()
                type_token = self.expect("kw")
                sql_type = _TYPE_MAP.get(type_token.value)
                if sql_type is None:
                    raise SqlError(f"unknown column type {type_token.value}")
                if type_token.value == "VARCHAR" and self.accept("punct", "("):
                    self.expect("number")
                    self.expect("punct", ")")
                columns.append((name, sql_type))
                if self.accept("kw", "PRIMARY"):
                    self.expect("kw", "KEY")
                    primary_key = (name,)
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        distribution = "hash"
        distribution_column = None
        if self.accept("kw", "DISTRIBUTE"):
            self.expect("kw", "BY")
            if self.accept("kw", "REPLICATION"):
                distribution = "replicated"
            else:
                self.expect("kw", "HASH")
                self.expect("punct", "(")
                distribution_column = self.expect_ident()
                self.expect("punct", ")")
        if not primary_key:
            raise SqlError(f"table {table} needs a primary key")
        return CreateTable(table=table, columns=tuple(columns),
                           primary_key=primary_key, distribution=distribution,
                           distribution_column=distribution_column)

    def _drop(self) -> DropTable:
        self.expect("kw", "DROP")
        self.expect("kw", "TABLE")
        return DropTable(table=self.expect_ident())

    def _optional_where(self):
        if self.accept("kw", "WHERE"):
            return self._expression()
        return None

    # -- expressions (precedence climbing) --------------------------------
    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept("kw", "OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept("kw", "AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept("kw", "NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self.check("punct", op):
                self.advance()
                normalized = "<>" if op == "!=" else op
                return BinaryOp(normalized, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self.accept("punct", "+"):
                left = BinaryOp("+", left, self._multiplicative())
            elif self.accept("punct", "-"):
                left = BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._primary()
        while True:
            if self.accept("punct", "*"):
                left = BinaryOp("*", left, self._primary())
            elif self.accept("punct", "/"):
                left = BinaryOp("/", left, self._primary())
            else:
                return left

    def _primary(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return Literal(token.value)
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if self.accept("kw", "NULL"):
            return Literal(None)
        if self.accept("kw", "TRUE"):
            return Literal(True)
        if self.accept("kw", "FALSE"):
            return Literal(False)
        if self.accept("punct", "?"):
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if self.accept("punct", "-"):
            return UnaryOp("-", self._primary())
        if self.accept("punct", "("):
            expr = self._expression()
            self.expect("punct", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            return ColumnRef(token.value)
        raise SqlError(f"unexpected token {token.value!r} at "
                       f"position {token.position}")
