"""Hash-seed perturbation harness: the dynamic half of simlint.

Static rules (SIM101–SIM106) catch the *patterns* that break determinism;
this harness catches the *fact*. It runs the same short traced simulation
in N fresh subprocesses, each under a distinct ``PYTHONHASHSEED``, and
compares the ``repro.obs`` trace digests. Any hash-order dependence left
in a scheduling path — a set iterated before an event is enqueued, a dict
keyed by object identity — shows up as diverging digests, exactly the bug
class PR 1 found in ``storage/locks.py`` by hand-diffing traces.

Run it as::

    python -m repro.lint --determinism --seeds 3

Each child executes ``python -m repro.lint.determinism`` (this module),
which prints a one-line JSON summary of its run; the parent compares.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass

#: Defaults tuned so three child runs finish in well under a CI minute.
DEFAULT_SEEDS = 3
DEFAULT_DURATION_S = 0.2
DEFAULT_WARMUP_S = 0.05
#: Chaos smoke runs are longer so the default nemesis's partition,
#: migration-under-fire and crash windows all fire inside the run.
DEFAULT_CHAOS_DURATION_S = 1.0
CHILD_TIMEOUT_S = 600


def smoke_run(duration_s: float = DEFAULT_DURATION_S,
              warmup_s: float = DEFAULT_WARMUP_S,
              seed: int = 0, workload_seed: int = 42,
              telemetry: bool = False, sanitize: bool = False) -> dict:
    """One small traced One-Region TPC-C run, summarised for comparison.

    The digest covers every recorded span (ordering, timing, payloads);
    the scalar fields make a mismatch report human-readable.

    ``telemetry=True`` additionally enables the windowed time-series and
    default SLO monitors and reports the monitor's alert-stream digest —
    proving the *telemetry pipeline itself* is hash-order independent.
    (The perf harness's pinned digest uses ``telemetry=False``, the
    pre-telemetry configuration, so the recording stays comparable.)

    ``sanitize=True`` installs the :mod:`repro.san` runtime sanitizer and
    reports its finding count and details; sanitizer findings are emitted
    into the trace, so the digest also proves the *report itself* is
    hash-seed stable."""
    from repro import ClusterConfig, build_cluster, one_region
    from repro.workloads import TpccConfig, TpccWorkload, run_workload

    db = build_cluster(ClusterConfig.globaldb(
        one_region(), seed=seed, metrics_enabled=False, trace_enabled=True,
        timeseries_enabled=telemetry))
    if sanitize:
        from repro.san import Sanitizer
        Sanitizer(db.env).install()
    workload = TpccWorkload(TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=20, initial_orders_per_district=5, seed=workload_seed))
    result = run_workload(db, workload, terminals=4, duration_s=duration_s,
                          warmup_s=warmup_s)
    summary = {
        "digest": db.env.tracer.digest(),
        "spans": len(db.env.tracer.spans),
        "committed": result.stats.committed,
        "aborted": result.stats.aborted,
        "sim_now_ns": db.env.now,
        "hash_seed": os.environ.get("PYTHONHASHSEED", "<unset>"),
    }
    if telemetry:
        db.env.series.catch_up()
        summary["alerts"] = len(db.env.monitor.alerts)
        summary["alerts_digest"] = db.env.monitor.digest()
        summary["series"] = len(db.env.series.all_series())
    if sanitize:
        summary["san_findings"] = db.env.san.report.to_dicts()
        summary["san_messages_checked"] = db.env.san.messages_checked
    return summary


def chaos_smoke_run(duration_s: float = DEFAULT_CHAOS_DURATION_S,
                    warmup_s: float = DEFAULT_WARMUP_S,
                    seed: int = 0) -> dict:
    """One traced chaos experiment (three-city bank under the default
    nemesis, see :mod:`repro.check.runner`), summarised for comparison.

    Three digests must be hash-seed stable: the trace (every span the run
    emitted, chaos instants included), the nemesis event log, and the
    recorded operation history the consistency checkers consume — so the
    sweep proves fault injection, healing, *and* the Jepsen history are
    all free of hash-order dependence."""
    from repro.check.runner import run_seed

    run = run_seed(seed, nemesis="default", duration_s=duration_s,
                   warmup_s=warmup_s, trace=True)
    return {
        "digest": run["trace_digest"],
        "chaos_digest": run["chaos_digest"],
        "history_digest": run["history_digest"],
        "chaos_events": run["chaos_events"],
        "committed": run["committed"],
        "aborted": run["aborted"],
        "violations": len(run["violations"]),
        "spans": run["trace_spans"],
        "hash_seed": os.environ.get("PYTHONHASHSEED", "<unset>"),
    }


@dataclass
class DeterminismResult:
    """Outcome of one perturbation sweep."""

    ok: bool
    runs: list[dict]
    errors: list[str]

    def render(self) -> str:
        lines = []
        for run in self.runs:
            lines.append(
                f"  PYTHONHASHSEED={run['hash_seed']:<6} "
                f"digest={run['digest'][:16]}… spans={run['spans']} "
                f"committed={run['committed']} aborted={run['aborted']}")
        lines.extend(f"  ERROR: {error}" for error in self.errors)
        digests = {run["digest"] for run in self.runs}
        alert_digests = {run["alerts_digest"] for run in self.runs
                         if "alerts_digest" in run}
        chaos_digests = {run["chaos_digest"] for run in self.runs
                         if "chaos_digest" in run}
        history_digests = {run["history_digest"] for run in self.runs
                           if "history_digest" in run}
        if self.ok:
            suffix = ""
            if alert_digests:
                alerts = self.runs[0].get("alerts", 0)
                suffix = (f"; alert stream stable "
                          f"({alerts} alert(s), 1 digest)")
            if chaos_digests:
                events = self.runs[0].get("chaos_events", 0)
                suffix += (f"; chaos + history stable "
                           f"({events} fault event(s), 1 digest each)")
            lines.append(f"determinism PASS: {len(self.runs)} runs under "
                         f"distinct hash seeds, 1 digest{suffix}")
        else:
            if len(alert_digests) > 1:
                lines.append(f"  monitor alert streams diverged: "
                             f"{len(alert_digests)} distinct digests")
            if len(chaos_digests) > 1:
                lines.append(f"  nemesis event logs diverged: "
                             f"{len(chaos_digests)} distinct digests")
            if len(history_digests) > 1:
                lines.append(f"  recorded histories diverged: "
                             f"{len(history_digests)} distinct digests")
            lines.append(f"determinism FAIL: {len(digests)} distinct "
                         f"digest(s) across {len(self.runs)} run(s) — "
                         f"hash-order dependence in a scheduling path")
        return "\n".join(lines)


def _child_env(hash_seed: int) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    # Make sure the child resolves the same `repro` package as the parent,
    # whatever PYTHONPATH the parent was launched with.
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    paths = [src_dir] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


def run_perturbation(seeds: int = DEFAULT_SEEDS,
                     duration_s: float = DEFAULT_DURATION_S,
                     warmup_s: float = DEFAULT_WARMUP_S,
                     echo=None, telemetry: bool = True,
                     sanitize: bool = False,
                     chaos: bool = False) -> DeterminismResult:
    """Run the smoke sim under ``seeds`` distinct hash seeds and compare.

    Hash seeds are spread out (1, 1001, 2001, ...) rather than 0..N-1
    because ``PYTHONHASHSEED=0`` *disables* randomization — a run that only
    compared seed 0 against itself would prove nothing.

    With ``telemetry`` (the default) the children also run the windowed
    time-series + default monitors and the sweep additionally requires the
    monitor alert streams to share one digest.

    With ``chaos`` the children instead run the traced chaos smoke
    (:func:`chaos_smoke_run`) and the sweep additionally requires the
    nemesis event log and the recorded Jepsen history to each share one
    digest across hash seeds.
    """
    runs: list[dict] = []
    errors: list[str] = []
    for index in range(seeds):
        hash_seed = 1 + index * 1000
        command = [sys.executable, "-m", "repro.lint.determinism",
                   "--duration", str(duration_s), "--warmup", str(warmup_s)]
        if chaos:
            command.append("--chaos")
        elif telemetry:
            command.append("--telemetry")
        if sanitize and not chaos:
            command.append("--sanitize")
        try:
            proc = subprocess.run(
                command, env=_child_env(hash_seed), capture_output=True,
                text=True, timeout=CHILD_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            errors.append(f"child (hash seed {hash_seed}) timed out after "
                          f"{CHILD_TIMEOUT_S}s")
            continue
        if proc.returncode != 0:
            tail = proc.stderr.strip().splitlines()[-1:] or ["<no stderr>"]
            errors.append(f"child (hash seed {hash_seed}) exited "
                          f"{proc.returncode}: {tail[0]}")
            continue
        try:
            run = json.loads(proc.stdout.strip().splitlines()[-1])
        except (ValueError, IndexError):
            errors.append(f"child (hash seed {hash_seed}) printed no JSON "
                          f"summary")
            continue
        runs.append(run)
        if echo is not None:
            echo(f"  run {index + 1}/{seeds} (PYTHONHASHSEED={hash_seed}): "
                 f"digest {run['digest'][:16]}…")
    digests = {run["digest"] for run in runs}
    alert_digests = {run["alerts_digest"] for run in runs
                     if "alerts_digest" in run}
    chaos_digests = {run["chaos_digest"] for run in runs
                     if "chaos_digest" in run}
    history_digests = {run["history_digest"] for run in runs
                       if "history_digest" in run}
    ok = (not errors and len(runs) == seeds and len(digests) == 1
          and len(alert_digests) <= 1 and len(chaos_digests) <= 1
          and len(history_digests) <= 1)
    return DeterminismResult(ok=ok, runs=runs, errors=errors)


def main(argv: list[str] | None = None) -> int:
    """Child entry point: run one smoke sim, print its JSON summary."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.determinism",
        description="One traced smoke run (child of --determinism).")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION_S)
    parser.add_argument("--warmup", type=float, default=DEFAULT_WARMUP_S)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload-seed", type=int, default=42)
    parser.add_argument("--telemetry", action="store_true",
                        help="also run time-series + monitors and report "
                             "the alert-stream digest")
    parser.add_argument("--sanitize", action="store_true",
                        help="install the repro.san runtime sanitizer and "
                             "report its findings")
    parser.add_argument("--chaos", action="store_true",
                        help="run the traced chaos smoke (bank workload "
                             "under the default nemesis) instead of the "
                             "TPC-C smoke")
    args = parser.parse_args(argv)
    if args.chaos:
        summary = chaos_smoke_run(duration_s=args.duration,
                                  warmup_s=args.warmup, seed=args.seed)
    else:
        summary = smoke_run(duration_s=args.duration, warmup_s=args.warmup,
                            seed=args.seed, workload_seed=args.workload_seed,
                            telemetry=args.telemetry, sanitize=args.sanitize)
    print(json.dumps(summary, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
