"""The built-in simlint rules (SIM101–SIM106, SIM111, SIM112).

Each rule targets a determinism or sim-safety hazard this codebase has
actually hit or is structurally exposed to:

========  ==========================================================
SIM101    wall-clock reads (`time.time`, `datetime.now`, ...) — real
          time must never leak into simulated control flow
SIM102    process-global or unseeded randomness — every stream must be
          seeded (see `repro.sim.rand`)
SIM103    iterating a set/frozenset — order follows PYTHONHASHSEED
          (the PR-1 `storage/locks.py` bug class)
SIM104    dropping the result of a `g_*` generator-process call — the
          generator is created but never runs (silent no-op)
SIM105    blocking calls (`time.sleep`, socket/file I/O) inside sim
          process generators — they stall the event loop in wall time
SIM106    mutable default arguments — shared state across calls
SIM111    fault-injection primitives (partitions, delay injection,
          endpoint up/down, link/clock mutation) outside the
          sanctioned layers — all chaos must flow through
          `repro.chaos` so it is scheduled, recorded, and healed
SIM112    hot-path dispatch hazards: direct `heapq` use outside the
          kernel (`repro.sim` owns event ordering — ad-hoc heaps
          re-introduce comparison-based ordering of unorderable
          payloads), and per-event `getattr(self, f"_handle_{...}")`
          string-building dispatch — precompute a handler dict once
          at `__init__` instead
========  ==========================================================
"""

from __future__ import annotations

import ast
import typing

from repro.lint.rules import Finding, Module, Rule, register
from repro.lint.typeinfo import (
    class_attr_types,
    function_scope,
    is_set,
    module_scope,
    _walk_function_body,
)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def import_map(tree: ast.Module) -> dict[str, str]:
    """Local binding name -> dotted origin, for resolving call targets.

    ``import time`` -> ``{"time": "time"}``;
    ``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``;
    ``import urllib.request`` -> ``{"urllib": "urllib"}`` (attribute access
    then rebuilds the full path).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                mapping[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return mapping


def resolve_dotted(func: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted path of a call target, import-aware (None when dynamic).

    Attribute chains whose root is *not* an imported binding return None:
    a local variable that happens to be named ``requests`` or ``time`` is
    an object, not the module, and must not match module-call patterns.
    Bare names (builtins like ``open``) resolve to themselves.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    origin = imports.get(parts[0])
    if origin is not None:
        parts[0] = origin
    elif len(parts) > 1:
        return None
    return ".".join(parts)


def _function_nodes(module: Module) -> typing.Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Every function in the module, paired with its enclosing class."""
    def visit(node: ast.AST, enclosing: ast.ClassDef | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
                yield from visit(child, enclosing)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, enclosing)
    yield from visit(module.tree, None)


def is_generator_function(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function's own body yields (nested defs excluded)."""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _walk_function_body(func))


# ----------------------------------------------------------------------
# SIM101 — wall-clock reads
# ----------------------------------------------------------------------
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "time.clock_gettime_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class WallClockRule(Rule):
    code = "SIM101"
    name = "wall-clock-read"
    description = ("Wall-clock reads outside an allowlist: simulated code "
                   "must derive all time from Environment.now.")

    #: dotted module names where wall-clock reads are legitimate (host-side
    #: tooling). Empty by default — prefer a line pragma with justification.
    allowed_modules: frozenset[str] = frozenset()

    def check(self, module: Module) -> typing.Iterator[Finding]:
        if module.name in self.allowed_modules:
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, imports)
                if dotted in WALL_CLOCK_CALLS:
                    yield self.finding(
                        module, node,
                        f"wall-clock read '{dotted}()' — simulation code "
                        f"must use Environment.now; host-side tooling may "
                        f"suppress with '# simlint: ignore[SIM101]'")


# ----------------------------------------------------------------------
# SIM102 — unseeded / process-global randomness
# ----------------------------------------------------------------------
_RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "randbytes", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "binomialvariate",
})


@register
class UnseededRandomRule(Rule):
    code = "SIM102"
    name = "unseeded-random"
    description = ("Module-level random.* functions or unseeded "
                   "random.Random() — all randomness must flow from named, "
                   "seeded streams (repro.sim.rand).")

    #: modules allowed to touch the random module directly (the stream
    #: factory itself derives seeds there).
    allowed_modules: frozenset[str] = frozenset({"repro.sim.rand"})

    def check(self, module: Module) -> typing.Iterator[Finding]:
        if module.name in self.allowed_modules:
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted is None or not dotted.startswith("random."):
                continue
            tail = dotted[len("random."):]
            if tail == "Random" and not node.args:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed draws from OS entropy — "
                    "pass an explicit seed or use RandomStreams.stream(name)")
            elif tail == "SystemRandom":
                yield self.finding(
                    module, node,
                    "random.SystemRandom is inherently non-deterministic — "
                    "use a seeded random.Random or RandomStreams")
            elif tail in _RANDOM_MODULE_FNS:
                yield self.finding(
                    module, node,
                    f"module-level 'random.{tail}()' uses the process-global "
                    f"RNG — draw from a seeded stream "
                    f"(repro.sim.rand.RandomStreams) instead")


# ----------------------------------------------------------------------
# SIM103 — set iteration order
# ----------------------------------------------------------------------
_ORDERED_CONVERTERS = frozenset({"list", "tuple", "enumerate"})


@register
class SetIterationRule(Rule):
    code = "SIM103"
    name = "set-iteration-order"
    description = ("Iterating a set/frozenset: element order follows "
                   "PYTHONHASHSEED, so any downstream scheduling or result "
                   "ordering diverges across processes. Wrap in sorted().")

    def check(self, module: Module) -> typing.Iterator[Finding]:
        attr_cache: dict[ast.ClassDef, dict] = {}
        # Module-level code first.
        yield from self._check_body(module, module.tree,
                                    module_scope(module.tree))
        for func, enclosing in _function_nodes(module):
            attrs = None
            if enclosing is not None:
                if enclosing not in attr_cache:
                    attr_cache[enclosing] = class_attr_types(enclosing)
                attrs = attr_cache[enclosing]
            scope = function_scope(func, attrs)
            yield from self._check_body(module, func, scope)

    def _check_body(self, module: Module, root: ast.AST,
                    scope: Scope) -> typing.Iterator[Finding]:
        for node in _walk_function_body(root):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(module, node.iter, scope,
                                            context="for loop")
            elif isinstance(node, (ast.ListComp, ast.DictComp,
                                   ast.GeneratorExp)):
                # SetComp is exempt: set -> set never leaks iteration
                # order. List/dict results (and generators feeding them)
                # preserve it, so those stay flagged.
                for comp in node.generators:
                    yield from self._check_iter(module, comp.iter, scope,
                                                context="comprehension")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in _ORDERED_CONVERTERS and node.args:
                if is_set(scope.infer(node.args[0])):
                    yield self.finding(
                        module, node,
                        f"'{node.func.id}(...)' of a set materialises "
                        f"hash-dependent order — use sorted(...)")

    def _check_iter(self, module: Module, iterable: ast.expr, scope: Scope,
                    context: str) -> typing.Iterator[Finding]:
        if is_set(scope.infer(iterable)):
            yield self.finding(
                module, iterable,
                f"{context} iterates a set — order follows PYTHONHASHSEED; "
                f"wrap in sorted(...) or use an insertion-ordered container")


# ----------------------------------------------------------------------
# SIM104 — dropped generator-process call
# ----------------------------------------------------------------------
@register
class DroppedGeneratorRule(Rule):
    code = "SIM104"
    name = "dropped-generator"
    description = ("A bare 'g_*(...)' statement creates a generator and "
                   "never runs it — the classic silently-dropped sim "
                   "process.")

    def check(self, module: Module) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            name = None
            if isinstance(call.func, ast.Name):
                name = call.func.id
            elif isinstance(call.func, ast.Attribute):
                name = call.func.attr
            if name and name.startswith("g_"):
                yield self.finding(
                    module, node,
                    f"result of generator-process call '{name}(...)' is "
                    f"dropped — nothing will execute; use 'yield from "
                    f"{name}(...)' or hand it to env.process(...)")


# ----------------------------------------------------------------------
# SIM105 — blocking calls inside sim generators
# ----------------------------------------------------------------------
_BLOCKING_EXACT = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait", "input", "open",
    "socket.create_connection", "socket.socket",
})
_BLOCKING_PREFIXES = ("socket.", "subprocess.", "requests.",
                      "urllib.request.", "http.client.", "asyncio.")


@register
class BlockingInGeneratorRule(Rule):
    code = "SIM105"
    name = "blocking-in-generator"
    description = ("Blocking wall-time calls (time.sleep, socket/file I/O) "
                   "inside a sim process generator stall the event loop; "
                   "model delays with env.timeout(...).")

    def check(self, module: Module) -> typing.Iterator[Finding]:
        imports = import_map(module.tree)
        for func, _enclosing in _function_nodes(module):
            if not (is_generator_function(func)
                    or func.name.startswith("g_")):
                continue
            for node in _walk_function_body(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = resolve_dotted(node.func, imports)
                if dotted is None:
                    continue
                if dotted in _BLOCKING_EXACT or \
                        dotted.startswith(_BLOCKING_PREFIXES):
                    yield self.finding(
                        module, node,
                        f"blocking call '{dotted}(...)' inside sim process "
                        f"generator '{func.name}' — blocks wall time, not "
                        f"sim time; use env.timeout(...) / move I/O out of "
                        f"the process")


# ----------------------------------------------------------------------
# SIM106 — mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


@register
class MutableDefaultRule(Rule):
    code = "SIM106"
    name = "mutable-default-argument"
    description = ("Mutable default arguments are shared across calls — "
                   "state leaks between transactions/runs; default to None "
                   "and construct inside the function.")

    def check(self, module: Module) -> typing.Iterator[Finding]:
        for func, _enclosing in _function_nodes(module):
            args = func.args
            for default in (*args.defaults, *args.kw_defaults):
                if default is None:
                    continue
                if self._is_mutable_literal(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in '{func.name}(...)' is "
                        f"evaluated once and shared by every call — use "
                        f"None and build it in the body")

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in _MUTABLE_FACTORIES
        return False


# ----------------------------------------------------------------------
# SIM111 — fault injection outside repro.chaos
# ----------------------------------------------------------------------
_FAULT_CALL_ATTRS = frozenset({
    "set_partition", "inject_delay", "inject_delay_all",
    "inject_delay_between_regions", "set_endpoint_up",
})

_FAULT_STORE_ATTRS = frozenset({"blocked", "extra_delay_ns"})


@register
class FaultInjectionRule(Rule):
    code = "SIM111"
    name = "unsanctioned-fault-injection"
    description = ("Fault-injection primitives used outside repro.chaos "
                   "(or the layers implementing them) — ad-hoc faults are "
                   "invisible to the nemesis event log, never healed by "
                   "quiesce, and break chaos-run reproducibility.")

    #: Module prefixes where the primitives are legitimate: the chaos
    #: engine itself, the layers that *implement* them (network, cluster
    #: crash/recovery, clock devices), and the bench experiments that
    #: reproduce the paper's injected-delay figures.
    allowed_prefixes: tuple[str, ...] = (
        "repro.chaos", "repro.sim", "repro.cluster", "repro.clocks",
        "repro.bench",
    )

    def _allowed(self, module: Module) -> bool:
        return any(module.name == prefix
                   or module.name.startswith(prefix + ".")
                   for prefix in self.allowed_prefixes)

    def check(self, module: Module) -> typing.Iterator[Finding]:
        if self._allowed(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _FAULT_CALL_ATTRS:
                    yield self.finding(
                        module, node,
                        f"fault-injection call '.{attr}(...)' outside "
                        f"repro.chaos — route faults through a chaos "
                        f"injector/schedule so they are recorded and "
                        f"healed")
                elif attr == "step" and \
                        isinstance(node.func.value, ast.Name) and \
                        "clock" in node.func.value.id.lower():
                    yield self.finding(
                        module, node,
                        "direct clock step outside repro.chaos — use the "
                        "ClockStep injector so the anomaly is scheduled "
                        "and recorded")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            target.attr in _FAULT_STORE_ATTRS:
                        yield self.finding(
                            module, target,
                            f"direct link mutation '.{target.attr} = ...' "
                            f"outside repro.chaos — use a partition/"
                            f"degradation injector so the fault heals "
                            f"deterministically")


# ----------------------------------------------------------------------
# SIM112 — hot-path dispatch hazards
# ----------------------------------------------------------------------
@register
class HotPathDispatchRule(Rule):
    code = "SIM112"
    name = "hot-path-dispatch"
    description = ("Direct heapq use outside repro.sim (the calendar-queue "
                   "kernel owns event ordering; ad-hoc heaps re-introduce "
                   "comparison-based ordering of unorderable payloads) and "
                   "per-event getattr(self, f'_handle_{...}') string-built "
                   "dispatch — precompute a handler dict at __init__.")

    #: Module prefixes where heapq is legitimate: the sim kernel itself,
    #: whose ordering the calendar queue implements and whose events carry
    #: explicit (when, priority, seq) keys.
    heapq_allowed_prefixes: tuple[str, ...] = ("repro.sim",)

    def check(self, module: Module) -> typing.Iterator[Finding]:
        yield from self._check_heapq(module)
        yield from self._check_dispatch(module)

    def _check_heapq(self, module: Module) -> typing.Iterator[Finding]:
        if any(module.name == prefix
               or module.name.startswith(prefix + ".")
               for prefix in self.heapq_allowed_prefixes):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq" or \
                            alias.name.startswith("heapq."):
                        yield self._heapq_finding(module, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq" and not node.level:
                    yield self._heapq_finding(module, node)

    def _heapq_finding(self, module: Module, node: ast.AST) -> Finding:
        return self.finding(
            module, node,
            "direct heapq use outside repro.sim — the kernel's calendar "
            "queue owns event ordering; schedule through Environment "
            "(schedule/defer/timeout) or, for domain priority queues, "
            "key entries explicitly and keep them out of the event loop")

    def _check_dispatch(self, module: Module) -> typing.Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("getattr", "hasattr")
                    and len(node.args) >= 2):
                continue
            name_arg = node.args[1]
            # Only string-*building* name arguments are per-event dispatch:
            # f-strings and '+' concatenation rebuild the attribute name on
            # every call. A plain Name (e.g. iterating dir(self) once in
            # __init__ to precompute the handler dict) is the sanctioned
            # pattern and stays silent.
            if isinstance(name_arg, ast.JoinedStr) or \
                    (isinstance(name_arg, ast.BinOp)
                     and isinstance(name_arg.op, ast.Add)):
                yield self.finding(
                    module, node,
                    f"per-event '{node.func.id}(self, <built name>)' "
                    f"dispatch rebuilds the attribute name and walks the "
                    f"type's MRO on every message — precompute a handler "
                    f"dict once in __init__ (see ClusterNode/GTMServer) "
                    f"and look the kind up in it")
