"""Finding reporters: human text and machine JSON.

The JSON schema (version 1) is stable for CI consumers::

    {
      "version": 1,
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "counts": {"SIM103": 2, ...},
      "files_checked": 42,
      "baselined": 0
    }
"""

from __future__ import annotations

import json
import typing

REPORT_VERSION = 1


def render_text(findings: typing.Sequence, files_checked: int,
                baselined: int = 0) -> str:
    lines = [f"{finding.path}:{finding.line}:{finding.col + 1}: "
             f"{finding.rule} {finding.message}"
             for finding in findings]
    counts = _counts(findings)
    if findings:
        summary = ", ".join(f"{code}×{count}"
                            for code, count in counts.items())
        lines.append(f"{len(findings)} finding(s) in {files_checked} "
                     f"file(s): {summary}")
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    if baselined:
        lines.append(f"({baselined} grandfathered finding(s) suppressed "
                     f"by baseline)")
    return "\n".join(lines)


def render_json(findings: typing.Sequence, files_checked: int,
                baselined: int = 0) -> str:
    payload = {
        "version": REPORT_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": _counts(findings),
        "files_checked": files_checked,
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _counts(findings: typing.Sequence) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))
