"""The simlint command line: ``python -m repro.lint``.

Modes:

- **Static** (default): lint the given paths (default ``src``) with every
  registered rule, honouring pragmas and an optional baseline. Exit 1 on
  any non-grandfathered finding.
- **Dynamic** (``--determinism``): run the hash-seed perturbation harness
  (:mod:`repro.lint.determinism`). Exit 1 when trace digests diverge.
- **simsan** (``san`` subcommand): the combined hazard gate — static
  interprocedural scan (SIM107–SIM110 and friends) plus a smoke
  simulation under the :mod:`repro.san` runtime sanitizer. Exit 1 on any
  static or runtime finding (see :mod:`repro.san.cli`).

All three gates run in CI; a change must pass all of them to land.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.lint.pragmas import Baseline
from repro.lint.rules import (
    REGISTRY,
    default_rules,
    iter_python_files,
    lint_paths,
)
from repro.lint.reporters import render_json, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & sim-safety static analysis "
                    "for the simulator, plus a hash-seed perturbation "
                    "harness (--determinism).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="CODES", default="",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--baseline", metavar="PATH",
                        help="JSON baseline of grandfathered findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite --baseline with the current findings "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--determinism", action="store_true",
                        help="run the PYTHONHASHSEED perturbation harness "
                             "instead of static analysis")
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of distinct hash seeds for "
                             "--determinism (default: 3)")
    parser.add_argument("--duration", type=float, default=None,
                        help="sim-seconds per --determinism child run")
    parser.add_argument("--chaos", action="store_true",
                        help="with --determinism: perturb the traced chaos "
                             "smoke (bank under the default nemesis) and "
                             "require stable chaos/history digests too")
    return parser


def _cmd_list_rules() -> int:
    rules = default_rules()
    width = max(len(rule.code) for rule in rules)
    for rule in rules:
        print(f"{rule.code.ljust(width)}  {rule.name}: {rule.description}")
    return EXIT_CLEAN


def _cmd_determinism(args: argparse.Namespace) -> int:
    from repro.lint.determinism import (
        DEFAULT_CHAOS_DURATION_S,
        DEFAULT_DURATION_S,
        run_perturbation,
    )

    if args.seeds < 2:
        print("error: --seeds must be >= 2 (one run proves nothing)",
              file=sys.stderr)
        return EXIT_ERROR
    default_duration = DEFAULT_CHAOS_DURATION_S if args.chaos \
        else DEFAULT_DURATION_S
    duration = args.duration if args.duration is not None \
        else default_duration
    flavor = "chaos smoke" if args.chaos else "smoke"
    print(f"determinism harness ({flavor}): {args.seeds} subprocess runs, "
          f"{duration} sim-seconds each, distinct PYTHONHASHSEED values")
    result = run_perturbation(seeds=args.seeds, duration_s=duration,
                              echo=print, chaos=args.chaos)
    print(result.render())
    return EXIT_CLEAN if result.ok else EXIT_FINDINGS


def _cmd_lint(args: argparse.Namespace) -> int:
    select = [code.strip().upper() for code in args.select.split(",")
              if code.strip()] if args.select else None
    ignore = [code.strip().upper() for code in args.ignore.split(",")
              if code.strip()]
    try:
        rules = default_rules(select=select, ignore=ignore)
    except ValueError as exc:
        print(f"error: {exc} (known: {', '.join(sorted(REGISTRY))})",
              file=sys.stderr)
        return EXIT_ERROR

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return EXIT_ERROR

    findings = lint_paths(paths, rules=rules)
    files_checked = sum(1 for _ in iter_python_files(paths))

    baselined = 0
    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline PATH",
                  file=sys.stderr)
            return EXIT_ERROR
        count = Baseline.write(args.baseline, findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.baseline}")
        return EXIT_CLEAN
    if args.baseline and os.path.exists(args.baseline):
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return EXIT_ERROR
        findings, grandfathered = baseline.split(findings)
        baselined = len(grandfathered)

    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, files_checked, baselined))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "san":
        # ``python -m repro.lint san``: the combined simsan gate — static
        # interprocedural scan plus a sanitized smoke simulation.
        from repro.san.cli import main as san_main
        return san_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _cmd_list_rules()
    if args.determinism:
        return _cmd_determinism(args)
    return _cmd_lint(args)
