"""Lightweight set-type inference for SIM103.

This is not a type checker: it answers exactly one question — "could this
expression be a ``set``/``frozenset``?" — with just enough propagation to
catch the bug class that bit this repo (PR 1's ``storage/locks.py``: lock
release iterated a ``set``, so wake-up order followed ``PYTHONHASHSEED``).

What it tracks:

- set/dict literals, comprehensions, and ``set()``/``frozenset()``/``dict()``
  calls;
- annotations, including nested ones (``dict[str, dict[Any, set]]``), on
  locals, parameters, class-level fields, and ``self.attr`` assignments;
- propagation through dict access — ``d[k]``, ``d.get(k, default)``,
  ``d.pop(k, default)``, ``d.setdefault(k, v)`` — and through set-returning
  set methods (``union``, ``intersection``, ...);
- ``for`` target binding (``for bucket in d.values(): ...``).

Everything else is :data:`UNKNOWN`, which never flags. False negatives are
acceptable (the ``--determinism`` harness is the dynamic backstop); false
positives should be rare enough that a pragma with a justification is
reasonable.
"""

from __future__ import annotations

import ast
import typing
from dataclasses import dataclass


@dataclass(frozen=True)
class TypeInfo:
    """``kind`` is ``"set"``, ``"dict"`` or ``"other"``; ``value`` is the
    mapped-to type for dicts (None when unknown)."""

    kind: str
    value: "TypeInfo | None" = None


SET = TypeInfo("set")
OTHER = TypeInfo("other")
UNKNOWN: TypeInfo | None = None


def dict_of(value: TypeInfo | None) -> TypeInfo:
    return TypeInfo("dict", value)


def is_set(info: TypeInfo | None) -> bool:
    return info is not None and info.kind == "set"


_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet",
                    "AbstractSet"}
_DICT_ANNOTATIONS = {"dict", "Dict", "defaultdict", "DefaultDict",
                     "OrderedDict", "Counter", "Mapping", "MutableMapping"}
#: set methods returning a new set
_SET_PRODUCERS = {"union", "intersection", "difference",
                  "symmetric_difference", "copy"}
#: dict methods returning a mapped value
_DICT_VALUE_METHODS = {"get", "pop", "setdefault"}


def _tail(node: ast.expr) -> str | None:
    """Last identifier of a Name/Attribute chain (``typing.Set`` -> ``Set``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def parse_annotation(node: ast.expr | None) -> TypeInfo | None:
    """Interpret an annotation AST as a :class:`TypeInfo`."""
    if node is None:
        return UNKNOWN
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return UNKNOWN
    if isinstance(node, (ast.Name, ast.Attribute)):
        tail = _tail(node)
        if tail in _SET_ANNOTATIONS:
            return SET
        if tail in _DICT_ANNOTATIONS:
            return dict_of(UNKNOWN)
        return UNKNOWN
    if isinstance(node, ast.Subscript):
        tail = _tail(node.value)
        if tail in _SET_ANNOTATIONS:
            return SET
        if tail in _DICT_ANNOTATIONS:
            slice_node = node.slice
            if isinstance(slice_node, ast.Tuple) and len(slice_node.elts) >= 2:
                return dict_of(parse_annotation(slice_node.elts[-1]))
            return dict_of(UNKNOWN)
        if tail == "Optional":
            return parse_annotation(node.slice)
        return UNKNOWN
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # X | None unions: the non-None side decides.
        left = parse_annotation(node.left)
        return left if left is not None else parse_annotation(node.right)
    return UNKNOWN


class Scope:
    """Name -> TypeInfo bindings for one function (plus ``self.attr``)."""

    def __init__(self, attrs: dict[str, TypeInfo] | None = None):
        self.names: dict[str, TypeInfo] = {}
        #: ``self.<attr>`` types, harvested from the enclosing class.
        self.attrs: dict[str, TypeInfo] = dict(attrs or {})

    def bind(self, name: str, info: TypeInfo | None) -> None:
        if info is not None:
            self.names[name] = info

    def infer(self, node: ast.expr) -> TypeInfo | None:
        """Best-effort type of ``node`` under this scope."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return SET
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return dict_of(UNKNOWN)
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.attrs.get(node.attr)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            container = self.infer(node.value)
            if container is not None and container.kind == "dict":
                return container.value
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            # ``d.get(k) or ()``: any set-typed operand taints the result.
            for operand in node.values:
                info = self.infer(operand)
                if info is not None:
                    return info
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            return self.infer(node.body) or self.infer(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.infer(node.value)
        return UNKNOWN

    def _infer_call(self, node: ast.Call) -> TypeInfo | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return SET
            if func.id in ("dict", "defaultdict", "OrderedDict", "Counter"):
                return dict_of(UNKNOWN)
            if func.id in ("sorted", "list", "tuple"):
                return OTHER
            return UNKNOWN
        if isinstance(func, ast.Attribute):
            base = self.infer(func.value)
            if is_set(base) and func.attr in _SET_PRODUCERS:
                return SET
            if (base is not None and base.kind == "dict"
                    and func.attr in _DICT_VALUE_METHODS):
                return base.value
            return UNKNOWN
        return UNKNOWN

    def element_type(self, iterable: ast.expr) -> TypeInfo | None:
        """Type of the items produced by iterating ``iterable`` (used to
        bind ``for`` targets, e.g. ``for bucket in d.values()``)."""
        if isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Attribute):
            base = self.infer(iterable.func.value)
            if base is not None and base.kind == "dict":
                if iterable.func.attr == "values":
                    return base.value
        return UNKNOWN

    def bind_for_target(self, target: ast.expr, iterable: ast.expr) -> None:
        element = self.element_type(iterable)
        if element is None:
            return
        if isinstance(target, ast.Name):
            self.bind(target.id, element)
        elif isinstance(target, ast.Tuple) and \
                isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Attribute) and \
                iterable.func.attr == "items" and len(target.elts) == 2:
            base = self.infer(iterable.func.value)
            if base is not None and base.kind == "dict" and \
                    isinstance(target.elts[1], ast.Name):
                self.bind(target.elts[1].id, base.value)


# ----------------------------------------------------------------------
# Scope construction
# ----------------------------------------------------------------------
def class_attr_types(cls: ast.ClassDef) -> dict[str, TypeInfo]:
    """``self.attr`` types for a class: class-level annotations (dataclass
    fields included) plus annotated/inferable assignments in any method."""
    attrs: dict[str, TypeInfo] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info = parse_annotation(stmt.annotation)
            if info is not None:
                attrs[stmt.target.id] = info
    for node in ast.walk(cls):
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Attribute) and \
                isinstance(node.target.value, ast.Name) and \
                node.target.value.id == "self":
            info = parse_annotation(node.annotation)
            if info is not None:
                attrs[node.target.attr] = info
        elif isinstance(node, ast.Assign) and node.targets:
            target = node.targets[0]
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and \
                    target.attr not in attrs:
                info = Scope().infer(node.value)
                if info is not None:
                    attrs[target.attr] = info
    return attrs


def function_scope(func: ast.FunctionDef | ast.AsyncFunctionDef,
                   attrs: dict[str, TypeInfo] | None = None) -> Scope:
    """Scope for one function: parameter annotations, then assignments and
    ``for`` bindings collected in source order (a later rebinding to a
    non-container type clears the name)."""
    scope = Scope(attrs)
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        info = parse_annotation(arg.annotation)
        if info is not None:
            scope.bind(arg.arg, info)
    _collect_bindings(scope, func)
    return scope


def module_scope(tree: ast.Module) -> Scope:
    """Scope for module-level code (top-level assignments and loops)."""
    scope = Scope()
    _collect_bindings(scope, tree)
    return scope


def _collect_bindings(scope: Scope, root: ast.AST) -> None:
    for node in _walk_function_body(root):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            info = parse_annotation(node.annotation)
            if info is None and node.value is not None:
                info = scope.infer(node.value)
            scope.bind(node.target.id, info)
        elif isinstance(node, ast.Assign):
            info = scope.infer(node.value)
            if info is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scope.bind(target.id, info)
        elif isinstance(node, ast.NamedExpr) and \
                isinstance(node.target, ast.Name):
            scope.bind(node.target.id, scope.infer(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            scope.bind_for_target(node.target, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                scope.bind_for_target(comp.target, comp.iter)


def _walk_function_body(func: ast.AST) -> typing.Iterator[ast.AST]:
    """Walk a function's own statements, not nested function/class bodies."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack[:0] = list(ast.iter_child_nodes(node))
