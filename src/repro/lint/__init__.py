"""simlint: determinism & sim-safety static analysis for the simulator.

The whole reproduction rests on bit-for-bit deterministic simulation;
this package is the gate that keeps it that way. It ships:

- an AST-based analyzer (stdlib ``ast`` only) with a rule registry
  (:mod:`repro.lint.rules`), per-module rules SIM101–SIM106, SIM111
  and SIM112 (:mod:`repro.lint.visitors`), four interprocedural project rules
  SIM107–SIM110 (:mod:`repro.lint.interproc` — lock-order cycles,
  mutate-after-send aliasing, yield-while-locked, shared module state),
  per-line pragma suppressions and a findings baseline
  (:mod:`repro.lint.pragmas`), and text/JSON reporters
  (:mod:`repro.lint.reporters`);
- a dynamic cross-check (:mod:`repro.lint.determinism`) that replays a
  traced smoke simulation under distinct ``PYTHONHASHSEED`` values and
  compares ``repro.obs`` trace digests;
- the simsan gate (``san`` subcommand, :mod:`repro.san.cli`): static
  scan plus a smoke simulation under the :mod:`repro.san` runtime
  sanitizer (wait-for-graph deadlock detection, payload fingerprints).

CLI::

    python -m repro.lint src                  # static analysis, exit 1 on findings
    python -m repro.lint src --format json
    python -m repro.lint --list-rules
    python -m repro.lint --determinism --seeds 3
    python -m repro.lint san --json simsan-findings.json

Suppress a deliberate finding with a justified line pragma::

    started = time.time()  # host-side progress timer  # simlint: ignore[SIM101]
"""

from repro.lint.pragmas import Baseline, Suppressions, parse_pragmas
from repro.lint.rules import (
    REGISTRY,
    Finding,
    Module,
    Project,
    ProjectRule,
    Rule,
    default_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "Finding",
    "Module",
    "Project",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "Suppressions",
    "default_rules",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
    "register",
    "render_json",
    "render_text",
]
