"""simsan's static half: interprocedural lock-order & aliasing analysis.

These are :class:`~repro.lint.rules.ProjectRule`\\ s — they see every parsed
module of a run at once, build a call graph, and propagate *effect
summaries* (lock acquisitions, sim-event yields, parameter mutations)
through resolved calls. Four rules ride on the shared index:

========  ==========================================================
SIM107    inconsistent lock acquisition order between two code paths
          — the classic AB/BA deadlock shape, detected as a cycle in
          the project-wide acquired-while-holding graph
SIM108    an object aliased into a ``send()``/``append_redo()``/
          ``reply()`` payload and mutated afterwards in the same
          function or a callee — what ships to a geo-replica is no
          longer what the sender committed
SIM109    ``yield`` of a sim event while holding a ``LockTable`` lock
          outside the commit path — the lock is held across an
          arbitrary simulated wait, starving every contender
SIM110    mutable module-level state reachable from more than one sim
          process and mutated without any lock — cross-process shared
          state whose interleaving is invisible at any call site
========  ==========================================================

Approximations (all deliberately conservative, documented in DESIGN.md):

- Calls resolve to same-module top-level functions, ``self.`` methods of
  the enclosing class, and imported module functions. Everything else is
  opaque (no effects assumed except that an unresolved ``yield from``
  waits).
- Lock identity is a static token: ``table:<literal>`` when the table
  argument is a string constant, else the argument's source text — two
  dynamic acquisitions through the same expression never form an order
  edge, so loops over dynamic keys don't self-report.
- SIM108 tracks *local names* in textual order; rebinding a name kills
  its alias. ``self``/``cls`` attribute state is out of scope.
- SIM109 exempts functions whose qualified name matches the commit path
  (``commit|prepare|abort|2pc``): holding row locks across the commit
  protocol's replication waits is the paper's design, not a bug.
"""

from __future__ import annotations

import ast
import re
import typing
from dataclasses import dataclass

from repro.lint.rules import Finding, Module, Project, ProjectRule, register
from repro.lint.typeinfo import _walk_function_body
from repro.lint.visitors import import_map, is_generator_function

_COMMIT_PATH_RE = re.compile(r"commit|prepare|abort|2pc", re.IGNORECASE)
_LOCK_HINT = "lock"
_SEND_ATTRS = frozenset({"reply", "append_redo"})
_SEND_RECEIVER_HINTS = ("net", "link", "chan", "sock", "bus", "endpoint",
                        "conn", "transport")
_WAL_HINTS = ("wal", "redo")
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse",
})
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})
#: Caps keeping the analysis linear on adversarial inputs.
_TRACE_CAP = 256
_SEQ_CAP = 64


def _text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return ""


def _is_lockish(receiver: ast.expr) -> bool:
    return _LOCK_HINT in _text(receiver).lower()


def _is_acquire(call: ast.Call) -> bool:
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr == "acquire"
            and _is_lockish(call.func.value))


def _is_release_all(call: ast.Call) -> bool:
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr == "release_all"
            and _is_lockish(call.func.value))


def _is_send(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _SEND_ATTRS:
        return True
    receiver = _text(func.value).lower()
    if func.attr == "send":
        # ``generator.send(value)`` is the generator protocol, not the
        # network — require a transport-ish receiver.
        return any(hint in receiver for hint in _SEND_RECEIVER_HINTS)
    if func.attr == "append":
        return any(hint in receiver for hint in _WAL_HINTS)
    return False


def _lock_token(call: ast.Call) -> str:
    """Static identity of the lock being acquired.

    ``locks.acquire(txid, "warehouse", key)`` -> ``table:warehouse``;
    a dynamic table argument falls back to its source text, so repeated
    acquisitions through one expression share a token (no false edges).
    """
    if len(call.args) >= 2:
        table = call.args[1]
        if isinstance(table, ast.Constant) and isinstance(table.value, str):
            return f"table:{table.value}"
        return _text(table) or "<dynamic>"
    if call.args:
        return _text(call.args[0]) or "<dynamic>"
    return _text(call.func.value) or "<dynamic>"


#: Calls known to produce a fresh container: their arguments are copied,
#: not aliased, so they break the taint chain in SIM108.
_COPY_CALLS = frozenset({"list", "tuple", "dict", "set", "frozenset",
                         "sorted", "bytes", "copy", "deepcopy"})


def _expr_names(expr: ast.expr) -> tuple[str, ...]:
    """Local names an expression's value may alias.

    Call targets and ``self``/``cls`` are excluded, and the argument
    subtrees of known copy constructors (``list(rows)``, ``rows.copy()``,
    ``deepcopy(rows)``) are skipped — a fresh container does not alias
    what it was built from.
    """
    names: list[str] = []
    seen: set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name in _COPY_CALLS:
                return
            for arg in node.args:
                visit(arg)
            for keyword in node.keywords:
                visit(keyword.value)
            if isinstance(func, ast.Attribute):
                visit(func.value)
            return
        if isinstance(node, ast.Name):
            if node.id not in ("self", "cls") and node.id not in seen:
                seen.add(node.id)
                names.append(node.id)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(expr)
    return tuple(names)


def _payload_names(call: ast.Call) -> tuple[str, ...]:
    """Local names aliased into a send-like call's arguments."""
    names: list[str] = []
    seen: set[str] = set()
    for arg in [*call.args, *[kw.value for kw in call.keywords]]:
        for name in _expr_names(arg):
            if name not in seen:
                seen.add(name)
                names.append(name)
    return tuple(names)


def _mutation_root(target: ast.expr) -> str | None:
    """Root local name of a mutating assignment target (``x[k]``,
    ``x.attr``, nested chains); None when the root is not a plain local."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name) and node.id not in ("self", "cls"):
        return node.id
    return None


# ----------------------------------------------------------------------
# Project index: functions, call resolution, effect events
# ----------------------------------------------------------------------
@dataclass
class FunctionRecord:
    """One function (possibly nested / a method) in the project."""

    qname: str                  #: ``module:Qual.Path.name``
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None      #: enclosing class, for ``self.`` resolution
    params: tuple[str, ...]
    is_process: bool            #: a sim process: yields or is named ``g_*``

    @property
    def display(self) -> str:
        return self.qname.replace(":", ":", 1)

    @property
    def short(self) -> str:
        return self.qname.split(":", 1)[1]

    @property
    def is_commit_path(self) -> bool:
        return bool(_COMMIT_PATH_RE.search(self.qname))


class ProjectIndex:
    """Call-graph index plus memoized effect summaries for one project."""

    def __init__(self, modules: list[Module]):
        self.modules = modules
        self.functions: dict[str, FunctionRecord] = {}
        self.top_level: dict[tuple[str, str], str] = {}
        self.methods: dict[tuple[str, str, str], str] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self._local_events: dict[str, list[tuple]] = {}
        self._traces: dict[str, tuple] = {}
        self._mutates: dict[str, frozenset[str]] = {}
        for module in modules:
            self._index_module(module)

    @classmethod
    def for_project(cls, project: Project) -> "ProjectIndex":
        index = project.cache.get("interproc.index")
        if index is None:
            index = cls(project.modules)
            project.cache["interproc.index"] = index
        return index

    # -- construction ---------------------------------------------------
    def _index_module(self, module: Module) -> None:
        self.imports[module.name] = import_map(module.tree)

        def visit(node: ast.AST, path: tuple[str, ...],
                  cls: ast.ClassDef | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = path + (child.name,)
                    self._add_function(module, child, qual, cls)
                    visit(child, qual, cls)
                elif isinstance(child, ast.ClassDef):
                    visit(child, path + (child.name,), child)
                else:
                    visit(child, path, cls)

        visit(module.tree, (), None)

    def _add_function(self, module: Module,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      qual: tuple[str, ...], cls: ast.ClassDef | None) -> None:
        qname = f"{module.name}:{'.'.join(qual)}"
        if qname in self.functions:  # redefinition: last one wins
            qname = f"{qname}@{node.lineno}"
        args = node.args
        params = tuple(arg.arg for arg in
                       (*args.posonlyargs, *args.args, *args.kwonlyargs))
        record = FunctionRecord(
            qname=qname, module=module, node=node,
            class_name=cls.name if cls is not None else None,
            params=params,
            is_process=(is_generator_function(node)
                        or node.name.startswith("g_")))
        self.functions[qname] = record
        if len(qual) == 1:
            self.top_level.setdefault((module.name, node.name), qname)
        if cls is not None and len(qual) >= 2 and qual[-2] == cls.name:
            self.methods.setdefault((module.name, cls.name, node.name), qname)

    # -- call resolution ------------------------------------------------
    def resolve(self, record: FunctionRecord, call: ast.Call) -> str | None:
        func = call.func
        mod = record.module.name
        imports = self.imports.get(mod, {})
        if isinstance(func, ast.Name):
            qname = self.top_level.get((mod, func.id))
            if qname is not None:
                return qname
            origin = imports.get(func.id)
            if origin and "." in origin:
                omod, _, oname = origin.rpartition(".")
                return self.top_level.get((omod, oname))
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base == "self" and record.class_name is not None:
                return self.methods.get((mod, record.class_name, func.attr))
            origin = imports.get(base)
            if origin is not None:
                return self.top_level.get((origin, func.attr))
        return None

    # -- local effect events --------------------------------------------
    def local_events(self, qname: str) -> list[tuple]:
        """Pre-order (≈ textual order) effect events of one function body.

        Event kinds: ``("acq", token, node)``, ``("relall", node)``,
        ``("yield", node)``, ``("send", names, node)``,
        ``("call", callee_qname, call_node, is_method_call)``,
        ``("mut", name, node)``, ``("kill", name, node, value_names)``
        where ``value_names`` are the locals the assigned value aliases.
        """
        events = self._local_events.get(qname)
        if events is not None:
            return events
        record = self.functions[qname]
        events = []
        consumed: set[int] = set()
        for node in _walk_function_body(record.node):
            if isinstance(node, ast.Yield):
                value = node.value
                if isinstance(value, ast.Call) and _is_acquire(value):
                    consumed.add(id(value))
                    events.append(("acq", _lock_token(value), node))
                else:
                    events.append(("yield", node))
            elif isinstance(node, ast.YieldFrom):
                value = node.value
                if isinstance(value, ast.Call):
                    consumed.add(id(value))
                    callee = self.resolve(record, value)
                    if callee is not None:
                        self._append_call(events, record, callee, value)
                    else:
                        # Unknown generator: assume it waits on sim events.
                        events.append(("yield", node))
                else:
                    events.append(("yield", node))
            elif isinstance(node, ast.Call) and id(node) not in consumed:
                if _is_acquire(node):
                    events.append(("acq", _lock_token(node), node))
                    continue
                if _is_release_all(node):
                    events.append(("relall", node))
                    continue
                if _is_send(node):
                    events.append(("send", _payload_names(node), node))
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id not in ("self", "cls")):
                    events.append(("mut", func.value.id, node))
                callee = self.resolve(record, node)
                if callee is not None:
                    self._append_call(events, record, callee, node)
            elif isinstance(node, ast.Assign):
                value_names = _expr_names(node.value)
                for target in node.targets:
                    self._target_events(events, target, node, value_names)
            elif isinstance(node, (ast.AnnAssign, ast.For, ast.AsyncFor)):
                source = node.value if isinstance(node, ast.AnnAssign) \
                    else node.iter
                value_names = _expr_names(source) if source is not None else ()
                self._target_events(events, node.target, node, value_names)
            elif isinstance(node, ast.AugAssign):
                # ``x += ...`` on a plain name is treated as a rebind (it
                # usually is, for the immutables that dominate); on a
                # subscript/attribute it mutates the container.
                if isinstance(node.target, ast.Name):
                    events.append(("kill", node.target.id, node, ()))
                else:
                    root = _mutation_root(node.target)
                    if root is not None:
                        events.append(("mut", root, node))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        events.append(("kill", target.id, node, ()))
                    else:
                        root = _mutation_root(target)
                        if root is not None:
                            events.append(("mut", root, node))
        self._local_events[qname] = events
        return events

    def _append_call(self, events: list, record: FunctionRecord,
                     callee: str, call: ast.Call) -> None:
        is_method = (isinstance(call.func, ast.Attribute)
                     and isinstance(call.func.value, ast.Name)
                     and call.func.value.id == "self")
        events.append(("call", callee, call, is_method))

    def _target_events(self, events: list, target: ast.expr, node: ast.AST,
                       value_names: tuple[str, ...] = ()) -> None:
        if isinstance(target, ast.Name):
            events.append(("kill", target.id, node, value_names))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target_events(events, element, node, value_names)
        elif isinstance(target, ast.Starred):
            self._target_events(events, target.value, node, value_names)
        else:
            root = _mutation_root(target)
            if root is not None:
                events.append(("mut", root, node))

    # -- flattened lock/yield traces (for SIM107 / SIM109) --------------
    def effect_trace(self, qname: str,
                     _visiting: frozenset[str] = frozenset()) -> tuple:
        """The function's lock/yield effects with resolved calls inlined.

        Entries: ``("acq", token, record, node)``, ``("relall",)``,
        ``("yield", record, node)``. Context-free and memoized; recursion
        returns an empty trace; capped at ``_TRACE_CAP`` entries.
        """
        cached = self._traces.get(qname)
        if cached is not None:
            return cached
        if qname in _visiting:
            return ()
        record = self.functions[qname]
        visiting = _visiting | {qname}
        trace: list[tuple] = []
        for event in self.local_events(qname):
            kind = event[0]
            if kind == "acq":
                trace.append(("acq", event[1], record, event[2]))
            elif kind == "relall":
                trace.append(("relall",))
            elif kind == "yield":
                trace.append(("yield", record, event[1]))
            elif kind == "call":
                trace.extend(self.effect_trace(event[1], visiting))
            if len(trace) >= _TRACE_CAP:
                del trace[_TRACE_CAP:]
                break
        result = tuple(trace)
        if qname not in _visiting:
            self._traces[qname] = result
        return result

    # -- parameter-mutation summaries (for SIM108) -----------------------
    def mutated_params(self, qname: str,
                       _visiting: frozenset[str] = frozenset()) -> frozenset[str]:
        """Parameter names this function mutates, directly or by passing
        them to a callee that mutates the corresponding parameter."""
        cached = self._mutates.get(qname)
        if cached is not None:
            return cached
        if qname in _visiting:
            return frozenset()
        record = self.functions[qname]
        params = set(record.params)
        visiting = _visiting | {qname}
        mutated: set[str] = set()
        for event in self.local_events(qname):
            kind = event[0]
            if kind == "mut" and event[1] in params:
                mutated.add(event[1])
            elif kind == "call":
                callee, call, is_method = event[1], event[2], event[3]
                callee_mutates = self.mutated_params(callee, visiting)
                if not callee_mutates:
                    continue
                for name in self._forwarded_mutations(
                        callee, call, is_method, callee_mutates):
                    if name in params:
                        mutated.add(name)
        result = frozenset(mutated)
        if qname not in _visiting:
            self._mutates[qname] = result
        return result

    def _forwarded_mutations(self, callee_qname: str, call: ast.Call,
                             is_method_call: bool,
                             callee_mutates: frozenset[str]
                             ) -> typing.Iterator[str]:
        """Caller-side names whose objects the callee mutates."""
        callee = self.functions[callee_qname]
        offset = 1 if (is_method_call and callee.class_name is not None
                       and callee.params and callee.params[0] == "self") else 0
        for position, arg in enumerate(call.args):
            if not isinstance(arg, ast.Name):
                continue
            index = position + offset
            if index < len(callee.params) and \
                    callee.params[index] in callee_mutates:
                yield arg.id
        for keyword in call.keywords:
            if keyword.arg and isinstance(keyword.value, ast.Name) and \
                    keyword.arg in callee_mutates:
                yield keyword.value.id


# ----------------------------------------------------------------------
# SIM107 — inconsistent lock acquisition order
# ----------------------------------------------------------------------
@register
class LockOrderRule(ProjectRule):
    code = "SIM107"
    name = "lock-order-cycle"
    description = ("Two code paths acquire the same pair of locks in "
                   "opposite orders — a potential AB/BA deadlock the lock "
                   "timeout only papers over.")

    def check_project(self, project: Project) -> typing.Iterator[Finding]:
        index = ProjectIndex.for_project(project)
        # token-a -> token-b edge when b is acquired while a is held, with
        # the first witness (root chain, location) that produced it.
        edges: dict[tuple[str, str], tuple] = {}
        for qname in sorted(index.functions):
            held: list[str] = []
            for event in index.effect_trace(qname):
                kind = event[0]
                if kind == "acq":
                    _, token, record, node = event
                    for prior in held:
                        if prior != token:
                            edges.setdefault(
                                (prior, token),
                                (qname, record.module, node))
                    if token not in held and len(held) < _SEQ_CAP:
                        held.append(token)
                elif kind == "relall":
                    held.clear()
        yield from self._cycle_findings(index, edges)

    def _cycle_findings(self, index: ProjectIndex,
                        edges: dict) -> typing.Iterator[Finding]:
        adjacency: dict[str, list[str]] = {}
        for (src, dst) in edges:
            adjacency.setdefault(src, []).append(dst)
        for neighbours in adjacency.values():
            neighbours.sort()
        reported: set[frozenset[str]] = set()
        for (src, dst) in sorted(edges):
            if (dst, src) not in edges and not self._reaches(adjacency, dst, src):
                continue
            cycle_tokens = frozenset(self._cycle_nodes(adjacency, src, dst))
            if cycle_tokens in reported:
                continue
            reported.add(cycle_tokens)
            root_a, module_a, node_a = edges[(src, dst)]
            back = (dst, src) if (dst, src) in edges else \
                min(edge for edge in edges
                    if edge[0] in cycle_tokens and edge[1] in cycle_tokens
                    and edge != (src, dst))
            root_b, module_b, node_b = edges[back]
            message = (
                f"lock acquisition order cycle: '{src}' then '{dst}' "
                f"(via {index.functions[root_a].short}, "
                f"{module_a.path}:{node_a.lineno}) but '{back[0]}' then "
                f"'{back[1]}' (via {index.functions[root_b].short}, "
                f"{module_b.path}:{node_b.lineno}) — two transactions "
                f"interleaving these paths deadlock until the lock timeout")
            yield self.finding(module_a, node_a, message)

    @staticmethod
    def _reaches(adjacency: dict, start: str, goal: str) -> bool:
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for neighbour in adjacency.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return False

    @staticmethod
    def _cycle_nodes(adjacency: dict, src: str, dst: str) -> list[str]:
        """Nodes on one cycle through edge src->dst (dst ... -> src)."""
        # BFS from dst back to src, tracking parents.
        parents: dict[str, str | None] = {dst: None}
        queue = [dst]
        while queue:
            node = queue.pop(0)
            if node == src:
                break
            for neighbour in adjacency.get(node, ()):
                if neighbour not in parents:
                    parents[neighbour] = node
                    queue.append(neighbour)
        nodes = [src]
        current = parents.get(src)
        while current is not None:
            nodes.append(current)
            current = parents[current]
        return nodes


# ----------------------------------------------------------------------
# SIM108 — mutation after send
# ----------------------------------------------------------------------
@register
class MutateAfterSendRule(ProjectRule):
    code = "SIM108"
    name = "mutate-after-send"
    description = ("An object aliased into a send()/append_redo()/reply() "
                   "payload is mutated after the call — the in-flight "
                   "message (and what a replica replays) silently changes.")

    def check_project(self, project: Project) -> typing.Iterator[Finding]:
        index = ProjectIndex.for_project(project)
        for qname in sorted(index.functions):
            record = index.functions[qname]
            aliased: dict[str, int] = {}
            alias_map: dict[str, tuple[str, ...]] = {}
            for event in index.local_events(qname):
                kind = event[0]
                if kind == "send":
                    # Taint the payload names plus everything they alias
                    # transitively (``payload = ("redo", rows)`` taints
                    # ``rows`` when ``payload`` ships).
                    stack = list(event[1])
                    tainted: set[str] = set()
                    while stack:
                        name = stack.pop()
                        if name in tainted:
                            continue
                        tainted.add(name)
                        stack.extend(alias_map.get(name, ()))
                    for name in sorted(tainted):
                        aliased.setdefault(name, event[2].lineno)
                elif kind == "kill":
                    aliased.pop(event[1], None)
                    alias_map[event[1]] = event[3]
                elif kind == "mut" and event[1] in aliased:
                    yield self.finding(
                        record.module, event[2],
                        f"'{event[1]}' was aliased into a send() payload at "
                        f"line {aliased[event[1]]} and is mutated here — "
                        f"the in-flight copy changes too; send a copy or "
                        f"mutate before sending")
                elif kind == "call":
                    callee, call, is_method = event[1], event[2], event[3]
                    mutates = index.mutated_params(callee)
                    if not mutates:
                        continue
                    for name in index._forwarded_mutations(
                            callee, call, is_method, mutates):
                        if name in aliased:
                            yield self.finding(
                                record.module, call,
                                f"'{name}' was aliased into a send() payload "
                                f"at line {aliased[name]} and "
                                f"'{index.functions[callee].short}' mutates "
                                f"it — the in-flight copy changes too")
                            break


# ----------------------------------------------------------------------
# SIM109 — yield while holding a lock outside the commit path
# ----------------------------------------------------------------------
@register
class YieldWhileLockedRule(ProjectRule):
    code = "SIM109"
    name = "yield-while-locked"
    description = ("A sim process yields an event (timeout, RPC, ...) while "
                   "holding a LockTable lock outside the commit path — the "
                   "row stays locked across an arbitrary simulated wait.")

    def check_project(self, project: Project) -> typing.Iterator[Finding]:
        index = ProjectIndex.for_project(project)
        seen: set[tuple[str, int]] = set()
        for qname in sorted(index.functions):
            root = index.functions[qname]
            if root.is_commit_path:
                continue
            held: list[tuple[str, FunctionRecord, ast.AST]] = []
            for event in index.effect_trace(qname):
                kind = event[0]
                if kind == "acq":
                    _, token, record, node = event
                    if all(token != h for h, _r, _n in held) and \
                            len(held) < _SEQ_CAP:
                        held.append((token, record, node))
                elif kind == "relall":
                    held.clear()
                elif kind == "yield" and held:
                    _, record, node = event
                    if record.is_commit_path:
                        continue
                    key = (record.module.path, node.lineno)
                    if key in seen:
                        continue
                    seen.add(key)
                    tokens = ", ".join(f"'{token}'" for token, _r, _n in held)
                    acquired = held[0]
                    yield self.finding(
                        record.module, node,
                        f"yields a sim event while holding lock(s) {tokens} "
                        f"(acquired at "
                        f"{acquired[1].module.path}:{acquired[2].lineno}, "
                        f"reached via {root.short}) outside the commit path "
                        f"— release before waiting or rename the path if it "
                        f"really is commit protocol")


# ----------------------------------------------------------------------
# SIM110 — shared mutable module-level state
# ----------------------------------------------------------------------
@register
class SharedMutableStateRule(ProjectRule):
    code = "SIM110"
    name = "shared-mutable-module-state"
    description = ("Mutable module-level state reachable from more than one "
                   "sim process and mutated without a lock — cross-process "
                   "shared state with invisible interleaving.")

    def check_project(self, project: Project) -> typing.Iterator[Finding]:
        index = ProjectIndex.for_project(project)
        bindings = self._module_level_mutables(project)
        if not bindings:
            return
        # Which functions reference / mutate each binding.
        references: dict[tuple[str, str], set[str]] = {}
        mutators: dict[tuple[str, str], set[str]] = {}
        for qname in sorted(index.functions):
            record = index.functions[qname]
            for binding in self._bindings_touched(index, record, bindings):
                key, mutated = binding
                references.setdefault(key, set()).add(qname)
                if mutated:
                    mutators.setdefault(key, set()).add(qname)
        # Sim processes reaching each referencing function.
        reach_cache: dict[str, frozenset[str]] = {}
        for key in sorted(bindings):
            touched = references.get(key, set())
            if not touched or key not in mutators:
                continue
            processes = set()
            for qname in sorted(index.functions):
                record = index.functions[qname]
                if not record.is_process:
                    continue
                if touched & self._reachable(index, qname, reach_cache):
                    processes.add(qname)
            if len(processes) < 2:
                continue
            module_name, var = key
            module, node = bindings[key]
            names = ", ".join(sorted(index.functions[q].short
                                     for q in sorted(processes))[:4])
            mutator_names = ", ".join(sorted(index.functions[q].short
                                             for q in sorted(mutators[key]))[:3])
            yield self.finding(
                module, node,
                f"module-level mutable '{var}' is reachable from "
                f"{len(processes)} sim processes ({names}) and mutated "
                f"({mutator_names}) without a lock — interleaving at yields "
                f"makes its state schedule-dependent; pass it explicitly or "
                f"make it per-process")

    @staticmethod
    def _module_level_mutables(project: Project) -> dict:
        bindings: dict[tuple[str, str], tuple[Module, ast.AST]] = {}
        for module in project.modules:
            for stmt in module.tree.body:
                targets: list[ast.expr] = []
                value = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None or not _is_mutable_value(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        bindings[(module.name, target.id)] = (module, stmt)
        return bindings

    def _bindings_touched(self, index: ProjectIndex, record: FunctionRecord,
                          bindings: dict) -> typing.Iterator[tuple]:
        """(key, mutated) for each module-level binding this function
        touches, import-aware, skipping locally shadowed names."""
        imports = index.imports.get(record.module.name, {})
        local_names: dict[str, tuple[str, str]] = {}
        for key in bindings:
            module_name, var = key
            if module_name == record.module.name:
                local_names.setdefault(var, key)
        for local, origin in imports.items():
            if "." in origin:
                omod, _, oname = origin.rpartition(".")
                if (omod, oname) in bindings:
                    local_names.setdefault(local, (omod, oname))
        if not local_names:
            return
        shadowed = set(record.params)
        declared_global: set[str] = set()
        mutated: set[str] = set()
        referenced: set[str] = set()
        for node in _walk_function_body(record.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for event in index.local_events(record.qname):
            kind = event[0]
            if kind == "kill" and event[1] not in declared_global:
                shadowed.add(event[1])
            elif kind == "kill":
                mutated.add(event[1])  # global rebind counts as mutation
            elif kind == "mut":
                mutated.add(event[1])
        for node in _walk_function_body(record.node):
            if isinstance(node, ast.Name) and node.id in local_names:
                referenced.add(node.id)
        for name in sorted(referenced):
            if name in shadowed and name not in declared_global:
                continue
            yield local_names[name], name in mutated

    @staticmethod
    def _reachable(index: ProjectIndex, qname: str,
                   cache: dict) -> frozenset[str]:
        cached = cache.get(qname)
        if cached is not None:
            return cached
        seen = {qname}
        stack = [qname]
        while stack:
            current = stack.pop()
            for event in index.local_events(current):
                if event[0] == "call" and event[1] not in seen:
                    seen.add(event[1])
                    stack.append(event[1])
        result = frozenset(seen)
        cache[qname] = result
        return result


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
        elif isinstance(value.func, ast.Attribute):
            name = value.func.attr
        return name in _MUTABLE_FACTORIES
    return False
