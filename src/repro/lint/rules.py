"""The simlint rule framework: findings, the rule registry, and the engine.

A *rule* inspects one parsed module and yields :class:`Finding`s. Rules are
plain classes registered with :func:`register`; the registry is what the CLI
enumerates, what ``--select``/``--ignore`` filter, and what third-party
extensions (in-repo tooling) can append to.

The engine (:func:`lint_source` / :func:`lint_paths`) parses each file once,
builds a shared :class:`Module` context, runs every active rule, then drops
findings suppressed by a ``# simlint: ignore[...]`` pragma or a baseline
entry (see :mod:`repro.lint.pragmas`).
"""

from __future__ import annotations

import ast
import os
import typing
from dataclasses import dataclass, field

from repro.lint.pragmas import Suppressions, parse_pragmas


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str       #: rule code, e.g. ``"SIM103"``
    path: str       #: file path as given to the engine
    line: int       #: 1-based line number
    col: int        #: 0-based column offset
    message: str    #: human-readable explanation with a fix hint

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def fingerprint(self) -> tuple[str, str, str]:
        """Location-stable identity used by baselines: line numbers drift
        as files are edited, so the baseline matches on (rule, path,
        message) instead."""
        return (self.rule, self.path.replace(os.sep, "/"), self.message)

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path.replace(os.sep, "/"),
                "line": self.line, "col": self.col, "message": self.message}


@dataclass
class Module:
    """Everything a rule needs about one source file."""

    path: str
    source: str
    tree: ast.Module
    name: str                       #: dotted module name, e.g. ``repro.storage.heap``
    suppressions: Suppressions = field(default_factory=Suppressions)

    @classmethod
    def from_source(cls, source: str, path: str,
                    name: str | None = None) -> "Module":
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   name=name if name is not None else module_name_for(path),
                   suppressions=parse_pragmas(source))


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path (``src/`` layout aware).

    ``src/repro/storage/heap.py`` -> ``repro.storage.heap``;
    paths outside a recognisable package root fall back to the stem.
    """
    normalized = path.replace(os.sep, "/")
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("src", "lib"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
            break
    else:
        # Keep only the trailing run that looks like package segments.
        for i in range(len(parts) - 1, -1, -1):
            if not parts[i].isidentifier():
                parts = parts[i + 1:]
                break
    return ".".join(parts) if parts else normalized


class Rule:
    """Base class for simlint rules.

    Subclasses set ``code`` / ``name`` / ``description`` and implement
    :meth:`check`. One instance is created per lint run (not per file), so
    rules may carry configuration (e.g. module allowlists) but must not
    accumulate per-file state across :meth:`check` calls.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: Module) -> typing.Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(rule=self.code, path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), message=message)


@dataclass
class Project:
    """Every parsed module of one lint run, shared by project rules.

    ``cache`` lets interprocedural rules share expensive artifacts (the
    call-graph index, function summaries) within a single run instead of
    rebuilding them per rule.
    """

    modules: list[Module]
    cache: dict = field(default_factory=dict)

    def module_by_name(self, name: str) -> Module | None:
        for module in self.modules:
            if module.name == name:
                return module
        return None


class ProjectRule(Rule):
    """A rule that analyses the whole project at once.

    Per-module :meth:`check` is a no-op; the engine calls
    :meth:`check_project` exactly once per run with every parsed module.
    Findings still carry a (path, line) location, so per-line pragmas and
    baselines apply unchanged.
    """

    def check(self, module: Module) -> typing.Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> typing.Iterator[Finding]:
        raise NotImplementedError


#: code -> rule class. Populated by :func:`register` (the built-in rules in
#: :mod:`repro.lint.visitors` register on import).
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (last wins per code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    REGISTRY[cls.code] = cls
    return cls


def default_rules(select: typing.Collection[str] | None = None,
                  ignore: typing.Collection[str] = ()) -> list[Rule]:
    """Instantiate the registered rules, optionally filtered by code."""
    # Import for the side effect of registering the built-in rules.
    from repro.lint import interproc, visitors  # noqa: F401
    codes = sorted(REGISTRY)
    if select:
        unknown = set(select) - set(codes)
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        codes = [code for code in codes if code in set(select)]
    codes = [code for code in codes if code not in set(ignore)]
    return [REGISTRY[code]() for code in codes]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _run_rules(modules: list[Module],
               rules: typing.Sequence[Rule]) -> list[Finding]:
    """Run per-module rules on each module and project rules once, then
    drop pragma-suppressed findings. Unsorted — callers sort exactly once."""
    module_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    findings: list[Finding] = []
    for module in modules:
        for rule in module_rules:
            findings.extend(rule.check(module))
    if project_rules:
        project = Project(modules)
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    suppressions = {module.path: module.suppressions for module in modules}
    kept = []
    for finding in findings:
        covered = suppressions.get(finding.path)
        if covered is not None and covered.covers(finding.line, finding.rule):
            continue
        kept.append(finding)
    return kept


def lint_source(source: str, path: str = "<string>",
                rules: typing.Sequence[Rule] | None = None,
                module_name: str | None = None) -> list[Finding]:
    """Lint one source string; returns pragma-filtered, sorted findings.

    A syntax error becomes a single ``SIM100`` finding rather than an
    exception, so one broken file cannot hide findings in the rest of a run.
    Project rules see a single-module project, so the interprocedural rules
    still work on self-contained fixtures.
    """
    if rules is None:
        rules = default_rules()
    try:
        module = Module.from_source(source, path, name=module_name)
    except SyntaxError as exc:
        return [Finding(rule="SIM100", path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}")]
    findings = _run_rules([module], rules)
    findings.sort(key=lambda finding: finding.sort_key)
    return findings


def iter_python_files(paths: typing.Iterable[str]) -> typing.Iterator[str]:
    """Expand files/directories into a deterministic .py file list.

    Deduplicated by ``os.path.realpath``: a file passed both directly and
    via a parent directory (or reached twice through symlinks) is yielded
    once, under the first spelling seen.
    """
    seen: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(name for name in dirnames
                                     if name != "__pycache__"
                                     and not name.startswith("."))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        filepath = os.path.join(dirpath, filename)
                        real = os.path.realpath(filepath)
                        if real not in seen:
                            seen.add(real)
                            yield filepath
        else:
            real = os.path.realpath(path)
            if real not in seen:
                seen.add(real)
                yield path


def lint_paths(paths: typing.Iterable[str],
               rules: typing.Sequence[Rule] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` as one project.

    All files parse first so project rules (SIM107–SIM110) see the whole
    call graph; findings are collected unsorted and sorted exactly once at
    the end (``lint_source`` used to sort per file *and* this function
    re-sorted the concatenation).
    """
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    modules: list[Module] = []
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(Finding(rule="SIM100", path=filepath, line=1,
                                    col=0, message=f"cannot read file: {exc}"))
            continue
        try:
            modules.append(Module.from_source(source, filepath))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="SIM100", path=filepath, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
    findings.extend(_run_rules(modules, rules))
    findings.sort(key=lambda finding: finding.sort_key)
    return findings
