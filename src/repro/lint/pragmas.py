"""Per-line pragma suppressions and the findings baseline.

Pragmas
    A finding is suppressed by a comment on its own line::

        for key in bucket:  # simlint: ignore[SIM103]
        started = time.time()  # simlint: ignore[SIM101,SIM105]
        anything_goes()  # simlint: ignore

    The bare form suppresses every rule on that line; the bracketed form
    only the listed codes. ``# simlint: skip-file`` anywhere in the file
    suppresses the whole file (use sparingly — prefer line pragmas).

Baseline
    A JSON file of grandfathered findings. Matching is by
    :meth:`~repro.lint.rules.Finding.fingerprint` — ``(rule, path,
    message)`` — so entries survive unrelated edits that shift line
    numbers. ``python -m repro.lint --write-baseline`` regenerates it;
    an empty or absent baseline means every finding fails the run.
"""

from __future__ import annotations

import json
import re
import typing
from dataclasses import dataclass, field

#: ``# simlint: ignore`` or ``# simlint: ignore[SIM101, SIM103]``
_PRAGMA_RE = re.compile(
    r"#\s*simlint\s*:\s*ignore(?:\s*\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint\s*:\s*skip-file\b")


@dataclass
class Suppressions:
    """Parsed pragma state for one file."""

    #: line number -> set of suppressed codes; empty set = all rules.
    lines: dict[int, set[str]] = field(default_factory=dict)
    skip_file: bool = False

    def covers(self, line: int, code: str) -> bool:
        if self.skip_file:
            return True
        codes = self.lines.get(line)
        if codes is None:
            return False
        return not codes or code in codes


def parse_pragmas(source: str) -> Suppressions:
    suppressions = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "simlint" not in text:
            continue
        if _SKIP_FILE_RE.search(text):
            suppressions.skip_file = True
        match = _PRAGMA_RE.search(text)
        if match:
            raw = match.group("codes")
            codes = {code.strip().upper() for code in raw.split(",")
                     if code.strip()} if raw is not None else set()
            suppressions.lines.setdefault(lineno, set()).update(codes)
            if raw is None:
                suppressions.lines[lineno] = set()  # bare form: all rules
    return suppressions


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
BASELINE_VERSION = 1


class Baseline:
    """Grandfathered findings, keyed by fingerprint."""

    def __init__(self, fingerprints: typing.Iterable[tuple] = ()):
        self._fingerprints = {tuple(fp) for fp in fingerprints}

    def __len__(self) -> int:
        return len(self._fingerprints)

    def covers(self, finding) -> bool:
        return finding.fingerprint() in self._fingerprints

    def split(self, findings: typing.Sequence) -> tuple[list, list]:
        """Partition into (new, grandfathered) findings."""
        new, old = [], []
        for finding in findings:
            (old if self.covers(finding) else new).append(finding)
        return new, old

    # -- persistence ----------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})")
        return cls((entry["rule"], entry["path"], entry["message"])
                   for entry in payload.get("findings", []))

    @staticmethod
    def write(path: str, findings: typing.Sequence) -> int:
        """Write ``findings`` as the new baseline; returns the entry count.

        Entries are deduplicated by fingerprint and sorted, so the file
        diffs cleanly under version control.
        """
        fingerprints = sorted({finding.fingerprint() for finding in findings})
        payload = {
            "version": BASELINE_VERSION,
            "findings": [{"rule": rule, "path": fp_path, "message": message}
                         for rule, fp_path, message in fingerprints],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return len(fingerprints)
