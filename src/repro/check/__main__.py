"""``python -m repro.check`` — chaos runs with consistency checking.

Subcommands:

- ``run`` — drive the bank workload under a named nemesis across seeds,
  check every recorded history, optionally write a JSON artifact, and
  exit nonzero if any checker found a violation.
- ``list`` — show the available nemesis schedules.

Examples::

    python -m repro.check run --nemesis default --seeds 3
    python -m repro.check run --nemesis partitions --seeds 5 \\
        --json chaos.json --fail-on-violation
    python -m repro.check list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos import available_nemeses
from repro.check.runner import (
    DEFAULT_DURATION_S,
    DEFAULT_WARMUP_S,
    run_many,
)


def _cmd_run(args: argparse.Namespace) -> int:
    seeds = [args.seed_base + index for index in range(args.seeds)]
    result = run_many(seeds, nemesis=args.nemesis,
                      duration_s=args.duration, warmup_s=args.warmup,
                      terminals=args.terminals, accounts=args.accounts,
                      echo=print)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"artifact written to {args.json}")
    if result["ok"]:
        print(f"OK: nemesis {args.nemesis!r} clean over "
              f"{len(seeds)} seed(s)")
        return 0
    print(f"FAIL: {result['violation_count']} violation(s) under "
          f"nemesis {args.nemesis!r}")
    for run in result["runs"]:
        for violation in run["violations"]:
            print(f"  seed {run['seed']} [{violation['checker']}] "
                  f"{violation['message']}")
    return 1


def _cmd_list(args: argparse.Namespace) -> int:
    for name in available_nemeses():
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Nemesis fault injection + Jepsen-style checking")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run the bank workload under a nemesis and check it")
    run_parser.add_argument("--nemesis", default="default",
                            choices=available_nemeses())
    run_parser.add_argument("--seeds", type=int, default=3,
                            help="number of seeds to sweep")
    run_parser.add_argument("--seed-base", type=int, default=0,
                            help="first seed value")
    run_parser.add_argument("--duration", type=float,
                            default=DEFAULT_DURATION_S,
                            help="measured sim-seconds per seed")
    run_parser.add_argument("--warmup", type=float,
                            default=DEFAULT_WARMUP_S)
    run_parser.add_argument("--terminals", type=int, default=6)
    run_parser.add_argument("--accounts", type=int, default=16)
    run_parser.add_argument("--json", metavar="PATH",
                            help="write the JSON artifact here")
    run_parser.add_argument("--fail-on-violation", action="store_true",
                            help="exit nonzero on any violation "
                                 "(the default; kept for CI explicitness)")
    run_parser.set_defaults(fn=_cmd_run)

    list_parser = sub.add_parser("list", help="list nemesis schedules")
    list_parser.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
