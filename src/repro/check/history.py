"""Jepsen-style operation histories.

Every client operation is recorded twice, Jepsen-fashion: an **invoke**
when the client starts it and a completion — **ok** (with the commit
timestamp or read snapshot), **fail** (definitely did not happen), or
**info** (outcome unknown: the commit may or may not have taken effect —
e.g. a commit acknowledgement lost to a partition). Both edges carry the
simulation's real time, which is what lets the external-consistency
checker compare commit-timestamp order against real-time order.

The recorder attaches to an :class:`~repro.sim.core.Environment` as
``env.history`` (``None`` by default — the same zero-cost observer pattern
as ``env.san``): it is purely passive, never schedules events, and
therefore cannot perturb a run. Enable it for any driven workload with
``REPRO_HISTORY=1`` or programmatically::

    recorder = HistoryRecorder(db.env).install()
    ...run...
    report = run_all_checks(recorder.history(), expected_total=...)

Ops that never complete (a reader parked on an in-doubt transaction when
the run ends) stay in **invoke** state; checkers treat them like **info**.
"""

from __future__ import annotations

import hashlib
import json
import os
import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

ENV_VAR = "REPRO_HISTORY"

INVOKE = "invoke"
OK = "ok"
FAIL = "fail"
INFO = "info"


@dataclass
class Op:
    """One client operation (invoke edge + completion edge)."""

    index: int
    client: str
    op: str                  # "transfer" | "read" | "txn" | ...
    status: str              # invoke -> ok | fail | info
    invoke_ns: int
    complete_ns: int = -1
    commit_ts: int = -1      # writes: assigned commit timestamp
    read_ts: int = -1        # reads: pinned snapshot timestamp
    value: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index, "client": self.client, "op": self.op,
            "status": self.status, "invoke_ns": self.invoke_ns,
            "complete_ns": self.complete_ns, "commit_ts": self.commit_ts,
            "read_ts": self.read_ts, "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Op":
        return cls(**data)


class History:
    """An immutable-ish list of ops with filters and a stable digest."""

    def __init__(self, ops: list[Op]):
        self.ops = ops

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    # -- filters -------------------------------------------------------
    def of_type(self, op_type: str) -> list[Op]:
        return [op for op in self.ops if op.op == op_type]

    def committed(self, op_type: str | None = None) -> list[Op]:
        return [op for op in self.ops
                if op.status == OK and op.commit_ts >= 0
                and (op_type is None or op.op == op_type)]

    def unknown(self, op_type: str | None = None) -> list[Op]:
        """Ops whose effects may or may not exist (info + never-completed)."""
        return [op for op in self.ops
                if op.status in (INFO, INVOKE)
                and (op_type is None or op.op == op_type)]

    def ok_reads(self) -> list[Op]:
        return [op for op in self.ops
                if op.op == "read" and op.status == OK]

    # -- serialisation -------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [op.to_dict() for op in self.ops]

    def digest(self) -> str:
        payload = json.dumps(self.to_dicts(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def write_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            for op in self.ops:
                handle.write(json.dumps(op.to_dict(), sort_keys=True) + "\n")
        return len(self.ops)

    @classmethod
    def read_jsonl(cls, path: str) -> "History":
        ops = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    ops.append(Op.from_dict(json.loads(line)))
        return cls(ops)

    @classmethod
    def from_dicts(cls, dicts: typing.Iterable[dict]) -> "History":
        return cls([Op.from_dict(data) for data in dicts])


class HistoryRecorder:
    """Collects ops against one environment's simulated clock."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.ops: list[Op] = []

    def install(self) -> "HistoryRecorder":
        self.env.history = self
        self.env.rebind_hooks()
        return self

    # ------------------------------------------------------------------
    def invoke(self, client: str, op_type: str,
               value: dict | None = None) -> Op:
        op = Op(index=len(self.ops), client=client, op=op_type,
                status=INVOKE, invoke_ns=self.env.now,
                value=dict(value) if value else {})
        self.ops.append(op)
        return op

    def ok(self, op: Op, commit_ts: int = -1, read_ts: int = -1,
           **value_updates) -> None:
        op.status = OK
        op.complete_ns = self.env.now
        if commit_ts >= 0:
            op.commit_ts = commit_ts
        if read_ts >= 0:
            op.read_ts = read_ts
        if value_updates:
            op.value.update(value_updates)

    def fail(self, op: Op, reason: str = "") -> None:
        op.status = FAIL
        op.complete_ns = self.env.now
        if reason:
            op.value["reason"] = reason

    def info(self, op: Op, reason: str = "") -> None:
        """Outcome unknown — the op's effects may or may not exist."""
        op.status = INFO
        op.complete_ns = self.env.now
        if reason:
            op.value["reason"] = reason

    def history(self) -> History:
        return History(list(self.ops))


def maybe_install(env: "Environment") -> HistoryRecorder | None:
    """Install a recorder iff ``REPRO_HISTORY`` is set truthy (idempotent,
    mirroring :func:`repro.san.maybe_install`)."""
    if env.history is not None:
        return env.history
    if os.environ.get(ENV_VAR, "") in ("", "0"):
        return None
    return HistoryRecorder(env).install()
