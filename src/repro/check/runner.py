"""End-to-end chaos + consistency runs.

One :func:`run_seed` call is a complete Jepsen-style experiment inside the
simulator: build a three-city GlobalDB cluster (auto-failover on), install
a history recorder, drive the bank workload from closed-loop terminals
while a named nemesis (:mod:`repro.chaos`) attacks the cluster, quiesce,
let recovery settle, take a final guarded audit, and run every checker
over the recorded history. Because the whole experiment is one seeded
discrete-event simulation, a ``(seed, nemesis)`` pair is perfectly
reproducible — a violation found in CI replays locally, bit for bit.

:func:`run_many` sweeps seeds and aggregates into the JSON artifact shape
the CLI (``python -m repro.check``) and the CI chaos-smoke step consume.
"""

from __future__ import annotations

import typing

from repro.chaos import make_nemesis
from repro.check.checkers import run_all_checks
from repro.check.history import HistoryRecorder
from repro.errors import ReproError
from repro.sim.units import seconds

DEFAULT_DURATION_S = 1.75
DEFAULT_WARMUP_S = 0.10
SETTLE_S = 0.40
FINAL_AUDIT_TIMEOUT_S = 0.50
BANK_TABLE = "bank"


def run_seed(seed: int, nemesis: str = "default",
             duration_s: float = DEFAULT_DURATION_S,
             warmup_s: float = DEFAULT_WARMUP_S,
             terminals: int = 6, accounts: int = 16,
             trace: bool = False) -> dict:
    """Run one chaos experiment; returns a JSON-able result dict."""
    from repro import ClusterConfig, build_cluster, three_city
    from repro.workloads import BankConfig, BankWorkload, run_workload

    config = ClusterConfig.globaldb(
        three_city(), seed=seed, auto_failover=True, trace_enabled=trace)
    db = build_cluster(config)
    recorder = HistoryRecorder(db.env).install()
    bank_config = BankConfig(accounts=accounts, seed=seed * 1_000_003 + 17)
    workload = BankWorkload(bank_config)
    chaos = make_nemesis(nemesis, db)
    chaos.start()
    result = run_workload(db, workload, terminals=terminals,
                          duration_s=duration_s, warmup_s=warmup_s)
    healed = chaos.quiesce()
    # Let crash recovery, redo replay and RCP collection settle with the
    # faults gone before auditing the final state.
    db.env.run_for(seconds(SETTLE_S))
    audit_status = final_audit(db, recorder, bank_config.accounts)

    history = recorder.history()
    report = run_all_checks(history, accounts=bank_config.accounts,
                            initial_balance=bank_config.initial_balance)
    statuses: dict[str, int] = {}
    for op in history:
        statuses[op.status] = statuses.get(op.status, 0) + 1
    return {
        "seed": seed,
        "nemesis": nemesis,
        "ok": report.ok,
        "violations": [violation.to_dict()
                       for violation in report.violations],
        "checked": report.checked,
        "skipped": report.skipped,
        "ops": statuses,
        "committed": result.stats.committed,
        "aborted": result.stats.aborted,
        "transfers": workload.transfers,
        "audits": workload.audits,
        "chaos_events": len(chaos.events),
        "chaos_quiesced": healed,
        "chaos_digest": chaos.digest(),
        "history_digest": history.digest(),
        "failovers": len(db.failover.events) if db.failover else 0,
        "final_audit": audit_status,
        **({"trace_digest": db.env.tracer.digest(),
            "trace_spans": len(db.env.tracer.spans)} if trace else {}),
    }


def final_audit(db, recorder: HistoryRecorder, accounts: int,
                table: str = BANK_TABLE,
                timeout_s: float = FINAL_AUDIT_TIMEOUT_S) -> str:
    """One last full-table read after quiesce, recorded into the history.

    Guarded by a timeout: a transaction left in-doubt by the nemesis (a
    2PC finish lost to a partition) parks readers at higher snapshots
    forever, and the audit must not hang the harness with it. A blocked
    or failed audit is reported but is not itself a violation — the
    checkers judge only completed operations.

    Public because it is the shared post-run probe of every in-process
    experiment driver (``run_seed`` here, the :mod:`repro.explore` trial
    runner): it returns ``"ok"``, ``"missing-rows"``, ``"failed"`` or
    ``"blocked"`` and appends the audit read to ``recorder``.
    """
    env = db.env
    cn = db.cns[0]
    op = recorder.invoke("final-audit", "read", {"floor": 0})

    outcome = {"status": "blocked"}

    def audit():
        try:
            read_ts, use_ror = yield from cn.ro_snapshot(
                [table], min_read_ts=0)
            rows = yield from cn._ro_fanout([
                cn.g_ro_read(read_ts, use_ror, table, (account,))
                for account in range(accounts)
            ])
        except ReproError as exc:
            outcome.update(status="failed", error=str(exc))
            return
        balances = {str(account): row["balance"]
                    for account, row in enumerate(rows) if row is not None}
        outcome.update(status="ok", read_ts=read_ts, use_ror=use_ror,
                       balances=balances)

    process = env.process(audit(), name="final-audit")
    env.run(until=env.any_of([process,
                              env.timeout(seconds(timeout_s))]))
    if outcome["status"] == "ok":
        if len(outcome["balances"]) == accounts:
            recorder.ok(op, read_ts=outcome["read_ts"],
                        use_ror=outcome["use_ror"],
                        balances=outcome["balances"])
        else:
            recorder.fail(op, "final audit missing rows")
            return "missing-rows"
    else:
        recorder.fail(op, outcome.get("error", outcome["status"]))
    return outcome["status"]


def run_many(seeds: typing.Sequence[int], nemesis: str = "default",
             duration_s: float = DEFAULT_DURATION_S,
             warmup_s: float = DEFAULT_WARMUP_S,
             terminals: int = 6, accounts: int = 16,
             echo: typing.Callable[[str], None] | None = None) -> dict:
    """Run the experiment across ``seeds``; aggregate for the artifact."""
    runs = []
    for seed in seeds:
        run = run_seed(seed, nemesis=nemesis, duration_s=duration_s,
                       warmup_s=warmup_s, terminals=terminals,
                       accounts=accounts)
        runs.append(run)
        if echo is not None:
            status = "ok" if run["ok"] else \
                f"{len(run['violations'])} VIOLATION(S)"
            echo(f"seed {seed}: {status} "
                 f"({run['committed']} committed, {run['aborted']} aborted, "
                 f"{run['chaos_events']} chaos events, "
                 f"final audit {run['final_audit']})")
    violations = sum(len(run["violations"]) for run in runs)
    return {
        "nemesis": nemesis,
        "seeds": list(seeds),
        "ok": violations == 0,
        "violation_count": violations,
        "runs": runs,
    }
