"""``repro.check``: Jepsen-style history recording and consistency checking.

The companion of :mod:`repro.chaos`: while the nemesis attacks the
cluster, a passive :class:`~repro.check.history.HistoryRecorder` (attached
as ``env.history``) logs every client operation — invoke, ok, fail, or
info (outcome unknown) — with commit timestamps and read snapshots. After
the run, offline checkers (:mod:`repro.check.checkers`) test the paper's
claims against the recorded history: external consistency of GClock
commit timestamps, snapshot-isolation anomalies (lost update, write
cycles) over per-account version chains, the ROR staleness bound and
read-your-writes floor, and bank balance conservation.

``python -m repro.check run --nemesis default --seeds 3`` is the
end-to-end entry point (see :mod:`repro.check.runner`); it exits nonzero
on any violation, with a JSON artifact for CI.
"""

from repro.check.checkers import (
    CheckReport,
    Violation,
    check_balance,
    check_external_consistency,
    check_lost_update,
    check_staleness,
    check_write_cycles,
    run_all_checks,
)
from repro.check.history import (
    History,
    HistoryRecorder,
    Op,
    maybe_install,
)
from repro.check.runner import final_audit, run_many, run_seed

__all__ = [
    "final_audit",
    "Op",
    "History",
    "HistoryRecorder",
    "maybe_install",
    "Violation",
    "CheckReport",
    "check_external_consistency",
    "check_lost_update",
    "check_write_cycles",
    "check_staleness",
    "check_balance",
    "run_all_checks",
    "run_seed",
    "run_many",
]
