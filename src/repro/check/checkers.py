"""Offline consistency checkers over recorded histories.

Each checker replays a :class:`~repro.check.history.History` against one
of the paper's correctness claims and yields :class:`Violation` records:

- **external consistency** — GClock commit-wait promises *strict* real-time
  order: if transaction A completed before B was invoked, B's commit
  timestamp must be strictly greater than A's. The check is a prefix-max
  sweep over completion time, O(n log n).
- **lost update** — per-account version chains: every committed transfer
  records the balance it read (``before``) and wrote (``after``); in
  commit-timestamp order each write must read its predecessor's value.
  Two writers consuming the same ``before`` is the classic lost update.
- **write cycle (G0)** — per-account write orders (recovered from value
  adjacency, commit-ts order as tiebreak) are merged into one precedence
  graph; any cycle means two transactions installed their writes in
  opposite orders on different keys, which snapshot isolation forbids.
- **staleness bound / read-your-writes** — strongly-consistent replica
  reads (``use_ror``) must pin a snapshot no older than the CN's RCP minus
  the advertised staleness bound, and never below the session's
  read-your-writes floor.
- **balance conservation** — any snapshot covering every account must sum
  to ``accounts * initial_balance``: transfers move money, never mint it.

Transactions with *unknown* outcome (``info``, or still in-flight at
shutdown) may or may not have taken effect; accounts they touched are
excluded ("tainted") from the value-chain checkers rather than guessed
at, and the report counts how much was skipped so a run drowning in
unknowns cannot masquerade as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.history import History, Op


@dataclass
class Violation:
    """One concrete consistency violation, with the evidence."""

    checker: str
    message: str
    ops: tuple[int, ...] = ()   # history indices of the implicated ops

    def to_dict(self) -> dict:
        return {"checker": self.checker, "message": self.message,
                "ops": list(self.ops)}


@dataclass
class CheckReport:
    """Aggregated result of every checker over one history."""

    violations: list[Violation] = field(default_factory=list)
    checked: dict[str, int] = field(default_factory=dict)
    skipped: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, checker: str, violations: list[Violation],
               checked: int, skipped: int = 0) -> None:
        self.violations.extend(violations)
        self.checked[checker] = checked
        if skipped:
            self.skipped[checker] = skipped

    def to_dict(self) -> dict:
        return {"ok": self.ok,
                "violations": [v.to_dict() for v in self.violations],
                "checked": self.checked, "skipped": self.skipped}


# ----------------------------------------------------------------------
# External consistency
# ----------------------------------------------------------------------
def check_external_consistency(history: History) -> tuple[list[Violation], int]:
    """Commit-ts order must refine real-time order of non-overlapping txns."""
    committed = [op for op in history.committed() if op.complete_ns >= 0]
    violations: list[Violation] = []
    if len(committed) < 2:
        return violations, len(committed)

    by_complete = sorted(committed, key=lambda op: (op.complete_ns, op.index))
    by_invoke = sorted(committed, key=lambda op: (op.invoke_ns, op.index))
    # Prefix-max sweep: for each txn B (invoke order), the largest commit
    # timestamp among txns that completed strictly before B began.
    pointer = 0
    max_ts = -1
    max_op: Op | None = None
    for op_b in by_invoke:
        while (pointer < len(by_complete)
               and by_complete[pointer].complete_ns < op_b.invoke_ns):
            op_a = by_complete[pointer]
            if op_a.commit_ts > max_ts:
                max_ts, max_op = op_a.commit_ts, op_a
            pointer += 1
        if max_op is not None and max_op is not op_b and max_ts >= op_b.commit_ts:
            violations.append(Violation(
                "external-consistency",
                f"op {max_op.index} completed at {max_op.complete_ns}ns with "
                f"commit_ts={max_ts} but op {op_b.index} invoked later "
                f"(at {op_b.invoke_ns}ns) got commit_ts={op_b.commit_ts}",
                ops=(max_op.index, op_b.index)))
    return violations, len(committed)


# ----------------------------------------------------------------------
# Per-account version chains (lost update / write cycles)
# ----------------------------------------------------------------------
def _account_writes(history: History) -> tuple[dict[str, list[tuple[Op, int, int]]], set[str]]:
    """account -> [(op, before, after)] from committed transfers, plus the
    set of accounts tainted by unknown-outcome transfers."""
    writes: dict[str, list[tuple[Op, int, int]]] = {}
    for op in history.committed("transfer"):
        for account, pair in op.value.get("writes", {}).items():
            writes.setdefault(account, []).append((op, pair[0], pair[1]))
    tainted: set[str] = set()
    for op in history.unknown("transfer"):
        tainted.update(op.value.get("writes", {}))
        tainted.update(op.value.get("accounts", ()))
    return writes, tainted


def check_lost_update(history: History,
                      initial_balance: int | None = None,
                      ) -> tuple[list[Violation], int, int]:
    violations: list[Violation] = []
    writes, tainted = _account_writes(history)
    checked = skipped = 0
    for account in sorted(writes):
        entries = writes[account]
        if account in tainted:
            skipped += len(entries)
            continue
        checked += len(entries)
        entries = sorted(entries, key=lambda e: (e[0].commit_ts, e[0].index))
        previous = initial_balance
        previous_op: Op | None = None
        for op, before, after in entries:
            if previous is not None and before != previous:
                implicated = (previous_op.index, op.index) \
                    if previous_op is not None else (op.index,)
                violations.append(Violation(
                    "lost-update",
                    f"account {account}: op {op.index} "
                    f"(commit_ts={op.commit_ts}) read balance {before} but "
                    f"the previous committed value was {previous}",
                    ops=implicated))
            previous = after
            previous_op = op
    return violations, checked, skipped


def _chain_order(entries: list[tuple[Op, int, int]]) -> list[Op]:
    """Recover the write order on one account from value adjacency
    (``after`` of one write == ``before`` of the next); fall back to
    commit-ts order when the values don't form a single clean chain."""
    by_before: dict[int, tuple[Op, int, int]] = {}
    afters = set()
    for entry in entries:
        if entry[1] in by_before:     # duplicated 'before': ambiguous
            return [e[0] for e in sorted(
                entries, key=lambda e: (e[0].commit_ts, e[0].index))]
        by_before[entry[1]] = entry
        afters.add(entry[2])
    roots = [e for e in entries if e[1] not in afters]
    if len(roots) != 1:
        return [e[0] for e in sorted(
            entries, key=lambda e: (e[0].commit_ts, e[0].index))]
    chain = [roots[0]]
    while chain[-1][2] in by_before and len(chain) < len(entries):
        chain.append(by_before[chain[-1][2]])
    if len(chain) != len(entries):
        return [e[0] for e in sorted(
            entries, key=lambda e: (e[0].commit_ts, e[0].index))]
    return [e[0] for e in chain]


def check_write_cycles(history: History) -> tuple[list[Violation], int, int]:
    """Merge per-account write orders; a cycle is a G0 anomaly."""
    writes, tainted = _account_writes(history)
    edges: dict[int, set[int]] = {}
    checked = skipped = 0
    for account in sorted(writes):
        entries = writes[account]
        if account in tainted:
            skipped += len(entries)
            continue
        checked += len(entries)
        chain = _chain_order(entries)
        for earlier, later in zip(chain, chain[1:]):
            if earlier.index != later.index:
                edges.setdefault(earlier.index, set()).add(later.index)

    violations: list[Violation] = []
    # Iterative 3-color DFS over the precedence graph.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(edges, WHITE)
    for start in sorted(edges):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            if node == -1:      # post-visit marker
                color[path[-1]] = BLACK
                continue
            if color.get(node, WHITE) == GRAY:
                continue
            color[node] = GRAY
            stack.append((-1, [node]))
            for succ in sorted(edges.get(node, ())):
                state = color.get(succ, WHITE)
                if state == GRAY and succ in path:
                    cycle = path[path.index(succ):] + [succ]
                    violations.append(Violation(
                        "write-cycle",
                        "write-order cycle (G0): "
                        + " -> ".join(str(i) for i in cycle),
                        ops=tuple(cycle[:-1])))
                elif state == WHITE:
                    stack.append((succ, path + [succ]))
    return violations, checked, skipped


# ----------------------------------------------------------------------
# Replica-read staleness / read-your-writes
# ----------------------------------------------------------------------
def check_staleness(history: History) -> tuple[list[Violation], int]:
    """ROR snapshots must honor the advertised staleness bound and floor."""
    violations: list[Violation] = []
    checked = 0
    for op in history.ok_reads():
        value = op.value
        if not value.get("use_ror") or op.read_ts < 0:
            continue
        checked += 1
        rcp = value.get("rcp", -1)
        bound_ns = value.get("bound_ns")
        floor = value.get("floor", 0)
        if bound_ns is not None and rcp >= 0 and op.read_ts < rcp - bound_ns:
            violations.append(Violation(
                "staleness-bound",
                f"op {op.index}: ROR snapshot read_ts={op.read_ts} is "
                f"{rcp - op.read_ts}ns behind the CN's RCP ({rcp}) — "
                f"exceeds the advertised bound of {bound_ns}ns",
                ops=(op.index,)))
        if op.read_ts < floor:
            violations.append(Violation(
                "read-your-writes",
                f"op {op.index}: snapshot read_ts={op.read_ts} is below the "
                f"session's last-commit floor {floor}",
                ops=(op.index,)))
    return violations, checked


# ----------------------------------------------------------------------
# Balance conservation
# ----------------------------------------------------------------------
def check_balance(history: History, accounts: int,
                  initial_balance: int) -> tuple[list[Violation], int]:
    """Every full snapshot of the bank must total accounts * initial."""
    expected = accounts * initial_balance
    violations: list[Violation] = []
    checked = 0
    for op in history.ok_reads():
        balances = op.value.get("balances")
        if not balances or len(balances) != accounts:
            continue
        checked += 1
        total = sum(balances.values())
        if total != expected:
            violations.append(Violation(
                "balance-conservation",
                f"op {op.index}: snapshot at read_ts={op.read_ts} totals "
                f"{total}, expected {expected} "
                f"({accounts} accounts x {initial_balance})",
                ops=(op.index,)))
    return violations, checked


# ----------------------------------------------------------------------
def run_all_checks(history: History, accounts: int | None = None,
                   initial_balance: int | None = None) -> CheckReport:
    """Run every checker; bank-shape checkers need the workload params."""
    report = CheckReport()

    violations, checked = check_external_consistency(history)
    report.extend("external-consistency", violations, checked)

    violations, checked, skipped = check_lost_update(history, initial_balance)
    report.extend("lost-update", violations, checked, skipped)

    violations, checked, skipped = check_write_cycles(history)
    report.extend("write-cycle", violations, checked, skipped)

    violations, checked = check_staleness(history)
    report.extend("staleness", violations, checked)

    if accounts is not None and initial_balance is not None:
        violations, checked = check_balance(history, accounts, initial_balance)
        report.extend("balance-conservation", violations, checked)

    return report
