"""GaussDB-Global reproduction (ICDE 2024).

A simulated, sharded, geographically distributed OLTP database with:

- decentralized GClock transaction management with commit-wait, a
  centralized GTM mode, and a zero-downtime bidirectional transition
  between them via DUAL mode (§III);
- asynchronous physical replication with consistent reads on replicas at
  the Replica Consistency Point, tunable freshness, and skyline-based node
  selection (§IV);
- the paper's evaluation workloads (TPC-C, Sysbench) and a benchmark
  harness regenerating every figure of §V.

Quickstart::

    from repro import ClusterConfig, build_cluster, three_city

    db = build_cluster(ClusterConfig.globaldb(three_city()))
    session = db.session(region="xian")
    session.create_table("t", [("k", "int"), ("v", "text")],
                         primary_key=["k"])
    session.begin()
    session.insert("t", {"k": 1, "v": "hello"})
    session.commit()
    db.run_for(0.1)  # let replication catch up
    print(session.read_only("t", (1,)))
"""

from repro.cluster import (
    ClusterConfig,
    GlobalDB,
    Session,
    Topology,
    build_cluster,
    one_region,
    three_city,
    two_region,
)
from repro.errors import (
    ReproError,
    StalenessBoundError,
    TransactionAborted,
    WriteConflict,
)
from repro.replication import ReplicationPolicy, ShipperConfig
from repro.storage import ColumnDef, DistributionSpec, TableSchema
from repro.txn import TxnMode

__version__ = "1.0.0"

__all__ = [
    "build_cluster",
    "ClusterConfig",
    "GlobalDB",
    "Session",
    "Topology",
    "one_region",
    "two_region",
    "three_city",
    "TxnMode",
    "ReplicationPolicy",
    "ShipperConfig",
    "TableSchema",
    "ColumnDef",
    "DistributionSpec",
    "ReproError",
    "TransactionAborted",
    "WriteConflict",
    "StalenessBoundError",
    "__version__",
]
