"""Replica staleness estimation (§IV-B).

Staleness is "how far behind the present is this replica's applied state",
in nanoseconds. The estimator depends on the timestamp regime:

- **GClock mode**: commit timestamps *are* (bounded) physical time, so
  staleness is simply ``now - max_commit_ts`` measured against the local
  clock's upper bound (never negative).
- **GTM mode**: commit timestamps are counter values, so physical lag must
  be extrapolated: the gap between the freshest known timestamp and the
  replica's applied timestamp, divided by the observed timestamp issue rate
  over the last interval.
"""

from __future__ import annotations

from repro.clocks.gclock import GClockSource
from repro.sim.core import Environment
from repro.sim.units import SECOND
from repro.txn.modes import TxnMode


class StalenessEstimator:
    """Per-CN estimator fed by the CN's metric refresh loop."""

    def __init__(self, env: Environment, gclock: GClockSource,
                 name: str = ""):
        self.env = env
        self.gclock = gclock
        self.name = name  # owning CN, used to label emitted metrics
        # GTM-mode rate tracking: (sim time, freshest counter) samples.
        self._last_sample_time: int | None = None
        self._last_sample_ts = 0
        self._rate_per_second = 0.0  # timestamps issued per second

    def observe_frontier(self, freshest_ts: int) -> None:
        """Feed the freshest timestamp the CN knows about (e.g. the max of
        primary last-commit timestamps) to track the GTM issue rate."""
        now = self.env.now
        if self._last_sample_time is not None:
            elapsed = now - self._last_sample_time
            if elapsed > 0 and freshest_ts >= self._last_sample_ts:
                rate = (freshest_ts - self._last_sample_ts) / elapsed * SECOND
                # EWMA to smooth bursty intervals.
                if self._rate_per_second:
                    self._rate_per_second = 0.5 * self._rate_per_second + 0.5 * rate
                else:
                    self._rate_per_second = rate
        self._last_sample_time = now
        self._last_sample_ts = max(self._last_sample_ts, freshest_ts)
        metrics = self.env.metrics
        if metrics.enabled:
            metrics.set_gauge("ror.frontier_ts", self._last_sample_ts,
                              node=self.name)
        if self.env.series_on:
            self.env.series.gauge("ror.frontier_ts", self._last_sample_ts,
                                  node=self.name)

    @property
    def rate_per_second(self) -> float:
        return self._rate_per_second

    def estimate_ns(self, mode: TxnMode, replica_max_commit_ts: int) -> int:
        """Estimated staleness of a replica whose applied frontier is
        ``replica_max_commit_ts``."""
        if mode is TxnMode.GCLOCK:
            _earliest, latest = self.gclock.bounds()
            return max(0, latest - replica_max_commit_ts)
        # GTM / DUAL: extrapolate from the counter gap and issue rate.
        gap = max(0, self._last_sample_ts - replica_max_commit_ts)
        if gap == 0:
            return 0
        if self._rate_per_second <= 0:
            # No rate observed yet: fall back to "one interval behind".
            if self._last_sample_time is None:
                return 0
            return max(0, self.env.now - self._last_sample_time)
        return round(gap / self._rate_per_second * SECOND)
