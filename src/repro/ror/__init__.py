"""Reads on asynchronous replicas with guaranteed consistency (§IV).

Three pieces:

- :mod:`repro.ror.rcp` — the Replica Consistency Point: the largest commit
  timestamp available on *all* polled replicas, computed by an elected
  collector CN and distributed monotonically.
- :mod:`repro.ror.staleness` — per-mode staleness estimation (GClock mode
  compares timestamps to the clock; GTM mode extrapolates from the
  timestamp issue rate).
- :mod:`repro.ror.skyline` — cost-based node selection: a Pareto skyline
  over (staleness, latency/load) from which the router picks the fastest
  node satisfying a query's freshness bound, excluding failed nodes.
"""

from repro.ror.rcp import RcpCollector, RcpState, compute_rcp
from repro.ror.skyline import NodeMetrics, choose_node, near_pool, skyline
from repro.ror.staleness import StalenessEstimator

__all__ = [
    "compute_rcp",
    "RcpCollector",
    "RcpState",
    "NodeMetrics",
    "skyline",
    "choose_node",
    "near_pool",
    "StalenessEstimator",
]
