"""The Replica Consistency Point (§IV-A, Fig. 4).

Each replica tracks the maximum commit timestamp it has applied. The RCP is
the minimum of those maxima across all polled replicas: every transaction
with a commit timestamp at or below the RCP is fully available on every
replica (with the ``PENDING_COMMIT``/``PREPARE`` holdback covering records
that are present but unresolved). Reads at the RCP are therefore consistent
across shards even though each shard replays independently.

An elected collector CN polls the replicas, computes the RCP, and
distributes it to the other CNs at its site. Distribution through a single
collector keeps the RCP monotonic from every client's perspective even when
clients are re-routed between CNs (load balancing, failover). If the
collector dies, the next CN in deterministic order takes over.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.sim.core import Environment
from repro.sim.events import settle
from repro.sim.network import Network
from repro.sim.units import ms


def compute_rcp(max_commit_ts_by_replica: typing.Mapping[str, int]) -> int:
    """Fig. 4's rule: min over replicas of (max applied commit timestamp)."""
    if not max_commit_ts_by_replica:
        return 0
    return min(max_commit_ts_by_replica.values())


@dataclass
class RcpState:
    """A CN's view of the RCP (monotonically non-decreasing)."""

    rcp: int = 0
    updated_at: int = 0
    collector: str = ""
    updates_received: int = 0
    regressions_ignored: int = 0

    def update(self, rcp: int, now: int, collector: str) -> None:
        self.updates_received += 1
        self.collector = collector
        self.updated_at = now
        if rcp >= self.rcp:
            self.rcp = rcp
        else:
            # A lagging or newly-elected collector may briefly report an
            # older value; clients must never observe the RCP move backward.
            self.regressions_ignored += 1

    def age_ns(self, now: int) -> int:
        return now - self.updated_at


class RcpCollector:
    """The collector role, hosted on a CN.

    ``poll()`` is a generator the owning CN runs periodically while it holds
    the collector role: it fans out ``max_commit_ts`` requests to every
    replica, computes the minimum over the replies, and pushes the result to
    the peer CNs. Replicas that fail to answer are skipped for that round
    (a down replica must not freeze the RCP — it is excluded from routing
    by the skyline anyway).
    """

    def __init__(self, env: Environment, network: Network, cn_name: str,
                 replica_names: typing.Sequence[str],
                 peer_cn_names: typing.Sequence[str],
                 poll_interval_ns: int = ms(5), rpc_timeout_ns: int = ms(500)):
        self.env = env
        self.network = network
        self.cn_name = cn_name
        self.replica_names = list(replica_names)
        self.peer_cn_names = [name for name in peer_cn_names if name != cn_name]
        self.poll_interval_ns = poll_interval_ns
        self.rpc_timeout_ns = rpc_timeout_ns
        self.last_rcp = 0
        self.polls = 0
        self.failed_probes = 0

    def poll(self, on_rcp: typing.Callable[[int], None]):
        """Generator: one polling round. Calls ``on_rcp`` with the computed
        RCP and pushes it to peer CNs."""
        started = self.env.now
        requests = {
            name: self.network.request(
                self.cn_name, name, ("max_commit_ts",),
                timeout_ns=self.rpc_timeout_ns)
            for name in self.replica_names
        }
        if requests:
            yield settle(self.env, list(requests.values()))
        maxima: dict[str, int] = {}
        for name, request in requests.items():
            if request.ok:
                maxima[name] = request.value
            else:
                self.failed_probes += 1
        self.polls += 1
        if not maxima:
            return self.last_rcp
        rcp = compute_rcp(maxima)
        advance = max(0, rcp - self.last_rcp)
        if rcp > self.last_rcp:
            self.last_rcp = rcp
        if self.env.series_on:
            series = self.env.series
            series.gauge("ror.rcp", self.last_rcp, cn=self.cn_name)
            if advance:
                series.counter("ror.rcp_advance", advance, cn=self.cn_name)
        metrics = self.env.metrics
        if metrics.enabled:
            metrics.counter("ror.rcp_polls", cn=self.cn_name).inc()
            metrics.set_gauge("ror.rcp", self.last_rcp, cn=self.cn_name)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("ror", "rcp_poll", started, self.env.now,
                            track=self.cn_name, rcp=self.last_rcp,
                            replicas=len(maxima))
        on_rcp(self.last_rcp)
        for peer in self.peer_cn_names:
            self.network.send(self.cn_name, peer,
                              ("rcp_update", self.last_rcp, self.cn_name),
                              size_bytes=64)
        return self.last_rcp
