"""Cost-based replica selection via a Pareto skyline (§IV-B, Fig. 5).

Each CN periodically refreshes, per candidate node, two costs: *staleness*
(how far behind its applied data is) and *latency* (network RTT plus a load
penalty reflecting how promptly it answers). The skyline is the set of
Pareto-minimal candidates — nodes not dominated on both axes. Given a
query's staleness bound, the router picks the lowest-latency skyline node
whose data is fresh enough; crashed or overloaded nodes drop out of the
skyline automatically.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass


@dataclass(slots=True)
class NodeMetrics:
    """One candidate node's tracked costs."""

    name: str
    staleness_ns: int
    latency_ns: int
    max_commit_ts: int = 0
    load: float = 0.0
    up: bool = True
    is_primary: bool = False

    def dominates(self, other: "NodeMetrics") -> bool:
        """Strict Pareto dominance on (staleness, latency)."""
        no_worse = (self.staleness_ns <= other.staleness_ns
                    and self.latency_ns <= other.latency_ns)
        better = (self.staleness_ns < other.staleness_ns
                  or self.latency_ns < other.latency_ns)
        return no_worse and better


def skyline(candidates: typing.Iterable[NodeMetrics]) -> list[NodeMetrics]:
    """Pareto-minimal subset of live candidates, sorted by latency."""
    live = [candidate for candidate in candidates if candidate.up]
    frontier = [
        candidate for candidate in live
        if not any(other.dominates(candidate) for other in live)
    ]
    frontier.sort(key=lambda metrics: (metrics.latency_ns, metrics.staleness_ns))
    return frontier


def skyline_summary(candidates: typing.Iterable[NodeMetrics]) -> dict:
    """Telemetry view of one CN's routing state: how many live candidates,
    the skyline's size, and the freshness spread (min/max staleness over
    live replicas). Pure — CNs feed the result into ``env.series``."""
    live = [candidate for candidate in candidates if candidate.up]
    replicas = [candidate for candidate in live if not candidate.is_primary]
    return {
        "live": len(live),
        "skyline": len(skyline(live)),
        "freshest_staleness_ns": min(
            (replica.staleness_ns for replica in replicas), default=0),
        "stalest_staleness_ns": max(
            (replica.staleness_ns for replica in replicas), default=0),
    }


def choose_node(candidates: typing.Iterable[NodeMetrics],
                staleness_bound_ns: int | None = None,
                min_commit_ts: int | None = None,
                rng=None, latency_slack_ns: int = 200_000) -> NodeMetrics | None:
    """Pick a low-latency skyline node meeting the constraints.

    ``staleness_bound_ns`` is the query's freshness requirement (None means
    any staleness is acceptable). ``min_commit_ts`` additionally requires
    the node's applied frontier to cover a timestamp (the RCP) so the read
    is guaranteed consistent.

    Qualifying nodes within ``latency_slack_ns`` of the fastest are treated
    as equivalent and one is drawn at random (when ``rng`` is given): this
    spreads load across same-site candidates instead of stampeding the
    single cheapest node — the dynamic load balancing of §IV-B. Returns
    None if no node qualifies; the caller then falls back to the primary.
    """
    near = near_pool(candidates, staleness_bound_ns, min_commit_ts,
                     latency_slack_ns)
    if not near:
        return None
    if rng is None or len(near) == 1:
        return min(near, key=lambda metrics: metrics.latency_ns)
    return rng.choice(near)


def near_pool(candidates: typing.Iterable[NodeMetrics],
              staleness_bound_ns: int | None = None,
              min_commit_ts: int | None = None,
              latency_slack_ns: int = 200_000) -> list[NodeMetrics]:
    """The equivalence class :func:`choose_node` draws from: qualifying
    nodes within ``latency_slack_ns`` of the skyline's fastest qualifier
    (a dominated-but-near node is still a useful target — domination says
    "never strictly better", not "useless"). Split out so routers can
    cache the pool between metric refreshes; its order is a pure function
    of the candidate order, which keeps a cached pool's ``rng.choice``
    draws identical to recomputing."""
    qualifying = []
    for metrics in candidates:
        if not metrics.up:
            continue
        if staleness_bound_ns is not None and metrics.staleness_ns > staleness_bound_ns:
            continue
        if (min_commit_ts is not None and not metrics.is_primary
                and metrics.max_commit_ts < min_commit_ts):
            continue
        qualifying.append(metrics)
    if not qualifying:
        return []
    frontier = skyline(qualifying)
    fastest = frontier[0].latency_ns
    return [metrics for metrics in qualifying
            if metrics.latency_ns <= fastest + latency_slack_ns]
