"""Transaction-management modes."""

from __future__ import annotations

import enum


class TxnMode(enum.Enum):
    """The timestamp-generation regime a node (or transaction) runs under.

    A transaction is pinned to the mode its coordinating node was in when it
    began; nodes themselves transition GTM <-> DUAL <-> GCLOCK online.
    """

    GTM = "gtm"
    DUAL = "dual"
    GCLOCK = "gclock"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
