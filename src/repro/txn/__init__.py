"""Transaction management (§III).

GlobalDB supports two timestamp-generation regimes and can transition
between them online:

- **GTM mode** — a centralized Global Transaction Manager issues begin and
  commit timestamps (a counter incremented per transaction, Eq. 2). Every
  timestamp costs a network round trip to the GTM server.
- **GClock mode** — decentralized, Spanner-style: each node takes
  ``T_clock + T_err`` from its synced local clock (Eq. 1) and *commit-waits*
  until its clock passes the timestamp, which guarantees the paper's
  visibility requirements R.1/R.2 (external serializability) with zero
  timestamp traffic.
- **DUAL mode** — the bridge used during online migration (Eq. 3):
  ``TS_DUAL = max(TS_GTM, TS_GClock) + 1``, issued by the GTM server, valid
  against both regimes.

:class:`~repro.txn.migration.MigrationCoordinator` drives the zero-downtime
bidirectional transition of Figs. 2 and 3.
"""

from repro.txn.gtm import GTMServer
from repro.txn.migration import MigrationCoordinator
from repro.txn.modes import TxnMode
from repro.txn.provider import TimestampProvider

__all__ = ["TxnMode", "GTMServer", "TimestampProvider", "MigrationCoordinator"]
