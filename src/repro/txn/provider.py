"""Per-node timestamp provider.

Every computing node and data node owns a :class:`TimestampProvider` that
knows the node's current transaction-management mode and implements the
begin/commit timestamp protocols for all three modes. Transactions are
pinned to the mode under which they began; the provider resolves the
*effective* commit protocol from (transaction mode, node mode):

- a GTM transaction always commits through the GTM server — during a DUAL
  window the server makes it wait out ``2 x max error bound`` (Listing 1's
  fix), and after a GClock cutover the server rejects it (the transaction
  aborts, as §III-A specifies);
- a DUAL transaction always commits through the GTM server with Eq. 3;
- a GClock transaction commits locally with commit-wait — unless the node
  has left GClock mode (a GClock -> GTM transition is in progress), in
  which case it is upgraded to the DUAL protocol so it never aborts,
  matching Fig. 3's "no old transactions will need to abort".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.gclock import GClockSource
from repro.errors import ModeTransitionError, TransactionAborted
from repro.sim.core import Environment
from repro.sim.network import Network
from repro.txn.modes import TxnMode

#: Legal mode transitions for a node (same shape as the GTM server's).
_LEGAL_TRANSITIONS = {
    (TxnMode.GTM, TxnMode.DUAL),
    (TxnMode.DUAL, TxnMode.GCLOCK),
    (TxnMode.GCLOCK, TxnMode.DUAL),
    (TxnMode.DUAL, TxnMode.GTM),
}


@dataclass
class TimestampStats:
    """Counters for reporting (GTM round trips vs. local stamps, waits)."""

    gtm_round_trips: int = 0
    local_stamps: int = 0
    commit_wait_ns_total: int = 0
    commit_waits: int = 0
    aborts_on_cutover: int = 0

    def mean_commit_wait_ns(self) -> float:
        if not self.commit_waits:
            return 0.0
        return self.commit_wait_ns_total / self.commit_waits


class TimestampProvider:
    """Mode-aware begin/commit timestamp protocols for one node."""

    def __init__(self, env: Environment, network: Network, node_name: str,
                 gclock: GClockSource, gtm_name: str,
                 mode: TxnMode = TxnMode.GTM):
        self.env = env
        self.network = network
        self.node_name = node_name
        self.gclock = gclock
        self.gtm_name = gtm_name
        self.mode = mode
        self.stats = TimestampStats()

    # ------------------------------------------------------------------
    # Mode management
    # ------------------------------------------------------------------
    def set_mode(self, mode: TxnMode):
        """Switch the node's mode (generator: DUAL entry reports the node's
        GClock view to the GTM server so Eq. 3 and Fig. 3 bookkeeping hold).
        """
        if mode is self.mode:
            return
        if (self.mode, mode) not in _LEGAL_TRANSITIONS:
            raise ModeTransitionError(
                f"illegal node transition {self.mode} -> {mode} on {self.node_name}")
        if mode is TxnMode.DUAL:
            stamp = self.gclock.timestamp()
            yield self.network.request(
                self.node_name, self.gtm_name,
                ("report_gclock", stamp.ts, stamp.err))
        self.mode = mode

    # ------------------------------------------------------------------
    # Begin
    # ------------------------------------------------------------------
    def begin(self):
        """Generator: returns ``(read_ts, txn_mode)`` for a new transaction.

        GClock mode performs the invocation wait of §III; GTM and DUAL
        modes pay a round trip to the GTM server.
        """
        mode = self.mode
        if mode is TxnMode.GTM:
            read_ts = yield self.network.request(
                self.node_name, self.gtm_name, ("begin",))
            self.stats.gtm_round_trips += 1
            return read_ts, mode
        if mode is TxnMode.DUAL:
            stamp = self.gclock.timestamp()
            read_ts = yield self.network.request(
                self.node_name, self.gtm_name,
                ("begin_dual", stamp.ts, stamp.err))
            self.stats.gtm_round_trips += 1
            return read_ts, mode
        # GClock: take the timestamp and perform the invocation wait.
        stamp = self.gclock.timestamp()
        self.stats.local_stamps += 1
        started = self.env.now
        yield from self.gclock.wait_until_after(stamp.ts)
        self._note_wait(started)
        return stamp.ts, mode

    def begin_no_wait(self) -> tuple[int, TxnMode]:
        """The single-shard bypass of §III: no invocation wait, no RPC.

        Only valid when the snapshot will be replaced by the target node's
        last-committed timestamp (single-shard reads); callers must not use
        this for multi-shard snapshots.
        """
        self.stats.local_stamps += 1
        return self.gclock.timestamp().ts, self.mode

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit_ts(self, txn_mode: TxnMode):
        """Generator: returns the commit timestamp for a transaction that
        began under ``txn_mode``, applying the mode-appropriate wait.

        Raises :class:`TransactionAborted` for GTM transactions stranded by
        a GClock cutover.
        """
        effective = self._effective_commit_mode(txn_mode)
        if effective is TxnMode.GTM:
            reply = yield self.network.request(
                self.node_name, self.gtm_name, ("commit_gtm",))
            self.stats.gtm_round_trips += 1
            if reply[0] == "abort":
                self.stats.aborts_on_cutover += 1
                raise TransactionAborted(reply[1])
            _ok, ts, wait_ns = reply
            if wait_ns:
                started = self.env.now
                yield self.env.timeout(wait_ns)
                self._note_wait(started)
            return ts
        if effective is TxnMode.DUAL:
            stamp = self.gclock.timestamp()
            reply = yield self.network.request(
                self.node_name, self.gtm_name,
                ("commit_dual", stamp.ts, stamp.err))
            self.stats.gtm_round_trips += 1
            _ok, ts, _wait = reply
            # Commit-wait so later GClock transactions anywhere get larger
            # timestamps even though ts was issued centrally.
            started = self.env.now
            yield from self.gclock.wait_until_after(ts)
            self._note_wait(started)
            return ts
        # Pure GClock commit: local stamp + commit wait. Zero GTM traffic.
        stamp = self.gclock.timestamp()
        self.stats.local_stamps += 1
        started = self.env.now
        yield from self.gclock.wait_until_after(stamp.ts)
        self._note_wait(started)
        return stamp.ts

    def _effective_commit_mode(self, txn_mode: TxnMode) -> TxnMode:
        if txn_mode is TxnMode.GCLOCK and self.mode is not TxnMode.GCLOCK:
            # The node left GClock mode while this transaction ran
            # (GClock -> GTM migration). Upgrade to DUAL: Eq. 3 timestamps
            # are valid against both regimes, so nothing aborts (Fig. 3).
            return TxnMode.DUAL
        return txn_mode

    def _note_wait(self, started: int) -> None:
        self.stats.commit_waits += 1
        self.stats.commit_wait_ns_total += self.env.now - started
