"""Per-node timestamp provider.

Every computing node and data node owns a :class:`TimestampProvider` that
knows the node's current transaction-management mode and implements the
begin/commit timestamp protocols for all three modes. Transactions are
pinned to the mode under which they began; the provider resolves the
*effective* commit protocol from (transaction mode, node mode):

- a GTM transaction always commits through the GTM server — during a DUAL
  window the server makes it wait out ``2 x max error bound`` (Listing 1's
  fix), and after a GClock cutover the server rejects it (the transaction
  aborts, as §III-A specifies);
- a DUAL transaction always commits through the GTM server with Eq. 3;
- a GClock transaction commits locally with commit-wait — unless the node
  has left GClock mode (a GClock -> GTM transition is in progress), in
  which case it is upgraded to the DUAL protocol so it never aborts,
  matching Fig. 3's "no old transactions will need to abort".
"""

from __future__ import annotations

from repro.clocks.gclock import GClockSource
from repro.errors import (ModeTransitionError, NetworkError,
                          TransactionAborted)
from repro.obs.metrics import Counter, Histogram
from repro.sim.core import Environment
from repro.sim.network import Network
from repro.sim.units import ms
from repro.txn.modes import TxnMode

#: Legal mode transitions for a node (same shape as the GTM server's).
_LEGAL_TRANSITIONS = {
    (TxnMode.GTM, TxnMode.DUAL),
    (TxnMode.DUAL, TxnMode.GCLOCK),
    (TxnMode.GCLOCK, TxnMode.DUAL),
    (TxnMode.DUAL, TxnMode.GTM),
}


class TimestampStats:
    """Counters for reporting (GTM round trips vs. local stamps, waits).

    Backed by :mod:`repro.obs` instruments. When the node's environment has
    a live :class:`~repro.obs.metrics.MetricsRegistry`, the instruments are
    registered there (``ts.*`` with a ``node`` label) and show up in
    registry snapshots; otherwise standalone instruments are used so the
    stats keep counting with observability off. The original attribute API
    (``gtm_round_trips`` etc.) is preserved as read-only properties.
    """

    __slots__ = ("_round_trips", "_local", "_waits", "_cutover_aborts")

    def __init__(self, registry=None, node: str | None = None):
        if registry is not None and registry.enabled and node is not None:
            self._round_trips = registry.counter("ts.gtm_round_trips", node=node)
            self._local = registry.counter("ts.local_stamps", node=node)
            self._waits = registry.histogram("ts.commit_wait_ns", node=node)
            self._cutover_aborts = registry.counter("ts.aborts_on_cutover",
                                                    node=node)
        else:
            self._round_trips = Counter()
            self._local = Counter()
            self._waits = Histogram()
            self._cutover_aborts = Counter()

    def note_round_trip(self) -> None:
        self._round_trips.inc()

    def note_local_stamp(self) -> None:
        self._local.inc()

    def note_wait(self, wait_ns: int) -> None:
        self._waits.record(wait_ns)

    def note_cutover_abort(self) -> None:
        self._cutover_aborts.inc()

    @property
    def gtm_round_trips(self) -> int:
        return self._round_trips.value

    @property
    def local_stamps(self) -> int:
        return self._local.value

    @property
    def commit_wait_ns_total(self) -> int:
        return self._waits.sum

    @property
    def commit_waits(self) -> int:
        return self._waits.count

    @property
    def aborts_on_cutover(self) -> int:
        return self._cutover_aborts.value

    def mean_commit_wait_ns(self) -> float:
        if not self.commit_waits:
            return 0.0
        return self.commit_wait_ns_total / self.commit_waits


class TimestampProvider:
    """Mode-aware begin/commit timestamp protocols for one node."""

    def __init__(self, env: Environment, network: Network, node_name: str,
                 gclock: GClockSource, gtm_name: str,
                 mode: TxnMode = TxnMode.GTM):
        self.env = env
        self.network = network
        self.node_name = node_name
        self.gclock = gclock
        self.gtm_name = gtm_name
        self.mode = mode
        self.stats = TimestampStats(env.metrics, node_name)

    # ------------------------------------------------------------------
    # Mode management
    # ------------------------------------------------------------------
    def set_mode(self, mode: TxnMode):
        """Switch the node's mode (generator: DUAL entry reports the node's
        GClock view to the GTM server so Eq. 3 and Fig. 3 bookkeeping hold).
        """
        if mode is self.mode:
            return
        if (self.mode, mode) not in _LEGAL_TRANSITIONS:
            raise ModeTransitionError(
                f"illegal node transition {self.mode} -> {mode} on {self.node_name}")
        if mode is TxnMode.DUAL:
            stamp = self.gclock.timestamp()
            yield self.network.request(
                self.node_name, self.gtm_name,
                ("report_gclock", stamp.ts, stamp.err))
        self.mode = mode

    # ------------------------------------------------------------------
    def _gtm_request(self, body: tuple):
        """Generator: one GTM round trip on the transaction path.

        A GTM that cannot be reached (crashed, partitioned) aborts the
        transaction — clients see a retryable abort, never a raw network
        error escaping the session layer.
        """
        try:
            reply = yield self.network.request(
                self.node_name, self.gtm_name, body)
        except NetworkError as exc:
            # Back off before surfacing the abort: a down endpoint fails
            # the request at the same sim instant, and a closed-loop
            # retrier must not spin without advancing time.
            yield self.env.sleep(ms(1))
            raise TransactionAborted(f"gtm unreachable: {exc}") from None
        return reply

    # ------------------------------------------------------------------
    # Begin
    # ------------------------------------------------------------------
    def begin(self):
        """Generator: returns ``(read_ts, txn_mode)`` for a new transaction.

        GClock mode performs the invocation wait of §III; GTM and DUAL
        modes pay a round trip to the GTM server.
        """
        mode = self.mode
        if mode is TxnMode.GTM:
            started = self.env.now
            read_ts = yield from self._gtm_request(("begin",))
            self.stats.note_round_trip()
            self._trace_rpc("begin_rpc", started)
            return read_ts, mode
        if mode is TxnMode.DUAL:
            stamp = self.gclock.timestamp()
            started = self.env.now
            read_ts = yield from self._gtm_request(
                ("begin_dual", stamp.ts, stamp.err))
            self.stats.note_round_trip()
            self._trace_rpc("begin_rpc", started)
            return read_ts, mode
        # GClock: take the timestamp and perform the invocation wait.
        stamp = self.gclock.timestamp()
        self.stats.note_local_stamp()
        started = self.env.now
        yield from self.gclock.wait_until_after(stamp.ts)
        self._note_wait(started, name="invocation_wait")
        return stamp.ts, mode

    def begin_no_wait(self) -> tuple[int, TxnMode]:
        """The single-shard bypass of §III: no invocation wait, no RPC.

        Only valid when the snapshot will be replaced by the target node's
        last-committed timestamp (single-shard reads); callers must not use
        this for multi-shard snapshots.
        """
        self.stats.note_local_stamp()
        return self.gclock.timestamp().ts, self.mode

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit_ts(self, txn_mode: TxnMode, txid=None):
        """Generator: returns the commit timestamp for a transaction that
        began under ``txn_mode``, applying the mode-appropriate wait.

        ``txid`` (when the caller has one) is attached to the emitted
        commit-wait spans so run reports can attribute the wait to the
        transaction. Raises :class:`TransactionAborted` for GTM
        transactions stranded by a GClock cutover.
        """
        effective = self._effective_commit_mode(txn_mode)
        if effective is TxnMode.GTM:
            started = self.env.now
            reply = yield from self._gtm_request(("commit_gtm",))
            self.stats.note_round_trip()
            self._trace_rpc("commit_rpc", started, txid=txid)
            if reply[0] == "abort":
                self.stats.note_cutover_abort()
                raise TransactionAborted(reply[1])
            _ok, ts, wait_ns = reply
            if wait_ns:
                started = self.env.now
                yield self.env.sleep(wait_ns)
                self._note_wait(started, txid=txid)
            return ts
        if effective is TxnMode.DUAL:
            stamp = self.gclock.timestamp()
            started = self.env.now
            reply = yield from self._gtm_request(
                ("commit_dual", stamp.ts, stamp.err))
            self.stats.note_round_trip()
            self._trace_rpc("commit_rpc", started, txid=txid)
            _ok, ts, _wait = reply
            # Commit-wait so later GClock transactions anywhere get larger
            # timestamps even though ts was issued centrally.
            started = self.env.now
            yield from self.gclock.wait_until_after(ts)
            self._note_wait(started, txid=txid)
            return ts
        # Pure GClock commit: local stamp + commit wait. Zero GTM traffic.
        stamp = self.gclock.timestamp()
        self.stats.note_local_stamp()
        started = self.env.now
        yield from self.gclock.wait_until_after(stamp.ts)
        self._note_wait(started, txid=txid)
        return stamp.ts

    def _effective_commit_mode(self, txn_mode: TxnMode) -> TxnMode:
        if txn_mode is TxnMode.GCLOCK and self.mode is not TxnMode.GCLOCK:
            # The node left GClock mode while this transaction ran
            # (GClock -> GTM migration). Upgrade to DUAL: Eq. 3 timestamps
            # are valid against both regimes, so nothing aborts (Fig. 3).
            return TxnMode.DUAL
        return txn_mode

    def _note_wait(self, started: int, txid=None,
                   name: str = "commit_wait") -> None:
        now = self.env.now
        self.stats.note_wait(now - started)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("ts", name, started, now, track=self.node_name,
                            txid=txid)

    def _trace_rpc(self, name: str, started: int, txid=None) -> None:
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.complete("ts", name, started, self.env.now,
                            track=self.node_name, txid=txid)
