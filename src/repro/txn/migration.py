"""Online migration between GTM and GClock modes (§III-A, Figs. 2-3).

The coordinator drives the cluster through DUAL mode with zero downtime:
transactions keep starting and committing at every step.

GTM -> GClock (Fig. 2):

1. switch the GTM server to DUAL;
2. switch every node to DUAL (each reports its GClock view, so the server
   learns the maximum error bound and raises its counter per Eq. 3);
3. dwell in DUAL for ``2 x max error bound`` observed during the
   transition, so every GClock timestamp issued after the cutover exceeds
   every DUAL timestamp issued before it;
4. switch the GTM server, then every node, to GClock mode. In-flight DUAL
   transactions still commit through the server; stale GTM transactions
   that reach commit after the cutover abort.

GClock -> GTM (Fig. 3) is the same choreography minus the dwell: the server
re-enters GTM mode with its counter above the largest GClock timestamp it
has observed, so nothing aborts.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.sim.core import Environment
from repro.sim.network import Network
from repro.txn.modes import TxnMode


@dataclass
class MigrationReport:
    """Timeline of one migration run (for tests, examples, benchmarks)."""

    direction: str
    started_at: int = 0
    finished_at: int = 0
    dwell_ns: int = 0
    steps: list = field(default_factory=list)

    def record(self, now: int, step: str) -> None:
        self.steps.append((now, step))

    @property
    def duration_ns(self) -> int:
        return self.finished_at - self.started_at


class MigrationCoordinator:
    """Admin entity that performs mode transitions over the network.

    ``participants`` are endpoint names that accept a ``("set_mode", mode)``
    RPC (computing nodes and data nodes — anything holding a
    :class:`~repro.txn.provider.TimestampProvider`).
    """

    def __init__(self, env: Environment, network: Network, name: str,
                 gtm_name: str, participants: typing.Sequence[str]):
        self.env = env
        self.network = network
        self.name = name
        self.gtm_name = gtm_name
        self.participants = list(participants)
        if name not in network._endpoints:
            network.add_endpoint(name, region="admin")
        self.reports: list[MigrationReport] = []

    # ------------------------------------------------------------------
    def to_gclock(self):
        """Generator: migrate the whole cluster GTM -> GClock."""
        report = MigrationReport(direction="gtm->gclock", started_at=self.env.now)
        self.reports.append(report)
        span = self.env.tracer.start("migration", "gtm->gclock", track=self.name)
        yield from self._set_gtm_mode(TxnMode.DUAL, report)
        yield from self._set_participants_mode(TxnMode.DUAL, report)
        # Dwell: 2x the max error bound observed during the transition.
        state = yield self.network.request(self.name, self.gtm_name, ("get_state",))
        dwell = 2 * state["max_err_seen"]
        report.dwell_ns = dwell
        dwell_started = self.env.now
        self._mark(report, f"dwell {dwell}ns")
        if dwell:
            yield self.env.sleep(dwell)
        self._note_phase("dwell", dwell_started)
        yield from self._set_gtm_mode(TxnMode.GCLOCK, report)
        yield from self._set_participants_mode(TxnMode.GCLOCK, report)
        report.finished_at = self.env.now
        span.finish(dwell_ns=dwell)
        return report

    def to_gtm(self):
        """Generator: migrate the whole cluster GClock -> GTM."""
        report = MigrationReport(direction="gclock->gtm", started_at=self.env.now)
        self.reports.append(report)
        span = self.env.tracer.start("migration", "gclock->gtm", track=self.name)
        yield from self._set_gtm_mode(TxnMode.DUAL, report)
        yield from self._set_participants_mode(TxnMode.DUAL, report)
        # No dwell needed (Fig. 3): the server's counter jumps above the
        # largest observed GClock timestamp when it re-enters GTM mode.
        yield from self._set_gtm_mode(TxnMode.GTM, report)
        yield from self._set_participants_mode(TxnMode.GTM, report)
        report.finished_at = self.env.now
        span.finish()
        return report

    # ------------------------------------------------------------------
    def _mark(self, report: MigrationReport, step: str) -> None:
        report.record(self.env.now, step)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("migration", step, track=self.name)

    def _note_phase(self, phase: str, started: int) -> None:
        metrics = self.env.metrics
        if metrics.enabled:
            metrics.histogram("migration.phase_ns",
                              phase=phase).record(self.env.now - started)

    def _set_gtm_mode(self, mode: TxnMode, report: MigrationReport):
        started = self.env.now
        yield self.network.request(self.name, self.gtm_name, ("set_mode", mode))
        self._mark(report, f"gtm-server -> {mode}")
        self._note_phase(f"server->{mode.name}", started)

    def _set_participants_mode(self, mode: TxnMode, report: MigrationReport):
        started = self.env.now
        pending = [
            self.network.request(self.name, participant, ("set_mode", mode))
            for participant in self.participants
        ]
        if pending:
            yield self.env.all_of(pending)
        self._mark(report, f"participants -> {mode}")
        self._note_phase(f"participants->{mode.name}", started)
