"""The Global Transaction Manager server.

In GTM mode the server is the single source of timestamps: begin requests
read the counter, commit requests increment it (Eq. 2). In DUAL mode the
server bridges regimes: each DUAL request reports the caller's current
GClock timestamp and error bound, the counter is raised to
``max(TS_GTM, TS_GClock) + 1`` (Eq. 3), and the server tracks the maximum
error bound observed — the quantity that sizes the paper's ``2 x max error
bound`` waits. In GCLOCK mode the server refuses GTM-mode commits (such
transactions abort, per §III-A) but keeps servicing in-flight DUAL commits
so migrations drain cleanly.

The server is a network endpoint; all interaction is via RPC, so every
GTM-mode transaction genuinely pays the round trip that Fig. 6b measures.
"""

from __future__ import annotations

from repro.errors import ModeTransitionError
from repro.sim.core import Environment
from repro.sim.network import Message, Network, Request
from repro.sim.units import us
from repro.txn.modes import TxnMode


class GTMServer:
    """Centralized transaction manager, addressable as ``name`` on the net."""

    def __init__(self, env: Environment, network: Network, name: str,
                 region: str, service_time_ns: int = us(2)):
        self.env = env
        self.network = network
        self.name = name
        self.region = region
        self.service_time_ns = service_time_ns
        self.mode = TxnMode.GTM
        self.counter = 0  # TS_GTM: the latest issued timestamp
        #: Largest error bound reported by any DUAL-mode participant since
        #: the server last entered DUAL mode (sizes the 2x dwell wait).
        self.max_err_seen = 0
        #: Largest GClock timestamp reported (GClock -> GTM transitions).
        self.max_gclock_seen = 0
        self.begin_requests = 0
        self.commit_requests = 0
        self.rejected_commits = 0
        #: Group-commit window state: requests arriving while a service
        #: window is open are answered together when it closes, so a burst
        #: of N timestamp requests costs one kernel event, not N processes.
        self._window: list = []
        self._window_armed = False
        self.windows_served = 0
        self.windowed_requests = 0
        # Precomputed dispatch: request kind -> bound handler (avoids a
        # per-request getattr on the hot path; see simlint SIM112).
        self._handlers = {
            attr[len("_handle_"):]: getattr(self, attr)
            for attr in dir(self) if attr.startswith("_handle_")
        }
        network.add_endpoint(name, region, handler=self._on_message)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        request = message.payload
        if not isinstance(request, Request):
            return
        kind = request.body[0]
        env = self.env
        if env.hooks_txn:
            if env.metrics_on:
                env.metrics.counter("gtm.requests", kind=kind).inc()
            if env.series_on:
                series = env.series
                series.counter("gtm.requests", 1, kind=kind)
                series.gauge("gtm.counter", self.counter, node=self.name)
        # Group commit: the first request opens a service window one
        # ``service_time_ns`` wide; everything arriving before it closes is
        # served in arrival order when it does. The batch costs a single
        # deferred callback instead of one process (and its timer, resume
        # and join events) per request.
        if self.service_time_ns:
            self._window.append((kind, request, env.now))
            if not self._window_armed:
                self._window_armed = True
                env.defer(self.service_time_ns, self._serve_window, None)
            return
        handler = self._handlers.get(kind)
        if handler is None:
            request.fail(ModeTransitionError(f"GTM: unknown request {kind!r}"))
            return
        handler(request)
        if env.trace_on:
            env.tracer.instant("gtm", kind, track=self.name)

    def _serve_window(self, _arg) -> None:
        self._window_armed = False
        batch = self._window
        self._window = []
        handlers = self._handlers
        env = self.env
        traced = env.trace_on
        now = env.now
        self.windows_served += 1
        self.windowed_requests += len(batch)
        for kind, request, arrived in batch:
            handler = handlers.get(kind)
            if handler is None:
                request.fail(
                    ModeTransitionError(f"GTM: unknown request {kind!r}"))
                continue
            handler(request)
            if traced:
                env.tracer.complete("gtm", kind, arrived, now,
                                    track=self.name)

    # ------------------------------------------------------------------
    # Timestamp requests
    # ------------------------------------------------------------------
    def _handle_begin(self, request: Request) -> None:
        """Begin: the snapshot is the latest issued timestamp."""
        self.begin_requests += 1
        request.reply(self.counter)

    def _handle_begin_dual(self, request: Request) -> None:
        """DUAL begin: raise the counter with the caller's GClock view so the
        snapshot covers everything either regime has committed."""
        _kind, gclock_ts, gclock_err = request.body
        self.begin_requests += 1
        self._observe_gclock(gclock_ts, gclock_err)
        if gclock_ts > self.counter:
            self.counter = gclock_ts
        request.reply(self.counter)

    def _handle_commit_gtm(self, request: Request) -> None:
        """Commit for a transaction that began in GTM mode."""
        self.commit_requests += 1
        if self.mode is TxnMode.GCLOCK:
            # §III-A: old GTM transactions committing after the cluster has
            # transitioned to GClock mode must abort.
            self.rejected_commits += 1
            request.reply(("abort", "GTM transaction after GClock cutover"))
            return
        self.counter += 1
        if self.mode is TxnMode.DUAL:
            # Listing 1's fix: GTM commits during DUAL must wait out twice
            # the largest error bound seen during the transition.
            request.reply(("ok", self.counter, 2 * self.max_err_seen))
        else:
            request.reply(("ok", self.counter, 0))

    def _handle_commit_dual(self, request: Request) -> None:
        """Commit for a DUAL-mode transaction (Eq. 3)."""
        _kind, gclock_ts, gclock_err = request.body
        self.commit_requests += 1
        self._observe_gclock(gclock_ts, gclock_err)
        self.counter = max(self.counter, gclock_ts) + 1
        request.reply(("ok", self.counter, 0))

    def _handle_report_gclock(self, request: Request) -> None:
        """A node reports a GClock timestamp it issued (used on the GClock
        to GTM path so the counter ends up above every issued timestamp)."""
        _kind, gclock_ts, gclock_err = request.body
        self._observe_gclock(gclock_ts, gclock_err)
        request.reply(("ok",))

    def _observe_gclock(self, gclock_ts: int, gclock_err: int) -> None:
        if gclock_ts > self.max_gclock_seen:
            self.max_gclock_seen = gclock_ts
        if gclock_err > self.max_err_seen:
            self.max_err_seen = gclock_err

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def _handle_set_mode(self, request: Request) -> None:
        _kind, mode = request.body
        try:
            self.set_mode(mode)
        except ModeTransitionError as exc:
            request.fail(exc)
            return
        request.reply(("ok", self.max_err_seen))

    def set_mode(self, mode: TxnMode) -> None:
        """Switch the server's mode (validating the legal transitions)."""
        legal = {
            (TxnMode.GTM, TxnMode.DUAL),
            (TxnMode.DUAL, TxnMode.GCLOCK),
            (TxnMode.GCLOCK, TxnMode.DUAL),
            (TxnMode.DUAL, TxnMode.GTM),
        }
        if mode is self.mode:
            return
        if (self.mode, mode) not in legal:
            raise ModeTransitionError(
                f"illegal GTM server transition {self.mode} -> {mode}")
        if mode is TxnMode.DUAL:
            # Fresh transition window: start tracking error bounds anew.
            self.max_err_seen = 0
        if mode is TxnMode.GTM:
            # Counter must exceed every GClock timestamp issued so far
            # (Fig. 3), so no transaction needs to abort.
            self.counter = max(self.counter, self.max_gclock_seen) + 1
        self.mode = mode

    def _handle_get_state(self, request: Request) -> None:
        request.reply({
            "mode": self.mode,
            "counter": self.counter,
            "max_err_seen": self.max_err_seen,
            "max_gclock_seen": self.max_gclock_seen,
        })
