"""Live transaction-management migration, including clock-failure fallback.

The scenario §III-A motivates: a Three-City GlobalDB cluster is running in
GClock mode when a regional time device fails (GPS signal loss). The
operator migrates the live cluster to centralized GTM mode through DUAL
mode — with transactions flowing throughout — repairs the clock, and
migrates back. Per-window commit counts show zero downtime; the per-writer
timestamp check shows monotonicity straight through both transitions.

Run:  python examples/mode_migration.py
"""

from repro import ClusterConfig, TransactionAborted, build_cluster, three_city
from repro.sim.units import SECOND, ms

WINDOW_NS = ms(100)


def main() -> None:
    db = build_cluster(ClusterConfig.globaldb(three_city()))
    session = db.session(region="xian")
    session.execute("CREATE TABLE counters (id INT PRIMARY KEY, n INT)")
    env = db.env

    # Give each city's writer a counter row homed on a local shard, as a
    # well-placed application would (the paper's "physical affinity").
    local_key: dict[str, int] = {}
    candidate = 1
    while len(local_key) < len(db.cns):
        shard = db.shard_map.shard_for_value("counters", candidate)
        region = db.primaries[shard].region
        if region not in local_key:
            local_key[region] = candidate
        candidate += 1
    keys = [local_key[cn.region] for cn in db.cns]
    session.begin()
    for key in keys:
        session.insert("counters", {"id": key, "n": 0})
    session.commit()

    commits_by_window: dict[int, int] = {}
    per_writer_ts: dict[int, list] = {key: [] for key in keys}
    events: list[tuple[int, str]] = []
    stop_at = env.now + 8 * SECOND

    def writer(index, key):
        cn = db.cns[index]
        while env.now < stop_at:
            ctx = yield from cn.g_begin()
            try:
                yield from cn.g_update(ctx, "counters", (key,), {
                    "n": lambda n: (n or 0) + 1})
                ts = yield from cn.g_commit(ctx)
                per_writer_ts[key].append(ts)
                window = env.now // WINDOW_NS
                commits_by_window[window] = commits_by_window.get(window, 0) + 1
            except TransactionAborted as exc:
                events.append((env.now, f"txn aborted: {exc.reason}"))

    for index, key in enumerate(keys):
        env.process(writer(index, key))

    def conductor():
        yield env.timeout(round(0.6 * SECOND))
        device = db.cns[0].sync.device
        device.fail()
        events.append((env.now, "TIME DEVICE FAILED in xian (GPS loss)"))
        # The error bound grows with unsynced drift; after a few seconds
        # the clock is no longer trustworthy for GClock transactions.
        yield env.timeout(round(4.8 * SECOND))
        events.append((env.now, f"xian clock healthy? "
                                f"{db.cns[0].gclock.healthy} -> fall back to GTM"))
        report = yield from db.migration.to_gtm()
        events.append((env.now, f"now in GTM mode "
                                f"(transition took {report.duration_ns / 1e6:.0f} ms, "
                                f"no dwell needed)"))
        yield env.timeout(round(1.0 * SECOND))
        device.recover()
        events.append((env.now, "time device repaired"))
        yield env.timeout(round(0.2 * SECOND))
        report = yield from db.migration.to_gclock()
        events.append((env.now, f"back in GClock mode "
                                f"(dwell {report.dwell_ns / 1e3:.0f} us = "
                                f"2 x max error bound)"))

    env.process(conductor())
    env.run(until=stop_at)

    print("timeline:")
    for when, message in events:
        print(f"  t={when / 1e9:5.2f}s  {message}")

    print("\ncommits per 100 ms window (zero anywhere = downtime):")
    windows = sorted(commits_by_window)
    counts = [commits_by_window[w] for w in windows]
    print("  " + " ".join(f"{count:3d}" for count in counts))
    print(f"  zero-commit windows: {sum(1 for c in counts if c == 0)}")

    for key, series in per_writer_ts.items():
        monotone = series == sorted(series) and len(set(series)) == len(series)
        print(f"writer {key}: {len(series)} commits, timestamps strictly "
              f"increasing through both transitions: {monotone}")


if __name__ == "__main__":
    main()
