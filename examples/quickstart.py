"""Quickstart: a geo-distributed GlobalDB cluster in a few lines.

Builds the paper's Three-City cluster (Xi'an / Langzhong / Dongguan),
creates a table over SQL, writes from one city, and reads — with guaranteed
consistency — from asynchronous replicas in another city. Finishes with a
live GClock -> GTM -> GClock round trip to show the zero-downtime
transition.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, build_cluster, three_city


def main() -> None:
    db = build_cluster(ClusterConfig.globaldb(three_city()))
    print(f"cluster up: {len(db.cns)} CNs, {len(db.primaries)} primary DNs, "
          f"{sum(len(r) for r in db.replicas.values())} replica DNs, "
          f"txn mode = {db.cns[0].mode}")

    # --- DDL + writes from Xi'an ---------------------------------------
    xian = db.session(region="xian")
    xian.execute("CREATE TABLE inventory (sku INT PRIMARY KEY, "
                 "name TEXT, stock INT)")
    xian.execute("INSERT INTO inventory (sku, name, stock) VALUES "
                 "(1, 'kunpeng-920', 40), (2, 'taishan-2480', 12), "
                 "(3, 'atlas-800', 7)")
    print("loaded 3 SKUs from the Xi'an session")

    # --- let async replication and the RCP catch up --------------------
    db.run_for(0.5)

    # --- consistent reads on replicas from Dongguan --------------------
    dongguan = db.session(region="dongguan")
    rows = dongguan.execute("SELECT * FROM inventory WHERE sku = 2")
    print(f"read from Dongguan: {rows[0]}")
    print(f"Dongguan CN's Replica Consistency Point: {dongguan.rcp} "
          f"(reads at this timestamp are consistent across all shards)")
    print(f"replica reads so far: {dongguan.cn.ror_reads}, "
          f"primary fallbacks: {dongguan.cn.primary_fallback_reads}")

    # --- read-modify-write pushed down as one atomic statement ---------
    xian.execute("UPDATE inventory SET stock = stock - 1 WHERE sku = 2")
    fresh = xian.execute("SELECT stock FROM inventory WHERE sku = 2")
    print(f"after a sale, Xi'an reads its own write immediately: {fresh[0]}")

    # --- zero-downtime transition to centralized management ------------
    report = db.migrate_to_gtm()
    print(f"migrated to GTM mode in "
          f"{report.duration_ns / 1e6:.1f} ms of simulated time "
          f"(mode now {db.gtm.mode}, no transactions aborted)")
    back = db.migrate_to_gclock()
    print(f"and back to GClock (dwell: {back.dwell_ns / 1e3:.0f} us = "
          f"2 x max clock error bound, per Fig. 2)")

    xian.execute("UPDATE inventory SET stock = stock + 100 WHERE sku = 3")
    print("writes keep flowing after two live migrations:",
          xian.execute("SELECT * FROM inventory WHERE sku = 3")[0])


if __name__ == "__main__":
    main()
