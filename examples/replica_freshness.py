"""Reads on replicas: consistency, tunable freshness, and failover (§IV).

Demonstrates, on the Three-City cluster:

1. the RCP is monotone and replica reads at it are consistent — a
   cross-shard invariant (total balance) holds at every snapshot even
   while writers keep moving money between shards;
2. staleness bounds: a query can demand fresher data than the local
   replica has and get routed (or refused) accordingly;
3. failover: killing a replica reroutes reads, first to the other local
   candidates, then to the primary; the RCP keeps advancing.

Run:  python examples/replica_freshness.py
"""

from repro import ClusterConfig, StalenessBoundError, build_cluster, three_city
from repro.errors import TransactionAborted
from repro.sim.units import SECOND

ACCOUNTS = 24
OPENING_BALANCE = 1000


def main() -> None:
    db = build_cluster(ClusterConfig.globaldb(three_city()))
    env = db.env
    session = db.session(region="xian")
    session.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)")
    session.begin()
    for account in range(ACCOUNTS):
        session.insert("accounts", {"id": account,
                                    "balance": OPENING_BALANCE})
    session.commit()
    db.run_for(0.3)

    # --- writers keep transferring money between random shards ---------
    import random
    rng = random.Random(7)
    stop_at = env.now + 3 * SECOND

    def transfer_loop():
        cn = db.cns[0]
        while env.now < stop_at:
            src, dst = rng.sample(range(ACCOUNTS), 2)
            amount = rng.randint(1, 50)
            ctx = yield from cn.g_begin()
            try:
                yield from cn.g_update(ctx, "accounts", (src,), {
                    "balance": lambda b, a=amount: (b or 0) - a})
                yield from cn.g_update(ctx, "accounts", (dst,), {
                    "balance": lambda b, a=amount: (b or 0) + a})
                yield from cn.g_commit(ctx)
            except TransactionAborted:
                pass

    for _ in range(4):
        env.process(transfer_loop())

    # --- an auditor in Dongguan checks the invariant on replicas -------
    audits = []
    auditor_session = db.session(region="dongguan")

    def auditor():
        cn = auditor_session.cn
        while env.now < stop_at:
            rows = yield from cn.g_scan_only("accounts")
            total = sum(row["balance"] for row in rows)
            audits.append((cn.rcp_state.rcp, total))
            yield env.timeout(SECOND // 10)

    env.process(auditor())
    env.run(until=stop_at)

    expected = ACCOUNTS * OPENING_BALANCE
    consistent = all(total == expected for _rcp, total in audits)
    rcps = [rcp for rcp, _total in audits]
    print(f"auditor ran {len(audits)} consistent scans on async replicas "
          f"while money moved between shards:")
    print(f"  every snapshot's total == {expected}: {consistent}")
    print(f"  RCP monotone across scans: {rcps == sorted(rcps)}")
    ror = sum(cn.ror_reads for cn in db.cns)
    print(f"  reads served by replicas: {ror}")

    # --- tunable freshness ---------------------------------------------
    print("\nfreshness bounds (from the Dongguan session):")
    row = auditor_session.read_only("accounts", (0,), max_staleness_ms=2000)
    print(f"  <=2000 ms staleness: served, balance={row['balance']}")
    try:
        auditor_session.read_only("accounts", (0,), max_staleness_ms=0.0001)
        print("  <=0.1 us staleness: served (unexpected!)")
    except StalenessBoundError as exc:
        print(f"  <=0.1 us staleness: refused ({exc})")

    # --- failover --------------------------------------------------------
    print("\nfailover:")
    shard = db.shard_map.shard_for_key("accounts", (0,))
    local_replicas = [replica for replica in db.replicas[shard]
                      if replica.region == "dongguan"]
    for replica in local_replicas:
        replica.fail()
        print(f"  killed {replica.name} (dongguan's local replica of "
              f"shard {shard})")
    db.run_for(0.3)  # metrics notice
    before = auditor_session.cn.primary_fallback_reads
    row = auditor_session.read_only("accounts", (0,))
    rerouted = ("remote replica/primary"
                if auditor_session.cn.primary_fallback_reads > before
                else "another replica")
    print(f"  read still answered (balance={row['balance']}), "
          f"served by {rerouted}")
    rcp_before = auditor_session.rcp
    db.run_for(0.5)
    print(f"  RCP kept advancing despite the dead replica: "
          f"{auditor_session.rcp > rcp_before}")


if __name__ == "__main__":
    main()
