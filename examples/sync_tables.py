"""Per-table synchronous replication (the paper's future-work feature).

The paper's conclusion sketches "synchronous replicated tables that
co-exist with asynchronous tables to meet specific business requirements by
trading off update performance in favor of maximizing freshness". This
library implements it: mark a table ``sync_replication=True`` and commits
touching it wait for every replica's acknowledgement, while the rest of the
database keeps GlobalDB's asynchronous speed.

The demo: a trading firm keeps its high-volume ``orders`` table async
(fast commits, RCP-fresh reads) but its low-volume ``compliance_log``
synchronous (an auditor in any city reading right after a commit sees it,
no RCP wait).

Run:  python examples/sync_tables.py
"""

from repro import ClusterConfig, build_cluster, three_city
from repro.sim.units import ns_to_ms


def main() -> None:
    db = build_cluster(ClusterConfig.globaldb(three_city()))
    xian = db.session(region="xian")
    xian.create_table("orders", [("id", "int"), ("qty", "int")],
                      primary_key=["id"])
    xian.create_table("compliance_log", [("id", "int"), ("event", "text")],
                      primary_key=["id"], sync_replication=True)

    def local_id(table):
        """An id homed on a Xi'an shard (well-placed data, as in §V-A)."""
        for candidate in range(1, 500):
            shard = db.shard_map.shard_for_key(table, (candidate,))
            if db.primaries[shard].region == "xian":
                return candidate
        raise RuntimeError("no local id found")

    def timed_commit(table, row):
        start = db.env.now
        xian.begin()
        xian.insert(table, row)
        xian.commit()
        return ns_to_ms(db.env.now - start)

    order_id = local_id("orders")
    log_id = local_id("compliance_log")
    async_ms = timed_commit("orders", {"id": order_id, "qty": 500})
    sync_ms = timed_commit("compliance_log",
                           {"id": log_id, "event": "large-trade"})
    print(f"async  table commit: {async_ms:7.2f} ms "
          f"(no replica waits; freshness via the RCP)")
    print(f"sync   table commit: {sync_ms:7.2f} ms "
          f"(waited for acks from replicas in the other two cities)")

    # The payoff: a reader in Dongguan sees the compliance entry
    # *immediately* — its replica acknowledged (and replays within
    # microseconds), no RCP catch-up required.
    shard = db.shard_map.shard_for_key("compliance_log", (log_id,))
    db.run_for(0.005)  # the acked batch's replay time
    from repro.storage.snapshot import Snapshot
    for replica in db.replicas[shard]:
        row = replica.store.read("compliance_log", (log_id,),
                                 Snapshot(replica.store.max_commit_ts))
        print(f"  {replica.name} ({replica.region}): sees compliance "
              f"entry = {row is not None}")

    stats = db.stats()
    print(f"\ncluster stats: commits={stats['commits']}, "
          f"mode={stats['mode']}, "
          f"mean commit wait={stats['mean_commit_wait_ms']:.3f} ms")


if __name__ == "__main__":
    main()
