"""Global retail: the workload the paper's introduction motivates.

A retailer serves customers in three cities. Each city's application
servers write orders for locally-homed stores and browse the catalog and
order history constantly. This script contrasts the two deployments the
paper compares:

- **baseline** (stock GaussDB): centralized GTM timestamps + synchronous
  cross-region replication + all reads on primaries;
- **GlobalDB**: GClock timestamps + async replication + consistent reads
  on local replicas.

and prints per-city write/read latencies for both.

Run:  python examples/global_retail.py
"""

from repro import ClusterConfig, build_cluster, three_city
from repro.sim.units import ns_to_ms

CITIES = ("xian", "langzhong", "dongguan")


def setup_schema(db):
    session = db.session(region="xian")
    session.execute(
        "CREATE TABLE stores (store_id INT PRIMARY KEY, city TEXT)")
    session.execute(
        "CREATE TABLE orders (store_id INT, order_id INT, item TEXT, "
        "qty INT, PRIMARY KEY (store_id, order_id)) DISTRIBUTE BY "
        "HASH(store_id)")
    session.execute(
        "CREATE TABLE catalog (item TEXT PRIMARY KEY, price FLOAT) "
        "DISTRIBUTE BY REPLICATION")
    session.execute("INSERT INTO catalog (item, price) VALUES "
                    "('laptop', 999.0), ('phone', 599.0), ('tablet', 399.0)")
    # One store per city, homed with its city's shard when possible.
    for store_id in range(1, 10):
        shard = db.shard_map.shard_for_value("orders", store_id)
        city = db.primaries[shard].region
        session.begin()
        session.insert("stores", {"store_id": store_id, "city": city})
        session.commit()
    db.run_for(0.4)
    return {
        city: [row["store_id"]
               for row in session.scan_only(
                   "stores", predicate=lambda r, c=city: r["city"] == c)]
        for city in CITIES
    }


def run_city_traffic(db, stores_by_city, label):
    print(f"\n--- {label} ---")
    order_id = 1000
    for city in CITIES:
        stores = stores_by_city[city] or [1]
        session = db.session(region=city)
        store = stores[0]

        # A local write: customer places an order.
        start = db.env.now
        session.begin()
        order_id += 1
        session.insert("orders", {"store_id": store, "order_id": order_id,
                                  "item": "laptop", "qty": 1})
        session.commit()
        write_ms = ns_to_ms(db.env.now - start)

        # A local read: customer browses the catalog (read-only query).
        start = db.env.now
        session.read_only("catalog", ("laptop",))
        catalog_ms = ns_to_ms(db.env.now - start)

        # A cross-city read from a *different* client (the support desk):
        # an order homed elsewhere, served by the local replica. (The
        # writing session itself would briefly fall back to the remote
        # primary for read-your-writes until the RCP covers its commit.)
        support = db.session(region=city)
        other_city = CITIES[(CITIES.index(city) + 1) % 3]
        other_store = (stores_by_city[other_city] or [2])[0]
        start = db.env.now
        support.read_only("orders", (other_store, 1001),
                          max_staleness_ms=5000)
        remote_ms = ns_to_ms(db.env.now - start)

        print(f"  {city:10s} order commit {write_ms:7.2f} ms | "
              f"catalog read {catalog_ms:6.2f} ms | "
              f"remote-order read {remote_ms:6.2f} ms")


def main() -> None:
    for label, config_fn in [("baseline GaussDB (GTM + sync replication)",
                              ClusterConfig.baseline),
                             ("GlobalDB (GClock + async replicas + ROR)",
                              ClusterConfig.globaldb)]:
        db = build_cluster(config_fn(three_city()))
        stores_by_city = setup_schema(db)
        db.run_for(0.3)
        run_city_traffic(db, stores_by_city, label)
        ror = sum(cn.ror_reads for cn in db.cns)
        print(f"  reads served by replicas: {ror}")


if __name__ == "__main__":
    main()
