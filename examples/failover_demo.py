"""Primary failure, replica service, and automatic promotion.

§IV: "If a primary node fails, its replica nodes can continue to serve
read-only queries until the failed primary node recovers, or a replica
node is promoted to replace the primary node."

Timeline of this demo (Three-City cluster, auto-failover on):

1. a shard's primary in Langzhong dies mid-traffic;
2. reads of that shard keep working instantly (served by replicas at the
   RCP);
3. writes to the shard abort cleanly until the failover manager's grace
   period expires;
4. the most-caught-up replica is promoted, surviving replicas are rebuilt
   from its snapshot, and writes resume — including the async-replication
   data-loss accounting for the unreplicated tail.

Run:  python examples/failover_demo.py
"""

from repro import ClusterConfig, TransactionAborted, build_cluster, three_city
from repro.sim.units import ms, ns_to_ms


def main() -> None:
    db = build_cluster(ClusterConfig.globaldb(
        three_city(), auto_failover=True, failover_grace_ns=ms(300)))
    session = db.session(region="xian")
    session.create_table("inventory", [("sku", "int"), ("stock", "int")],
                         primary_key=["sku"])
    session.begin()
    for sku in range(40):
        session.insert("inventory", {"sku": sku, "stock": 100})
    session.commit()
    db.run_for(0.4)

    victim_shard = 1
    victim = db.primaries[victim_shard]
    sku = next(s for s in range(40)
               if db.shard_map.shard_for_key("inventory", (s,)) == victim_shard)
    print(f"shard {victim_shard}: primary {victim.name} in {victim.region}, "
          f"replicas "
          f"{[(r.name, r.region) for r in db.replicas[victim_shard]]}")

    print(f"\nt={db.env.now / 1e9:.2f}s  KILLING {victim.name}")
    victim.fail()

    # 1. Reads keep working immediately (replicas at the RCP).
    db.run_for(0.1)
    row = session.read_only("inventory", (sku,))
    print(f"t={db.env.now / 1e9:.2f}s  read of sku {sku} during the outage: "
          f"stock={row['stock']} (served by a replica)")

    # 2. A write inside the grace period aborts cleanly.
    session.begin()
    try:
        session.update("inventory", (sku,), {"stock": 99})
        session.commit()
        print("unexpected: write succeeded before promotion")
    except TransactionAborted as exc:
        print(f"t={db.env.now / 1e9:.2f}s  write during outage aborted "
              f"cleanly: {exc.reason[:60]}...")

    # 3. Wait out the grace period; the manager promotes.
    db.run_for(3.0)
    event = db.failover.events[0]
    print(f"\nt={event.at_ns / 1e9:.2f}s  FAILOVER: {event.old_primary} -> "
          f"{event.new_primary} (in-doubt txns aborted: "
          f"{event.in_doubt_aborted}, lost commit-ts window: "
          f"{ns_to_ms(event.lost_commit_ts_window):.1f} ms of frontier)")

    # 4. Writes flow again through the new primary.
    session.begin()
    session.update("inventory", (sku,), {"stock": 55})
    session.commit()
    check = db.session(region="dongguan")
    db.run_for(0.5)
    row = check.read_only("inventory", (sku,))
    print(f"t={db.env.now / 1e9:.2f}s  write resumed; Dongguan replica read "
          f"sees stock={row['stock']}")
    print(f"new primary for shard {victim_shard}: "
          f"{db.primaries[victim_shard].name} "
          f"({db.primaries[victim_shard].region})")


if __name__ == "__main__":
    main()
