"""Tests driving data-node RPC handlers directly (batches, status,
heartbeats, conflicts, unknown requests) and GTM server details."""

from repro import ClusterConfig, TxnMode, build_cluster, one_region
from repro.errors import WriteConflict
from repro.sim.units import ms, us


def make_db():
    db = build_cluster(ClusterConfig.globaldb(one_region()))
    session = db.session()
    session.create_table("t", [("k", "int"), ("v", "int")],
                         primary_key=["k"])
    session.begin()
    for i in range(30):
        session.insert("t", {"k": i, "v": i * 10})
    session.commit()
    db.run_for(0.3)
    return db, session


def rpc(db, src, dst, body, timeout_ns=None):
    request = db.network.request(src.name, dst, body, timeout_ns=timeout_ns)

    def waiter():
        reply = yield request
        return reply

    return db.env.run(until=db.env.process(waiter()))


class TestBatchReads:
    def test_read_batch_on_primary(self):
        db, session = make_db()
        cn = db.cns[0]
        shard = db.shard_map.shard_for_key("t", (0,))
        keys = [(k,) for k in range(30)
                if db.shard_map.shard_for_key("t", (k,)) == shard]
        rows, read_ts = rpc(db, cn, db.primaries[shard].name,
                            ("read_batch", None, None, "t", keys))
        assert len(rows) == len(keys)
        assert all(row is not None for row in rows)
        assert read_ts > 0

    def test_read_batch_missing_keys_give_none(self):
        db, session = make_db()
        cn = db.cns[0]
        shard = db.shard_map.shard_for_key("t", (999,))
        rows, _ts = rpc(db, cn, db.primaries[shard].name,
                        ("read_batch", None, None, "t", [(999,)]))
        assert rows == [None]

    def test_replica_batch_read(self):
        db, session = make_db()
        cn = db.cns[0]
        shard = db.shard_map.shard_for_key("t", (0,))
        keys = [(k,) for k in range(30)
                if db.shard_map.shard_for_key("t", (k,)) == shard]
        replica = db.replicas[shard][0]
        rcp = cn.rcp_state.rcp
        rows, _ts = rpc(db, cn, replica.name,
                        ("read_replica_batch", rcp, "t", keys))
        assert all(row is not None for row in rows)


class TestStatusSurface:
    def test_primary_status_fields(self):
        db, _session = make_db()
        status = rpc(db, db.cns[0], db.primaries[0].name, ("status",))
        assert status["role"] == "primary"
        assert status["up"] is True
        assert status["max_commit_ts"] > 0
        assert status["shard"] == 0

    def test_replica_status_reports_backlog_in_load(self):
        db, _session = make_db()
        replica = db.replicas[0][0]
        status = rpc(db, db.cns[0], replica.name, ("status",))
        assert status["role"] == "replica"
        assert status["load"] >= 0

    def test_unknown_request_fails_cleanly(self):
        db, _session = make_db()
        request = db.network.request(db.cns[0].name, db.primaries[0].name,
                                     ("frobnicate",))

        def waiter():
            try:
                yield request
            except ValueError as exc:
                return str(exc)

        message = db.env.run(until=db.env.process(waiter()))
        assert "unknown request" in message


class TestHeartbeatRpc:
    def test_gclock_heartbeat_uses_clock_lower_bound(self):
        db, _session = make_db()
        primary = db.primaries[0]
        before = primary.engine.last_commit_ts
        _ok, ts = rpc(db, db.cns[0], primary.name, ("heartbeat",))
        assert ts >= before
        earliest, latest = primary.gclock.bounds()
        assert ts <= latest  # never beyond the clock's upper bound

    def test_gtm_heartbeat_contacts_server(self):
        db = build_cluster(ClusterConfig.baseline(one_region()))
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        begins_before = db.gtm.begin_requests
        rpc(db, db.cns[0], db.primaries[0].name, ("heartbeat",))
        assert db.gtm.begin_requests == begins_before + 1


class TestWriteConflictSurface:
    def test_conflicting_update_times_out_and_reports(self):
        db, session = make_db()
        cn = db.cns[0]
        shard = db.shard_map.shard_for_key("t", (0,))
        key = next(k for k in range(30)
                   if db.shard_map.shard_for_key("t", (k,)) == shard)
        primary = db.primaries[shard]
        # Shrink the lock timeout so the test is fast.
        primary.engine.locks.default_timeout_ns = ms(20)

        def holder():
            ctx = yield from cn.g_begin()
            yield from cn.g_update(ctx, "t", (key,), {"v": 1})
            yield db.env.timeout(ms(100))  # hold the lock
            yield from cn.g_commit(ctx)

        outcome = []

        def contender():
            yield db.env.timeout(ms(2))
            ctx = yield from cn.g_begin()
            try:
                yield from cn.g_update(ctx, "t", (key,), {"v": 2})
            except WriteConflict as exc:
                outcome.append(str(exc))

        db.env.process(holder())
        db.env.process(contender())
        db.run_for(0.3)
        assert outcome and "timeout" in outcome[0]


class TestGtmServerDetails:
    def test_service_time_delays_replies(self):
        db = build_cluster(ClusterConfig.baseline(one_region()))
        cn = next(c for c in db.cns if c.region == db.gtm.region)
        start = db.env.now
        rpc(db, cn, "gtms", ("begin",))
        elapsed = db.env.now - start
        # Same-server link is ~free; the 2 us service time dominates.
        assert elapsed >= us(2)

    def test_get_state_snapshot(self):
        db = build_cluster(ClusterConfig.baseline(one_region()))
        state = rpc(db, db.cns[0], "gtms", ("get_state",))
        assert state["mode"] is TxnMode.GTM
        assert state["counter"] >= 0

    def test_report_gclock_raises_watermarks(self):
        db = build_cluster(ClusterConfig.baseline(one_region()))
        rpc(db, db.cns[0], "gtms", ("report_gclock", 10**15, 70_000))
        assert db.gtm.max_gclock_seen == 10**15
        assert db.gtm.max_err_seen == 70_000
