"""Schema validation details."""

import pytest

from repro.errors import StorageError
from repro.storage.catalog import ColumnDef, DistributionSpec, TableSchema


def test_unknown_distribution_method_rejected():
    with pytest.raises(StorageError, match="unknown distribution"):
        TableSchema("t", [ColumnDef("k")], ("k",),
                    distribution=DistributionSpec("replication"))


def test_known_methods_accepted():
    for method in ("hash", "range", "replicated"):
        schema = TableSchema("t", [ColumnDef("k")], ("k",),
                             distribution=DistributionSpec(method, "k"))
        assert schema.distribution.method == method


def test_key_of_missing_column():
    schema = TableSchema("t", [ColumnDef("a"), ColumnDef("b")], ("a", "b"))
    with pytest.raises(StorageError, match="missing primary key"):
        schema.key_of({"a": 1})


def test_column_names_helper():
    schema = TableSchema("t", [ColumnDef("a"), ColumnDef("b")], ("a",))
    assert schema.column_names() == ["a", "b"]
