"""DUAL-mode migration under faults, as minimal explore reproducers.

Each scenario is written in the fuzzer's reproducer format — a
:class:`~repro.explore.spec.TrialSpec` with a small named fault schedule,
run through :func:`~repro.explore.runner.run_trial` — so a failing case
here *is* a replay artifact body: paste the spec JSON into a reproducer
file and ``python -m repro.explore replay`` it.

The scenarios pin the paper's §III-C availability claims under fire:

- a GTM crash mid-transition must fail the migration leg gracefully
  (recorded, not fatal) and never corrupt the history;
- a region partition mid-transition must likewise leave the cluster
  consistent, whichever mode it ends up in;
- the same schedules starting from GTM mode exercise the reverse trip.

Every case asserts the full checker + oracle verdict (``result.ok``) and
that the trial is deterministic (stable violation digest), which is what
makes these usable as regression reproducers.
"""

from __future__ import annotations

import pytest

from repro.chaos.injectors import (
    GtmOutage,
    MigrationUnderFire,
    NodeCrash,
    RegionPartition,
)
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.explore import TrialSpec, run_trial


def _migration_spec(name: str, disturbance: FaultSpec, mode: str,
                    seed: int = 5) -> TrialSpec:
    """The minimal-reproducer shape: one migration + one disturbance."""
    return TrialSpec(
        seed=seed,
        schedule=FaultSchedule(name, (
            FaultSpec(MigrationUnderFire(), at_s=0.15),
            disturbance,
        )),
        mode=mode,
        duration_s=0.6,
        warmup_s=0.05,
    )


SCENARIOS = [
    pytest.param(
        FaultSpec(GtmOutage(), at_s=0.2, duration_s=0.15), "gclock",
        id="gtm-outage-mid-transition-from-gclock"),
    pytest.param(
        FaultSpec(GtmOutage(), at_s=0.2, duration_s=0.15), "gtm",
        id="gtm-outage-mid-transition-from-gtm"),
    pytest.param(
        FaultSpec(NodeCrash("cn"), at_s=0.2, duration_s=0.2), "gclock",
        id="cn-crash-mid-transition"),
    pytest.param(
        FaultSpec(RegionPartition("xian", "langzhong"), at_s=0.2,
                  duration_s=0.2), "gclock",
        id="region-partition-mid-transition-from-gclock"),
    pytest.param(
        FaultSpec(RegionPartition("xian", "dongguan"), at_s=0.2,
                  duration_s=0.2), "gtm",
        id="region-partition-mid-transition-from-gtm"),
]


@pytest.mark.parametrize("disturbance,mode", SCENARIOS)
def test_migration_under_fault_stays_consistent(disturbance, mode):
    spec = _migration_spec(f"mig-{disturbance.injector.name}-{mode}",
                           disturbance, mode)
    result = run_trial(spec)
    assert result.ok, result.violations
    # The cluster made progress despite migrating under fire.
    assert result.committed > 0
    # A failed or still-in-flight leg is an acceptable outcome (the
    # disturbance may overlap the DUAL entry or stall the supervisor);
    # a corrupted history is not — result.ok above is the real
    # assertion. Both faults must at least have fired.
    assert result.chaos_events >= 2


@pytest.mark.parametrize("disturbance,mode", SCENARIOS[:2])
def test_migration_scenarios_are_deterministic(disturbance, mode):
    spec = _migration_spec(f"mig-det-{mode}", disturbance, mode)
    first = run_trial(spec)
    again = run_trial(spec)
    assert first.violation_digest == again.violation_digest
    assert first.history_digest == again.history_digest
    assert first.signature == again.signature


def test_migration_spec_roundtrips_as_reproducer():
    spec = _migration_spec(
        "mig-roundtrip", FaultSpec(GtmOutage(), at_s=0.2, duration_s=0.15),
        "gclock")
    rebuilt = TrialSpec.from_json(spec.to_json())
    assert rebuilt.digest() == spec.digest()
    # The rebuilt spec replays to the same verdict — the artifact
    # property the explore CLI relies on.
    assert (run_trial(rebuilt).violation_digest
            == run_trial(spec).violation_digest)
