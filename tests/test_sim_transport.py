"""Unit tests for transport models (compression, congestion, Nagle)."""

import pytest

from repro.sim.transport import (
    BBR,
    CUBIC,
    LZ4,
    NAGLE_OFF,
    NAGLE_ON,
    NO_COMPRESSION,
    TransportConfig,
)
from repro.sim.units import ms, seconds


class TestCompression:
    def test_no_compression_passthrough(self):
        wire, cpu = NO_COMPRESSION.compress(10_000)
        assert wire == 10_000
        assert cpu == 0

    def test_lz4_shrinks_bytes(self):
        wire, cpu = LZ4.compress(28_000)
        assert wire == 10_000
        assert cpu > 0

    def test_empty_payload(self):
        assert LZ4.compress(0) == (0, 0)

    def test_tiny_payload_never_rounds_to_zero(self):
        wire, _cpu = LZ4.compress(1)
        assert wire >= 1


class TestCongestion:
    def test_bbr_holds_near_link_rate_regardless_of_rtt(self):
        link = 1e9  # 1 Gbit/s
        assert BBR.effective_bandwidth(link, ms(1)) == pytest.approx(0.95e9)
        assert BBR.effective_bandwidth(link, ms(55)) == pytest.approx(0.95e9)

    def test_cubic_collapses_on_long_fat_networks(self):
        link = 1e9
        lan = CUBIC.effective_bandwidth(link, ms(0.1))
        wan = CUBIC.effective_bandwidth(link, ms(55))
        assert lan == link  # Mathis bound above the link rate on a LAN
        assert wan < link / 5  # badly degraded at 55 ms RTT

    def test_cubic_never_exceeds_link(self):
        assert CUBIC.effective_bandwidth(1e6, ms(0.01)) <= 1e6

    def test_zero_rtt_means_link_rate(self):
        assert CUBIC.effective_bandwidth(1e9, 0) == 1e9
        assert BBR.effective_bandwidth(1e9, 0) == 1e9


class TestNagle:
    def test_disabled_never_penalizes(self):
        assert NAGLE_OFF.send_penalty_ns(10, ms(50), 0) == 0

    def test_full_segment_not_delayed(self):
        assert NAGLE_ON.send_penalty_ns(1460, ms(50), 0) == 0

    def test_small_segment_waits_for_ack(self):
        # Sent immediately after the previous one: waits a full RTT.
        assert NAGLE_ON.send_penalty_ns(100, ms(50), 0) == ms(50)
        # Sent halfway through the RTT: waits the remainder.
        assert NAGLE_ON.send_penalty_ns(100, ms(50), ms(20)) == ms(30)

    def test_idle_connection_not_delayed(self):
        assert NAGLE_ON.send_penalty_ns(100, ms(50), ms(50)) == 0
        assert NAGLE_ON.send_penalty_ns(100, ms(50), seconds(1)) == 0


class TestTransportConfig:
    def test_baseline_matches_stock_gaussdb(self):
        config = TransportConfig.baseline()
        assert config.compression is NO_COMPRESSION
        assert config.congestion is CUBIC
        assert config.nagle.enabled

    def test_optimized_matches_globaldb(self):
        config = TransportConfig.optimized()
        assert config.compression is LZ4
        assert config.congestion is BBR
        assert not config.nagle.enabled

    def test_describe_mentions_every_knob(self):
        text = TransportConfig.optimized().describe()
        assert "lz4" in text and "bbr" in text and "nagle-off" in text
