"""Property tests: the calendar-queue kernel is order-equivalent to a
(when, priority, seq) heap.

The PR that introduced the calendar queue replaced the heapq event loop
with current-tick lanes + per-timestamp buckets + a min-heap of distinct
future timestamps. Its correctness argument is that dispatch order is
*identical* to the old kernel's lexicographic (when, priority, seq) heap
order. These tests check exactly that against a reference heapq model,
over randomized programs that schedule urgent/normal events, deferred
callbacks and timeouts — including re-entrant scheduling from inside
callbacks (same-tick lane appends, the calendar queue's trickiest path).

The pinned-digest test in tests/test_perf_caches.py covers the same
invariant end-to-end on the full cluster scenario; this file covers it
exhaustively at the kernel surface.
"""

import heapq
import itertools

from hypothesis import given, settings, strategies as st

from repro.sim.core import Environment
from repro.sim.events import (
    Event,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Timeout,
)

#: Node kinds and the priority each occupies in the reference model.
KINDS = {
    "event_urgent": PRIORITY_URGENT,
    "event_normal": PRIORITY_NORMAL,
    "defer": PRIORITY_NORMAL,    # defer() uses the normal lane/buckets
    "timeout": PRIORITY_NORMAL,  # Timeout schedules itself normally
}


@st.composite
def programs(draw):
    """A forest of schedule operations. Each node fires at
    ``parent_fire_time + delay`` and schedules its children from inside
    its callback (re-entrant scheduling)."""
    ids = itertools.count()

    def node(depth: int) -> tuple:
        delay = draw(st.integers(min_value=0, max_value=30))
        kind = draw(st.sampled_from(sorted(KINDS)))
        children = []
        if depth < 2:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                children.append(node(depth + 1))
        return (next(ids), delay, kind, children)

    return [node(0) for _ in range(draw(st.integers(min_value=1,
                                                    max_value=10)))]


def reference_order(program: list) -> list[tuple[int, int]]:
    """Dispatch order under the old kernel's model: a single heap ordered
    by (when, priority, seq), seq bumped on every push."""
    heap: list = []
    seq = itertools.count()
    fired: list[tuple[int, int]] = []

    def push(node, now):
        node_id, delay, kind, _children = node
        heapq.heappush(heap, (now + delay, KINDS[kind], next(seq), node))

    for node in program:
        push(node, 0)
    while heap:
        when, _priority, _seq, node = heapq.heappop(heap)
        fired.append((node[0], when))
        for child in node[3]:
            push(child, when)
    return fired


def schedule_on(env: Environment, node: tuple, fired: list) -> None:
    node_id, delay, kind, children = node

    def fire(_arg) -> None:
        fired.append((node_id, env.now))
        for child in children:
            schedule_on(env, child, fired)

    if kind == "defer":
        env.defer(delay, fire, None)
    elif kind == "timeout":
        timer = Timeout(env, delay)
        timer.callbacks.append(fire)
    else:
        event = Event(env)
        event.callbacks.append(fire)
        env.schedule(event, delay=delay, priority=KINDS[kind])


class TestCalendarQueueOrder:
    @settings(max_examples=200, deadline=None)
    @given(programs())
    def test_matches_heap_reference(self, program):
        env = Environment()
        fired: list[tuple[int, int]] = []
        for node in program:
            schedule_on(env, node, fired)
        env.run()
        assert fired == reference_order(program)

    @settings(max_examples=100, deadline=None)
    @given(programs(), st.integers(min_value=1, max_value=17))
    def test_chunked_run_until_matches_drain(self, program, stride):
        """Driving the kernel through run(until=...) windows must produce
        the same history as a single drain (exercises the inlined
        until-int loop and its time-barrier handling)."""
        env = Environment()
        fired: list[tuple[int, int]] = []
        for node in program:
            schedule_on(env, node, fired)
        while env.peek() is not None:
            env.run(until=env.now + stride)
        assert fired == reference_order(program)

    def test_same_tick_urgent_beats_earlier_normal(self):
        """Priority dominates insertion order within one tick."""
        env = Environment()
        fired: list[str] = []
        normal = Event(env)
        normal.callbacks.append(lambda _e: fired.append("normal"))
        env.schedule(normal, delay=5, priority=PRIORITY_NORMAL)
        urgent = Event(env)
        urgent.callbacks.append(lambda _e: fired.append("urgent"))
        env.schedule(urgent, delay=5, priority=PRIORITY_URGENT)
        env.run()
        assert fired == ["urgent", "normal"]

    def test_fifo_within_same_tick_and_priority(self):
        env = Environment()
        fired: list[int] = []
        for index in range(50):
            env.defer(7, fired.append, index)
        env.run()
        assert fired == list(range(50))
