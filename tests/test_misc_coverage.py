"""Coverage for smaller surfaces: stats snapshot, network accounting,
SQL executor edges, timestamp provider edges, and the bench CLI."""

import pytest

from repro import ClusterConfig, build_cluster, one_region
from repro.bench.__main__ import EXPERIMENTS, main as bench_main
from repro.errors import SqlError
from repro.sim import Environment, ms
from repro.sim.network import Network, NetworkStats


class TestClusterStats:
    def test_stats_snapshot_fields(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1})
        session.commit()
        db.run_for(0.3)
        session.read_only("t", (1,))
        stats = db.stats()
        assert stats["commits"] >= 1
        assert stats["mode"] == "gclock"
        assert stats["rcp"] > 0
        assert stats["read_only_queries"] >= 1
        assert stats["wal_bytes"] > 0
        assert stats["wire_bytes_shipped"] > 0
        assert stats["replicas_up"] == 12
        assert stats["sim_time_s"] > 0

    def test_gtm_traffic_visible_in_stats(self):
        db = build_cluster(ClusterConfig.baseline(one_region()))
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1})
        session.commit()
        assert db.stats()["gtm_requests"] >= 2  # begin + commit at least


class TestNetworkStats:
    def test_capture_counts_bytes_per_link(self):
        env = Environment()
        net = Network(env)
        net.add_endpoint("a", "east")
        net.add_endpoint("b", "west")
        net.set_link("a", "b", latency_ns=ms(1))
        net.set_handler("b", lambda msg: None)
        net.send("a", "b", "x", size_bytes=500)
        env.run()
        stats = NetworkStats.capture(net)
        assert stats.messages_delivered == 1
        assert stats.bytes_by_link[("a", "b")] == 500


class TestSqlEdges:
    @pytest.fixture()
    def session(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        session = db.session()
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t (k, v) VALUES (1, 10), (2, 20)")
        return session

    def test_mixed_aggregate_and_column_rejected(self, session):
        with pytest.raises(SqlError):
            session.execute("SELECT k, COUNT(*) FROM t")

    def test_sum_over_empty_result_is_null(self, session):
        result = session.execute("SELECT SUM(v) AS s FROM t WHERE k = 99")
        assert result == [{"s": None}]

    def test_count_star_over_empty_is_zero(self, session):
        result = session.execute("SELECT COUNT(*) AS n FROM t WHERE k = 99")
        assert result == [{"n": 0}]

    def test_expression_projection(self, session):
        rows = session.execute("SELECT v * 2 AS twice FROM t WHERE k = 1")
        assert rows == [{"twice": 20}]

    def test_missing_parameter_raises(self, session):
        with pytest.raises(SqlError):
            session.execute("SELECT * FROM t WHERE k = ?")

    def test_avg_alias_default_name(self, session):
        result = session.execute("SELECT MIN(v) FROM t")
        assert result == [{"min(v)": 10}]

    def test_delete_without_where_clears_table(self, session):
        result = session.execute("DELETE FROM t")
        assert result["count"] == 2
        assert session.execute("SELECT COUNT(*) AS n FROM t") == [{"n": 0}]

    def test_not_operator(self, session):
        rows = session.execute("SELECT k FROM t WHERE NOT k = 1")
        assert rows == [{"k": 2}]

    def test_or_predicate_scans(self, session):
        rows = session.execute(
            "SELECT k FROM t WHERE k = 1 OR v = 20 ORDER BY k")
        assert [row["k"] for row in rows] == [1, 2]


class TestProviderEdges:
    def test_begin_no_wait_returns_clock_upper_bound(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        db.run_for(0.01)
        cn = db.cns[0]
        ts, mode = cn.provider.begin_no_wait()
        _earliest, latest = cn.gclock.bounds()
        assert ts <= latest
        assert cn.provider.stats.local_stamps >= 1


class TestBenchCli:
    def test_list_command(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1a", "fig6a", "fig6b", "fig6c", "fig6d",
            "migration", "shipping", "ror"}
