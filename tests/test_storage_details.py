"""Detail tests: redo records, WAL, clog, heap internals, catalog."""

import pytest

from repro.errors import StorageError, TransactionError
from repro.sim import Environment
from repro.storage import (
    Catalog,
    ColumnDef,
    CommitLog,
    HeapTable,
    RedoCommit,
    RedoDdl,
    RedoDelete,
    RedoHeartbeat,
    RedoInsert,
    RowVersion,
    Snapshot,
    StorageEngine,
    TableSchema,
    TxnStatus,
    WalBuffer,
)
from repro.storage.redo import RECORD_HEADER_BYTES


class TestRedoSizes:
    def test_insert_size_scales_with_row(self):
        small = RedoInsert(txid=1, table="t", key=(1,), row={"k": 1})
        big = RedoInsert(txid=1, table="t", key=(1,),
                         row={"k": 1, "blob": "x" * 500})
        assert big.size_bytes() > small.size_bytes() + 400

    def test_control_records_are_header_sized(self):
        assert RedoHeartbeat(txid=0, commit_ts=1).size_bytes() == \
            RECORD_HEADER_BYTES
        assert RedoCommit(txid=1, commit_ts=5).size_bytes() == \
            RECORD_HEADER_BYTES

    def test_delete_size_fixed(self):
        record = RedoDelete(txid=1, table="t", key=(1, 2, 3))
        assert record.size_bytes() == RECORD_HEADER_BYTES + 16

    def test_row_bytes_handles_types(self):
        record = RedoInsert(txid=1, table="t", key=(1,), row={
            "i": 42, "f": 3.14, "s": "hello", "n": None, "o": (1, 2)})
        assert record.size_bytes() > RECORD_HEADER_BYTES


class TestWal:
    def test_subscribers_called_in_order(self):
        wal = WalBuffer()
        seen = []
        wal.subscribe(lambda record: seen.append(("a", record.lsn)))
        wal.subscribe(lambda record: seen.append(("b", record.lsn)))
        wal.append(RedoHeartbeat(txid=0, commit_ts=1))
        assert seen == [("a", 1), ("b", 1)]

    def test_records_from_with_offset_start(self):
        wal = WalBuffer(start_lsn=100)
        first = RedoHeartbeat(txid=0, commit_ts=1)
        second = RedoHeartbeat(txid=0, commit_ts=2)
        wal.append(first)
        wal.append(second)
        assert first.lsn == 100
        assert wal.last_lsn == 101
        assert wal.records_from(99) == [first, second]
        assert wal.records_from(100) == [second]
        assert wal.records_from(101) == []

    def test_bytes_accounting(self):
        wal = WalBuffer()
        record = RedoInsert(txid=1, table="t", key=(1,), row={"k": 1})
        wal.append(record)
        assert wal.bytes_written == record.size_bytes()


class TestClogEdges:
    def test_double_begin_rejected(self):
        clog = CommitLog()
        clog.begin(1)
        with pytest.raises(TransactionError):
            clog.begin(1)

    def test_unknown_txn_status_rejected(self):
        clog = CommitLog()
        with pytest.raises(TransactionError):
            clog.status(42)

    def test_abort_after_commit_rejected(self):
        clog = CommitLog()
        clog.begin(1)
        clog.commit(1, 10)
        with pytest.raises(TransactionError):
            clog.abort(1)

    def test_commit_after_abort_rejected(self):
        clog = CommitLog()
        clog.begin(1)
        clog.abort(1)
        with pytest.raises(TransactionError):
            clog.commit(1, 10)

    def test_prepare_only_from_in_progress(self):
        clog = CommitLog()
        clog.begin(1)
        clog.abort(1)
        with pytest.raises(TransactionError):
            clog.prepare(1)

    def test_ensure_idempotent(self):
        clog = CommitLog()
        clog.ensure(5)
        clog.ensure(5)
        assert clog.status(5) is TxnStatus.IN_PROGRESS


class TestHeapInternals:
    def test_version_count_and_len(self):
        heap = HeapTable("t")
        heap.add_version(RowVersion((1,), {"k": 1}, xmin=1))
        heap.add_version(RowVersion((1,), {"k": 1, "v": 2}, xmin=2))
        heap.add_version(RowVersion((2,), {"k": 2}, xmin=1))
        assert len(heap) == 2
        assert heap.version_count() == 3

    def test_remove_last_version_drops_key(self):
        heap = HeapTable("t")
        version = RowVersion((1,), {"k": 1}, xmin=1)
        heap.add_version(version)
        heap.remove_version(version)
        assert len(heap) == 0
        assert heap.versions((1,)) == []

    def test_duplicate_index_rejected(self):
        heap = HeapTable("t")
        heap.create_index("v")
        with pytest.raises(StorageError):
            heap.create_index("v")

    def test_drop_missing_index_rejected(self):
        heap = HeapTable("t")
        with pytest.raises(StorageError):
            heap.drop_index("v")

    def test_index_built_over_existing_rows(self):
        heap = HeapTable("t")
        clog = CommitLog()
        clog.ensure(1)
        clog.commit(1, 10)
        heap.add_version(RowVersion((1,), {"k": 1, "v": "x"}, xmin=1))
        heap.create_index("v")
        rows = heap.lookup_index("v", "x", Snapshot(10), clog)
        assert rows == [{"k": 1, "v": "x"}]

    def test_newest_version_first(self):
        heap = HeapTable("t")
        old = RowVersion((1,), {"k": 1, "v": 1}, xmin=1, xmax=2)
        new = RowVersion((1,), {"k": 1, "v": 2}, xmin=2)
        heap.add_version(old)
        heap.add_version(new)
        assert heap.versions((1,))[0] is new


class TestCatalogEdges:
    def test_ddl_ts_monotone_per_table(self):
        catalog = Catalog()
        schema = TableSchema("t", [ColumnDef("k")], ("k",))
        catalog.create_table(schema, ddl_ts=10)
        catalog.record_ddl("t", 5)  # older timestamp must not regress it
        assert catalog.ddl_ts("t") == 10
        catalog.record_ddl("t", 20)
        assert catalog.ddl_ts("t") == 20
        assert catalog.max_ddl_ts == 20

    def test_tables_listing(self):
        catalog = Catalog()
        catalog.create_table(TableSchema("a", [ColumnDef("k")], ("k",)))
        catalog.create_table(TableSchema("b", [ColumnDef("k")], ("k",)))
        assert set(catalog.tables()) == {"a", "b"}

    def test_duplicate_column_rejected(self):
        with pytest.raises(StorageError):
            TableSchema("t", [ColumnDef("k"), ColumnDef("k")], ("k",))


class TestEngineDetails:
    def make(self):
        env = Environment()
        engine = StorageEngine(env, "dn")
        engine.create_table(TableSchema(
            "t", [ColumnDef("k", "int"), ColumnDef("v", "int")], ("k",)))
        return engine

    def test_tables_written_tracking(self):
        engine = self.make()
        engine.create_table(TableSchema(
            "u", [ColumnDef("k", "int")], ("k",)))
        engine.begin(1)
        engine.insert(1, "t", {"k": 1, "v": 1})
        engine.insert(1, "u", {"k": 1})
        assert engine.tables_written(1) == {"t", "u"}
        engine.log_pending_commit(1)
        engine.commit(1, 10)
        assert engine.tables_written(1) == set()

    def test_bulk_load_visible_and_unlogged(self):
        engine = self.make()
        wal_before = len(engine.wal)
        loaded = engine.bulk_load("t", [{"k": i, "v": i} for i in range(5)])
        assert loaded == 5
        assert len(engine.wal) == wal_before  # nothing logged
        assert engine.read("t", (3,), Snapshot(1)) == {"k": 3, "v": 3}

    def test_ddl_redo_carries_schema(self):
        engine = self.make()
        records = engine.wal.records_from(0)
        ddl = [record for record in records if isinstance(record, RedoDdl)]
        assert ddl and ddl[0].payload.name == "t"

    def test_is_active_lifecycle(self):
        engine = self.make()
        engine.begin(1)
        assert engine.is_active(1)
        engine.prepare(1)
        assert engine.is_active(1)
        engine.commit_prepared(1, 10)
        assert not engine.is_active(1)
