"""Unit tests for RCP calculation, skyline selection, and staleness."""

import random

from repro.clocks import ClockSyncConfig, ClockSyncDaemon, GClockSource, GlobalTimeDevice, PhysicalClock
from repro.ror import NodeMetrics, RcpState, StalenessEstimator, choose_node, compute_rcp, skyline
from repro.sim import Environment, ms, seconds, us
from repro.sim.rand import RandomStreams
from repro.txn.modes import TxnMode


class TestComputeRcp:
    def test_paper_example_fig4(self):
        # Replica 1 max=ts4, Replica 2 max=ts5, Replica 3 max=ts3 -> RCP=ts3.
        assert compute_rcp({"r1": 4, "r2": 5, "r3": 3}) == 3

    def test_single_replica(self):
        assert compute_rcp({"r1": 42}) == 42

    def test_empty_is_zero(self):
        assert compute_rcp({}) == 0


class TestRcpState:
    def test_monotonic_updates(self):
        state = RcpState()
        state.update(10, now=1, collector="cn1")
        state.update(20, now=2, collector="cn1")
        assert state.rcp == 20

    def test_regression_ignored(self):
        state = RcpState()
        state.update(20, now=1, collector="cn1")
        state.update(15, now=2, collector="cn2")  # new collector lags
        assert state.rcp == 20
        assert state.regressions_ignored == 1

    def test_age_tracks_updates(self):
        state = RcpState()
        state.update(10, now=100, collector="cn1")
        assert state.age_ns(150) == 50


def metrics(name, staleness, latency, **kwargs):
    return NodeMetrics(name=name, staleness_ns=staleness, latency_ns=latency,
                       **kwargs)


class TestSkyline:
    def test_dominated_nodes_excluded(self):
        nodes = [
            metrics("fresh-fast", 10, 10),
            metrics("stale-slow", 100, 100),  # dominated
            metrics("fresher-slower", 5, 50),
        ]
        names = [node.name for node in skyline(nodes)]
        assert "stale-slow" not in names
        assert set(names) == {"fresh-fast", "fresher-slower"}

    def test_down_nodes_excluded(self):
        nodes = [metrics("dead", 1, 1, up=False), metrics("alive", 50, 50)]
        assert [node.name for node in skyline(nodes)] == ["alive"]

    def test_ties_are_kept(self):
        nodes = [metrics("a", 10, 10), metrics("b", 10, 10)]
        assert len(skyline(nodes)) == 2

    def test_skyline_sorted_by_latency(self):
        nodes = [metrics("slow", 1, 100), metrics("fast", 50, 10)]
        assert [node.name for node in skyline(nodes)] == ["fast", "slow"]


class TestChooseNode:
    def test_staleness_bound_filters(self):
        nodes = [
            metrics("stale-local", ms(100), us(50)),
            metrics("fresh-remote", ms(1), ms(25)),
        ]
        chosen = choose_node(nodes, staleness_bound_ns=ms(10))
        assert chosen.name == "fresh-remote"

    def test_unbounded_picks_lowest_latency(self):
        nodes = [
            metrics("stale-local", ms(100), us(50)),
            metrics("fresh-remote", ms(1), ms(25)),
        ]
        assert choose_node(nodes).name == "stale-local"

    def test_none_when_no_candidate_meets_bound(self):
        nodes = [metrics("stale", ms(100), us(50))]
        assert choose_node(nodes, staleness_bound_ns=ms(1)) is None

    def test_min_commit_ts_excludes_lagging_replicas(self):
        nodes = [
            metrics("lagging", 0, us(10), max_commit_ts=50),
            metrics("caught-up", 0, ms(1), max_commit_ts=200),
        ]
        chosen = choose_node(nodes, min_commit_ts=100)
        assert chosen.name == "caught-up"

    def test_primary_exempt_from_min_commit_ts(self):
        nodes = [metrics("primary", 0, ms(1), max_commit_ts=0, is_primary=True)]
        assert choose_node(nodes, min_commit_ts=100).name == "primary"

    def test_near_ties_spread_with_rng(self):
        nodes = [metrics("a", 10, us(50)), metrics("b", 10, us(60))]
        rng = random.Random(1)
        picks = {choose_node(nodes, rng=rng).name for _ in range(50)}
        assert picks == {"a", "b"}

    def test_far_apart_latencies_do_not_spread(self):
        nodes = [metrics("near", 10, us(50)), metrics("far", 10, ms(25))]
        rng = random.Random(1)
        picks = {choose_node(nodes, rng=rng).name for _ in range(20)}
        assert picks == {"near"}

    def test_crashed_node_never_chosen(self):
        nodes = [metrics("dead", 0, 1, up=False), metrics("alive", 0, ms(1))]
        assert choose_node(nodes).name == "alive"


def make_estimator():
    env = Environment()
    streams = RandomStreams(5)
    clock = PhysicalClock(env, "n", streams.stream("c"))
    device = GlobalTimeDevice(env, "east")
    sync = ClockSyncDaemon(env, clock, device, ClockSyncConfig(), "n")
    return env, StalenessEstimator(env, GClockSource(env, clock, sync))


class TestStaleness:
    def test_gclock_mode_uses_clock_difference(self):
        env, estimator = make_estimator()
        env.run(until=seconds(1))
        replica_ts = seconds(1) - ms(30)  # 30 ms behind true time
        estimate = estimator.estimate_ns(TxnMode.GCLOCK, replica_ts)
        assert ms(29) <= estimate <= ms(32)

    def test_gclock_mode_caught_up_is_near_zero(self):
        env, estimator = make_estimator()
        env.run(until=seconds(1))
        estimate = estimator.estimate_ns(TxnMode.GCLOCK, seconds(1))
        assert estimate <= ms(1)

    def test_gtm_mode_extrapolates_from_rate(self):
        env, estimator = make_estimator()
        # 1000 timestamps per second observed.
        estimator.observe_frontier(0)
        env.run(until=seconds(1))
        estimator.observe_frontier(1000)
        # Replica 500 timestamps behind at ~1000/s => ~0.5 s stale.
        estimate = estimator.estimate_ns(TxnMode.GTM, 500)
        assert seconds(0.4) <= estimate <= seconds(0.6)

    def test_gtm_mode_zero_gap_is_fresh(self):
        env, estimator = make_estimator()
        estimator.observe_frontier(100)
        env.run(until=seconds(1))
        estimator.observe_frontier(100)
        assert estimator.estimate_ns(TxnMode.GTM, 100) == 0

    def test_rate_smoothing(self):
        env, estimator = make_estimator()
        estimator.observe_frontier(0)
        env.run(until=seconds(1))
        estimator.observe_frontier(1000)
        rate_before = estimator.rate_per_second
        env.run(until=seconds(2))
        estimator.observe_frontier(4000)  # burst: 3000/s
        assert rate_before < estimator.rate_per_second < 3000
