"""Redo-gap detection and streaming catch-up after replica outages."""

from repro import ClusterConfig, build_cluster, one_region
from repro.storage.snapshot import Snapshot


def build_db_with_data():
    db = build_cluster(ClusterConfig.globaldb(one_region()))
    session = db.session()
    session.create_table("t", [("k", "int"), ("v", "int")],
                         primary_key=["k"])
    session.begin()
    for i in range(40):
        session.insert("t", {"k": i, "v": 0})
    session.commit()
    db.run_for(0.3)
    return db, session


def shard_keys(db, shard, count=40):
    return [k for k in range(count)
            if db.shard_map.shard_for_key("t", (k,)) == shard]


class TestCatchup:
    def test_recovered_replica_fills_its_gap(self):
        db, session = build_db_with_data()
        shard = 0
        victim = db.replicas[shard][0]
        keys = shard_keys(db, shard)
        assert keys, "shard 0 holds no test keys"
        victim.fail()
        # Commit a batch of updates the dead replica will miss entirely.
        for value, key in enumerate(keys):
            session.begin()
            session.update("t", (key,), {"v": 100 + value})
            session.commit()
        db.run_for(0.2)
        victim.recover()
        # New traffic arrives with a gap; the replica must fetch the
        # missing range rather than apply past it.
        session.begin()
        session.update("t", (keys[0],), {"v": 999})
        commit_ts = session.commit()
        db.run_for(0.5)
        assert victim.catchup_requests >= 1
        row = victim.store.read("t", (keys[0],), Snapshot(commit_ts))
        assert row is not None and row["v"] == 999
        # And the previously-missed updates are all present too.
        for value, key in enumerate(keys[1:], start=1):
            row = victim.store.read("t", (key,), Snapshot(commit_ts))
            assert row is not None and row["v"] == 100 + value

    def test_no_acks_for_non_contiguous_batches(self):
        """A gapped batch must not be acknowledged (a sync-table quorum
        would otherwise count data the replica does not actually have)."""
        db, session = build_db_with_data()
        shard = 0
        victim = db.replicas[shard][0]
        primary = db.primaries[shard]
        keys = shard_keys(db, shard)
        victim.fail()
        session.begin()
        session.update("t", (keys[0],), {"v": 1})
        session.commit()
        db.run_for(0.2)
        acked_while_down = primary.acks.acked[victim.name]
        victim.recover()
        session.begin()
        session.update("t", (keys[0],), {"v": 2})
        session.commit()
        target_lsn = primary.engine.wal.last_lsn  # before more heartbeats
        db.run_for(0.5)
        # After catch-up completes the ack frontier passes that point
        # (the very tail keeps moving with heartbeats, so compare against
        # the snapshot taken at commit time).
        assert primary.acks.acked[victim.name] >= target_lsn
        assert primary.acks.acked[victim.name] > acked_while_down

    def test_rcp_excludes_then_reincludes_recovering_replica(self):
        db, session = build_db_with_data()
        shard = 0
        victim = db.replicas[shard][0]
        keys = shard_keys(db, shard)
        victim.fail()
        session.begin()
        session.update("t", (keys[0],), {"v": 7})
        session.commit()
        db.run_for(0.3)
        rcp_during_outage = session.rcp
        victim.recover()
        session.begin()
        session.update("t", (keys[0],), {"v": 8})
        session.commit()
        db.run_for(0.5)
        # The replica caught up, so the (min-based) RCP moved on.
        assert session.rcp > rcp_during_outage
        assert victim.store.max_commit_ts >= rcp_during_outage

    def test_consistency_preserved_through_outage_window(self):
        """Reads routed to the recovered replica never see the hole."""
        db, session = build_db_with_data()
        shard = 0
        victim = db.replicas[shard][0]
        keys = shard_keys(db, shard)
        victim.fail()
        session.begin()
        session.update("t", (keys[0],), {"v": 50})
        commit_ts = session.commit()
        db.run_for(0.2)
        victim.recover()
        db.run_for(0.6)
        # Direct read on the recovered replica at a snapshot covering the
        # missed commit: must show it (safe-time + catch-up), not a hole.
        row = victim.store.read("t", (keys[0],), Snapshot(commit_ts))
        assert row is not None and row["v"] == 50
