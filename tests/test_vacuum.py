"""MVCC vacuum: version reclamation, freezing, and clog pruning."""

from repro import ClusterConfig, build_cluster, one_region
from repro.sim import Environment
from repro.storage import ColumnDef, Snapshot, StorageEngine, TableSchema


def make_engine():
    env = Environment()
    engine = StorageEngine(env, "dn")
    engine.create_table(TableSchema(
        "t", [ColumnDef("k", "int"), ColumnDef("v", "int")], ("k",)))
    return env, engine


def committed_update(engine, txid, key, value, ts):
    engine.begin(txid)
    if engine.update(txid, "t", (key,), {"v": value}) is None:
        engine.insert(txid, "t", {"k": key, "v": value})
    engine.log_pending_commit(txid)
    engine.commit(txid, ts)


class TestVacuumHeap:
    def test_old_versions_reclaimed(self):
        env, engine = make_engine()
        for txid in range(1, 11):
            committed_update(engine, txid, key=1, value=txid, ts=txid * 100)
        heap = engine.table("t")
        assert heap.version_count() == 10
        stats = engine.vacuum(retention_ns=300)  # horizon = 1000-300 = 700
        # Versions committed at 100..600 are dead except the anchor at 700.
        assert stats.versions_removed == 6
        assert heap.version_count() == 4

    def test_visibility_preserved_at_and_above_horizon(self):
        env, engine = make_engine()
        for txid in range(1, 11):
            committed_update(engine, txid, key=1, value=txid, ts=txid * 100)
        engine.vacuum(retention_ns=300)
        # Snapshots at/above the horizon (700) read exactly what they did.
        assert engine.read("t", (1,), Snapshot(700))["v"] == 7
        assert engine.read("t", (1,), Snapshot(850))["v"] == 8
        assert engine.read("t", (1,), Snapshot(1000))["v"] == 10

    def test_deleted_key_fully_reclaimed(self):
        env, engine = make_engine()
        committed_update(engine, 1, key=2, value=1, ts=100)
        engine.begin(2)
        engine.delete(2, "t", (2,))
        engine.log_pending_commit(2)
        engine.commit(2, 200)
        engine.heartbeat(10_000)
        stats = engine.vacuum(retention_ns=1_000)  # horizon 9000 > 200
        assert stats.versions_removed == 1
        assert engine.table("t").versions((2,)) == []

    def test_in_flight_transactions_never_vacuumed(self):
        env, engine = make_engine()
        committed_update(engine, 1, key=1, value=1, ts=100)
        engine.begin(2)
        engine.update(2, "t", (1,), {"v": 2})  # uncommitted
        engine.heartbeat(10_000)
        engine.vacuum(retention_ns=1_000)
        # The uncommitted version and its predecessor (needed for abort /
        # visibility) both survive.
        assert engine.table("t").version_count() == 2
        engine.abort(2)
        assert engine.read("t", (1,), Snapshot(10_000))["v"] == 1

    def test_frozen_versions_remain_readable_after_clog_prune(self):
        env, engine = make_engine()
        committed_update(engine, 1, key=1, value=42, ts=100)
        engine.heartbeat(10_000)
        stats = engine.vacuum(retention_ns=1_000)
        assert stats.versions_frozen >= 1
        assert stats.clog_pruned >= 1
        assert not engine.clog.known(1)  # pruned
        assert engine.read("t", (1,), Snapshot(10_000))["v"] == 42
        # And the row is still updatable (latest-committed path works).
        engine.begin(5)
        assert engine.update(5, "t", (1,), {"v": 43}) is not None

    def test_vacuum_below_horizon_one_is_noop(self):
        env, engine = make_engine()
        committed_update(engine, 1, key=1, value=1, ts=100)
        stats = engine.vacuum(retention_ns=10_000)  # horizon < 0
        assert stats.versions_removed == 0
        assert stats.clog_pruned == 0

    def test_aborted_entries_pruned(self):
        env, engine = make_engine()
        committed_update(engine, 1, key=1, value=1, ts=100)
        engine.begin(2)
        engine.update(2, "t", (1,), {"v": 9})
        engine.abort(2)
        engine.heartbeat(10_000)
        engine.vacuum(retention_ns=1_000)
        assert not engine.clog.known(2)


class TestVacuumInCluster:
    def test_background_vacuum_bounds_version_growth(self):
        db = build_cluster(ClusterConfig.globaldb(
            one_region(), vacuum_interval_ns=200_000_000,
            vacuum_retention_ns=500_000_000))
        session = db.session()
        session.create_table("t", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1, "v": 0})
        session.commit()
        shard = db.shard_map.shard_for_key("t", (1,))
        primary = db.primaries[shard]
        for i in range(60):
            session.begin()
            session.update("t", (1,), {"v": i})
            session.commit()
            db.run_for(0.05)
        db.run_for(1.0)
        assert primary.vacuum_runs > 0
        # 61 versions were created; retention keeps only a recent window.
        assert primary.engine.table("t").version_count() < 20
        # Replicas vacuum too.
        replica = db.replicas[shard][0]
        assert replica.store.table("t").version_count() < 20
        # Current data still correct everywhere.
        session.begin()
        assert session.read("t", (1,))["v"] == 59
        session.commit()
        row = session.read_only("t", (1,))
        assert row["v"] == 59

    def test_vacuum_disabled_grows_versions(self):
        db = build_cluster(ClusterConfig.globaldb(one_region(),
                                                  vacuum_enabled=False))
        session = db.session()
        session.create_table("t", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1, "v": 0})
        session.commit()
        for i in range(30):
            session.begin()
            session.update("t", (1,), {"v": i})
            session.commit()
        shard = db.shard_map.shard_for_key("t", (1,))
        assert db.primaries[shard].engine.table("t").version_count() == 31
