"""Integration tests: the assembled cluster end to end."""

import pytest

from repro import (
    ClusterConfig,
    TransactionAborted,
    TxnMode,
    build_cluster,
    one_region,
    three_city,
    two_region,
)
from repro.errors import StalenessBoundError
from repro.sim.units import ms


def quick_db(cfg_fn=ClusterConfig.globaldb, topology=None, **overrides):
    db = build_cluster(cfg_fn(topology or one_region(), **overrides))
    return db


def setup_accounts(db, rows=10):
    session = db.session()
    session.create_table(
        "accounts", [("id", "int"), ("balance", "int"), ("owner", "text")],
        primary_key=["id"])
    session.begin()
    for i in range(rows):
        session.insert("accounts", {"id": i, "balance": 100, "owner": f"u{i}"})
    session.commit()
    return session


class TestBasicOperations:
    def test_insert_commit_read(self):
        db = quick_db()
        session = setup_accounts(db, rows=3)
        session.begin()
        row = session.read("accounts", (1,))
        session.commit()
        assert row["balance"] == 100

    def test_update_visible_after_commit(self):
        db = quick_db()
        session = setup_accounts(db, rows=3)
        session.begin()
        session.update("accounts", (1,), {"balance": 150})
        session.commit()
        session.begin()
        row = session.read("accounts", (1,))
        session.commit()
        assert row["balance"] == 150

    def test_rollback_discards_changes(self):
        db = quick_db()
        session = setup_accounts(db, rows=3)
        session.begin()
        session.update("accounts", (1,), {"balance": 0})
        session.rollback()
        session.begin()
        row = session.read("accounts", (1,))
        session.commit()
        assert row["balance"] == 100

    def test_delete(self):
        db = quick_db()
        session = setup_accounts(db, rows=3)
        session.begin()
        assert session.delete("accounts", (2,))
        session.commit()
        session.begin()
        assert session.read("accounts", (2,)) is None
        session.commit()

    def test_scan_sees_all_committed_rows(self):
        db = quick_db()
        session = setup_accounts(db, rows=10)
        session.begin()
        rows = session.scan("accounts")
        session.commit()
        assert len(rows) == 10

    def test_multi_shard_transaction_uses_2pc(self):
        db = quick_db()
        session = setup_accounts(db, rows=20)
        # Move balance between two rows on (almost surely) different shards.
        session.begin()
        session.update("accounts", (0,), {"balance": 50})
        session.update("accounts", (7,), {"balance": 150})
        ts = session.commit()
        assert ts > 0
        session.begin()
        total = sum(row["balance"] for row in session.scan("accounts"))
        session.commit()
        assert total == 100 * 20

    def test_own_writes_visible_before_commit(self):
        db = quick_db()
        session = setup_accounts(db, rows=3)
        session.begin()
        session.update("accounts", (1,), {"balance": 1})
        assert session.read("accounts", (1,))["balance"] == 1
        session.rollback()

    def test_callable_changes_are_atomic_rmw(self):
        db = quick_db()
        session = setup_accounts(db, rows=3)
        for _ in range(3):
            session.begin()
            session.update("accounts", (1,), {
                "balance": lambda value: (value or 0) + 7})
            session.commit()
        session.begin()
        assert session.read("accounts", (1,))["balance"] == 121
        session.commit()


class TestReplicaReads:
    def test_ror_read_reflects_committed_data(self):
        db = quick_db()
        session = setup_accounts(db)
        db.run_for(0.2)
        row = session.read_only("accounts", (1,))
        assert row["balance"] == 100

    def test_ror_reads_hit_replicas(self):
        db = quick_db(topology=three_city())
        session = setup_accounts(db)
        db.run_for(0.3)
        for i in range(10):
            session.read_only("accounts", (i,))
        total_ror = sum(cn.ror_reads for cn in db.cns)
        assert total_ror > 0

    def test_rcp_becomes_positive_and_monotone(self):
        db = quick_db()
        session = setup_accounts(db)
        db.run_for(0.2)
        first = session.rcp
        assert first > 0
        db.run_for(0.2)
        assert session.rcp >= first

    def test_read_your_writes_eventually_on_replica(self):
        db = quick_db()
        session = setup_accounts(db)
        session.begin()
        session.update("accounts", (1,), {"balance": 777})
        commit_ts = session.commit()
        db.run_for(0.5)  # replication + RCP catch-up
        assert session.rcp >= commit_ts
        assert session.read_only("accounts", (1,))["balance"] == 777

    def test_strict_staleness_bound_can_fail(self):
        db = quick_db(topology=three_city())
        session = setup_accounts(db)
        db.run_for(0.2)
        with pytest.raises(StalenessBoundError):
            # Zero staleness is unsatisfiable on async replicas.
            session.read_only("accounts", (1,), max_staleness_ms=0)

    def test_loose_staleness_bound_succeeds(self):
        db = quick_db()
        session = setup_accounts(db)
        db.run_for(0.3)
        row = session.read_only("accounts", (1,), max_staleness_ms=5000)
        assert row is not None

    def test_multi_key_read_only_one_snapshot(self):
        db = quick_db()
        session = setup_accounts(db)
        db.run_for(0.2)
        rows = session.read_only_multi("accounts", [(i,) for i in range(5)])
        assert all(row["balance"] == 100 for row in rows)

    def test_scan_only(self):
        db = quick_db()
        session = setup_accounts(db)
        db.run_for(0.2)
        rows = session.scan_only("accounts",
                                 predicate=lambda row: row["id"] < 5)
        assert len(rows) == 5


class TestBaselineMode:
    def test_baseline_reads_go_to_primaries(self):
        db = quick_db(cfg_fn=ClusterConfig.baseline)
        session = setup_accounts(db)
        db.run_for(0.2)
        row = session.read_only("accounts", (1,))
        assert row["balance"] == 100
        assert all(cn.ror_reads == 0 for cn in db.cns)

    def test_baseline_sync_commit_slower_than_async(self):
        def commit_time(cfg_fn):
            db = build_cluster(cfg_fn(two_region(latency=ms(30))))
            session = setup_accounts(db, rows=1)
            session.begin()
            session.update("accounts", (0,), {"balance": 1})
            start = db.env.now
            session.commit()
            return db.env.now - start

        sync_time = commit_time(ClusterConfig.baseline)
        async_time = commit_time(ClusterConfig.globaldb)
        assert sync_time > async_time
        assert sync_time >= ms(30)  # waited on the cross-region ack

    def test_baseline_uses_gtm_counter_timestamps(self):
        db = quick_db(cfg_fn=ClusterConfig.baseline)
        session = setup_accounts(db, rows=1)
        session.begin()
        session.update("accounts", (0,), {"balance": 1})
        ts = session.commit()
        assert ts < 1000  # counter-scale, not epoch-scale


class TestDdl:
    def test_create_table_replicates_to_replicas(self):
        db = quick_db()
        session = db.session()
        session.create_table("t2", [("k", "int")], primary_key=["k"])
        db.run_for(0.2)
        for replica_list in db.replicas.values():
            for replica in replica_list:
                assert replica.store.has_table("t2")

    def test_ddl_fence_falls_back_to_primary_until_replayed(self):
        db = quick_db()
        session = db.session()
        session.create_table("t3", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        session.insert("t3", {"k": 1, "v": 2})
        session.commit()
        # Immediately after DDL the RCP is behind the DDL timestamp: the
        # read must still succeed (served by the primary), never error.
        row = session.read_only("t3", (1,))
        assert row == {"k": 1, "v": 2}

    def test_create_index_and_online_use(self):
        db = quick_db()
        session = setup_accounts(db)
        session.create_index("accounts", "owner")
        db.run_for(0.2)
        # Index exists on primaries and replicas.
        for primary in db.primaries:
            assert primary.engine.table("accounts").has_index("owner")

    def test_drop_table(self):
        db = quick_db()
        session = db.session()
        session.create_table("temp", [("k", "int")], primary_key=["k"])
        session.drop_table("temp")
        for primary in db.primaries:
            assert not primary.engine.catalog.has_table("temp")

    def test_second_cn_learns_ddl(self):
        db = quick_db(topology=three_city())
        session = db.session(region="xian")
        session.create_table("t4", [("k", "int")], primary_key=["k"])
        db.run_for(0.3)
        other = db.cn_in_region("dongguan")
        assert other.catalog.has_table("t4")


class TestConcurrencyConflicts:
    def test_write_conflict_waits_not_aborts(self):
        """Two concurrent increments to the same row must serialize through
        the row lock and both apply."""
        db = quick_db()
        setup_accounts(db, rows=1)
        cn = db.cns[0]

        def incrementer():
            ctx = yield from cn.g_begin()
            yield from cn.g_update(ctx, "accounts", (0,), {
                "balance": lambda value: (value or 0) + 1})
            yield from cn.g_commit(ctx)

        procs = [db.env.process(incrementer()) for _ in range(10)]
        db.env.run(until=db.env.all_of(procs))
        session = db.session()
        session.begin()
        assert session.read("accounts", (0,))["balance"] == 110
        session.commit()


class TestFailureInjection:
    def test_replica_failure_reroutes_reads(self):
        db = quick_db(topology=three_city())
        session = setup_accounts(db)
        db.run_for(0.3)
        # Kill every replica: reads must fall back to primaries.
        for replica_list in db.replicas.values():
            for replica in replica_list:
                replica.fail()
        db.run_for(0.3)  # metrics notice the failures
        row = session.read_only("accounts", (1,))
        assert row is not None

    def test_collector_failover(self):
        db = build_cluster(ClusterConfig.globaldb(one_region(),
                                                  cns_per_region=2))
        setup_accounts(db)
        db.run_for(0.2)
        region = db.cns[0].region
        region_cns = [cn for cn in db.cns if cn.region == region]
        collector = next(cn for cn in region_cns if cn.is_collector)
        backup = next(cn for cn in region_cns if not cn.is_collector)
        rcp_before = backup.rcp_state.rcp
        collector.fail()
        db.run_for(0.5)
        assert backup.is_collector
        assert backup.rcp_state.rcp >= rcp_before

    def test_rcp_still_advances_after_replica_loss(self):
        db = quick_db()
        session = setup_accounts(db)
        db.run_for(0.2)
        victim = db.replicas[0][0]
        victim.fail()
        before = session.rcp
        db.run_for(0.5)
        assert session.rcp > before  # failed replica skipped, not frozen


class TestMigrationLive:
    def test_migration_to_gclock_and_back(self):
        db = quick_db(cfg_fn=ClusterConfig.baseline)
        session = setup_accounts(db, rows=2)
        report = db.migrate_to_gclock()
        assert report.direction == "gtm->gclock"
        assert db.gtm.mode is TxnMode.GCLOCK
        session.begin()
        session.update("accounts", (0,), {"balance": 1})
        ts_gclock = session.commit()
        report_back = db.migrate_to_gtm()
        assert report_back.dwell_ns == 0  # Fig. 3: no dwell needed
        session.begin()
        session.update("accounts", (1,), {"balance": 2})
        ts_gtm = session.commit()
        assert ts_gtm > ts_gclock  # monotone across the migration

    def test_migration_dwell_is_twice_max_err(self):
        db = quick_db(cfg_fn=ClusterConfig.baseline)
        setup_accounts(db, rows=1)
        report = db.migrate_to_gclock()
        assert report.dwell_ns == 2 * db.gtm.max_err_seen or report.dwell_ns > 0

    def test_timestamps_monotone_through_migration_under_load(self):
        db = quick_db(cfg_fn=ClusterConfig.baseline)
        setup_accounts(db, rows=5)
        cn = db.cns[0]
        commit_ts_by_writer = {key: [] for key in range(3)}
        stop = {"flag": False}

        def writer(key):
            while not stop["flag"]:
                ctx = yield from cn.g_begin()
                try:
                    yield from cn.g_update(ctx, "accounts", (key,), {
                        "balance": lambda value: (value or 0) + 1})
                    ts = yield from cn.g_commit(ctx)
                    commit_ts_by_writer[key].append(ts)
                except TransactionAborted:
                    pass

        for key in range(3):
            db.env.process(writer(key))
        migration = db.start_migration_to_gclock()
        db.env.run(until=migration)
        db.run_for(0.1)
        stop["flag"] = True
        db.run_for(0.5)
        # Each writer's successive commits must carry strictly increasing
        # timestamps straight through GTM -> DUAL -> GClock.
        for key, series in commit_ts_by_writer.items():
            assert series, f"writer {key} committed nothing during migration"
            assert series == sorted(series)
            assert len(set(series)) == len(series)
