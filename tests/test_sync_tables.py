"""Per-table synchronous replication (the paper's future-work feature:
sync replicated tables coexisting with async tables)."""

from repro import (
    ClusterConfig,
    ColumnDef,
    TableSchema,
    build_cluster,
    two_region,
)
from repro.sim.units import ms, ns_to_ms
from repro.storage.snapshot import Snapshot


def build_db():
    db = build_cluster(ClusterConfig.globaldb(two_region(latency=ms(30))))
    db.create_table_offline(TableSchema(
        "t_async", [ColumnDef("k", "int"), ColumnDef("v", "int")], ("k",)))
    db.create_table_offline(TableSchema(
        "t_sync", [ColumnDef("k", "int"), ColumnDef("v", "int")], ("k",),
        sync_replication=True))
    return db


def commit_latency_ms(db, session, table, key):
    start = db.env.now
    session.begin()
    session.insert(table, {"k": key, "v": 1})
    session.commit()
    return ns_to_ms(db.env.now - start)


def local_key(db, session, table, start_from=0):
    """A key homed on a shard whose primary is in the session's region
    (so latency measurements isolate replication, not routing)."""
    for key in range(start_from, start_from + 500):
        shard = db.shard_map.shard_for_key(table, (key,))
        if db.primaries[shard].region == session.cn.region:
            return key
    raise AssertionError("no local key found")


class TestSyncTables:
    def test_sync_table_commit_waits_for_replica_acks(self):
        db = build_db()
        session = db.session()
        async_ms = commit_latency_ms(db, session, "t_async",
                                     local_key(db, session, "t_async"))
        sync_ms = commit_latency_ms(db, session, "t_sync",
                                    local_key(db, session, "t_sync"))
        assert async_ms < 5
        assert sync_ms >= 30  # waited on the 30 ms-away replica's ack

    def test_sync_table_data_on_replicas_at_commit_return(self):
        """The point of the feature: when the commit returns, every
        replica has (at least persisted) the data — reads are maximally
        fresh."""
        db = build_db()
        session = db.session()
        session.begin()
        session.insert("t_sync", {"k": 7, "v": 7})
        commit_ts = session.commit()
        shard = db.shard_map.shard_for_key("t_sync", (7,))
        # Acked means persisted; give the replayer its (tiny) apply time.
        db.env.run_for(ms(1))
        for replica in db.replicas[shard]:
            row = replica.store.read("t_sync", (7,), Snapshot(commit_ts))
            assert row == {"k": 7, "v": 7}

    def test_async_tables_unaffected_by_sync_neighbours(self):
        db = build_db()
        session = db.session()
        commit_latency_ms(db, session, "t_sync",
                          local_key(db, session, "t_sync"))
        assert commit_latency_ms(
            db, session, "t_async",
            local_key(db, session, "t_async", start_from=100)) < 5

    def test_mixed_transaction_takes_sync_path(self):
        """A transaction touching both table kinds must wait: the sync
        table's guarantee dominates."""
        db = build_db()
        session = db.session()
        # Find keys co-located on one shard so the commit is single-shard.
        shard_of = db.shard_map.shard_for_key
        k_async = next(k for k in range(100)
                       if shard_of("t_async", (k,)) == 0)
        k_sync = next(k for k in range(100)
                      if shard_of("t_sync", (k,)) == 0)
        start = db.env.now
        session.begin()
        session.insert("t_async", {"k": k_async, "v": 1})
        session.insert("t_sync", {"k": k_sync, "v": 1})
        session.commit()
        assert ns_to_ms(db.env.now - start) >= 30

    def test_session_create_table_flag(self):
        db = build_cluster(ClusterConfig.globaldb(two_region(latency=ms(30))))
        session = db.session()
        session.create_table("audit", [("k", "int"), ("v", "int")],
                             primary_key=["k"], sync_replication=True)
        assert db.shard_map.schema("audit").sync_replication
        start = db.env.now
        session.begin()
        session.insert("audit", {"k": 1, "v": 1})
        session.commit()
        assert ns_to_ms(db.env.now - start) >= 30

    def test_two_phase_commit_respects_sync_tables(self):
        db = build_db()
        session = db.session()
        shard_of = db.shard_map.shard_for_key
        k1 = next(k for k in range(100) if shard_of("t_sync", (k,)) == 0)
        k2 = next(k for k in range(100) if shard_of("t_sync", (k,)) == 1)
        start = db.env.now
        session.begin()
        session.insert("t_sync", {"k": k1, "v": 1})
        session.insert("t_sync", {"k": k2, "v": 1})
        session.commit()
        assert ns_to_ms(db.env.now - start) >= 30
